"""Benchmark — backend eigensolver routes on the midrange eigenproblem.

The "auto" backend's midrange band (``SPARSE_AUTO_THRESHOLD`` up to
``LOBPCG_AUTO_CEILING`` nodes) routes ``lowest_eigenpairs`` to block
LOBPCG with a degree/Jacobi preconditioner instead of ARPACK's shiftless
Lanczos.  The win shows on *ill-conditioned* graphs — here the
weight-skewed SBM Laplacian from ``perf_gates.ill_conditioned_laplacian``
whose degree diagonal spans ~10^6 — where the preconditioner hands LOBPCG
the rescaling eigsh has to earn through restarts.

Gates (shared with CI's ``bench-trajectory`` job via ``perf_gates``):

* LOBPCG must be >= 2x faster than eigsh on the gated workload and must
  actually take the ``lobpcg`` route (no silent fallback);
* both routes must agree on the eigenvalues to tolerance;
* the array backend's dispatched QPE kernel must match the legacy numpy
  build (timed as data — the numpy fallback has no speedup claim).

The LOBPCG gate needs a scipy build with ``lobpcg``; hosts without one
skip it (same policy as the trajectory runner's data-only mode).
"""

import numpy as np
import pytest
from perf_gates import (
    EIGENSOLVER_K,
    EIGENSOLVER_NODES,
    MIN_LOBPCG_SPEEDUP,
    batch_kernel_build,
    best_seconds,
    eigensolver_gate_enforced,
    ill_conditioned_laplacian,
    kernel_phases,
)


@pytest.mark.benchmark(group="linalg-backends")
@pytest.mark.skipif(
    not eigensolver_gate_enforced(),
    reason="scipy build without lobpcg: nothing to gate",
)
def test_bench_lobpcg_vs_eigsh(benchmark):
    from repro.linalg.backends import SparseBackend

    laplacian = ill_conditioned_laplacian()
    lobpcg_backend = SparseBackend(solver="lobpcg")
    eigsh_backend = SparseBackend(solver="eigsh")

    lobpcg_values, _ = lobpcg_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K)
    assert lobpcg_backend.last_route == "lobpcg", (
        f"gated workload fell back to {lobpcg_backend.last_route!r}"
    )
    eigsh_values, _ = eigsh_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K)
    assert np.allclose(lobpcg_values, eigsh_values, rtol=1e-4, atol=1e-8)

    eigsh_seconds = best_seconds(
        lambda: eigsh_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K),
        repeats=2,
    )
    benchmark.pedantic(
        lambda: lobpcg_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K),
        rounds=2,
        iterations=1,
    )
    lobpcg_seconds = best_seconds(
        lambda: lobpcg_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K),
        repeats=2,
    )

    speedup = eigsh_seconds / lobpcg_seconds
    benchmark.extra_info["eigsh_seconds"] = eigsh_seconds
    benchmark.extra_info["lobpcg_seconds"] = lobpcg_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_LOBPCG_SPEEDUP, (
        f"LOBPCG speedup only {speedup:.2f}x over eigsh "
        f"(n={EIGENSOLVER_NODES}, k={EIGENSOLVER_K})"
    )


@pytest.mark.benchmark(group="linalg-backends")
def test_bench_array_dispatch_kernel(benchmark):
    """Dispatched QPE kernel == legacy numpy build; timing is data.

    On the default leg the dispatch namespace is the numpy fallback, so
    this pins the overhead at ~nil rather than gating a speedup; with
    torch/CuPy installed the same measurement shows the device win.
    """
    from repro.linalg import default_namespace_name, dispatch_scope

    phases = kernel_phases()
    legacy = batch_kernel_build(phases)

    def dispatched_build():
        with dispatch_scope():
            return batch_kernel_build(phases)

    assert np.allclose(dispatched_build(), legacy, atol=1e-9)
    plain_seconds = best_seconds(lambda: batch_kernel_build(phases), repeats=3)
    benchmark.pedantic(dispatched_build, rounds=3, iterations=1)
    dispatched_seconds = best_seconds(dispatched_build, repeats=3)

    benchmark.extra_info["namespace"] = default_namespace_name()
    benchmark.extra_info["plain_seconds"] = plain_seconds
    benchmark.extra_info["dispatched_seconds"] = dispatched_seconds
    # No speedup gate — but dispatch must not make the hot path pathological.
    assert dispatched_seconds < plain_seconds * 10
