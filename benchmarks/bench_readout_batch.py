"""Benchmark — batched readout pipeline versus the per-row loop.

The F4-style tomography-dominated workload: every node's row must be
filtered, tomographed and shot-sampled.  The seed implementation walked
nodes one at a time — for the analytic backend that re-streams the full
eigenbasis through a matvec per row; for the circuit backend it re-runs
the forward QPE circuit for every basis input (and again for the
histogram).  The batched pipeline (``repro.core.readout``) does the filter
as one cache-blocked matmul / one batched circuit pass and vectorizes the
tomography arithmetic, keeping per-row RNG streams so outputs match the
loop at a fixed seed.

Speedup expectations (hardware-dependent — the filter matmul scales with
BLAS threads, the per-row loop's matvecs do not):

* circuit backend, full quantum pipeline (histogram + readout): ~5x on a
  single core; the benchmark asserts >= 3x.
* analytic backend, readout stage: ~3.5x on a single core (the per-row
  multinomial/normal draws are preserved bit-for-bit and bound the win —
  Amdahl), >= 5x with threaded BLAS; the benchmark asserts >= 2x.
"""

import time

import numpy as np
import pytest

from repro.core.config import QSCConfig
from repro.core.projection import accepted_outcomes
from repro.core.qpe_engine import make_backend
from repro.core.readout import batched_readout, canonicalize_row_phases
from repro.graphs import hermitian_laplacian, mixed_sbm, sparse_mixed_sbm
from repro.quantum.measurement import tomography_estimate
from repro.utils.rng import ensure_rng, spawn_rngs

SHOTS = 1024
ROW_SEED = 99
HISTOGRAM_SHOTS = 4096
HISTOGRAM_SEED = 5


def per_row_loop_readout(backend, accepted, shots, seed):
    """The seed's per-row readout: one project_row + tomography + binomial
    per node, then per-row phase anchoring."""
    n = backend.num_nodes
    rows = np.zeros((n, backend.dim), dtype=complex)
    norms = np.zeros(n)
    row_rngs = spawn_rngs(ensure_rng(seed), n)
    for node in range(n):
        filtered, probability = backend.project_row(node, accepted)
        if probability <= 0.0:
            continue
        estimate = tomography_estimate(filtered, shots, seed=row_rngs[node])
        if shots > 0:
            successes = row_rngs[node].binomial(shots, min(probability, 1.0))
            estimated_probability = successes / shots
        else:
            estimated_probability = probability
        rows[node] = np.sqrt(estimated_probability) * estimate
        norms[node] = np.sqrt(estimated_probability)
    return canonicalize_row_phases(rows), norms


def per_node_circuit_histogram(backend, shots, seed):
    """The seed's circuit histogram: one full forward simulation per node."""
    mixture = np.zeros(2**backend.precision_bits)
    for node in range(backend.num_nodes):
        basis = np.zeros(backend.dim, dtype=complex)
        basis[node] = 1.0
        table = backend._run_forward(basis).reshape(
            2**backend.precision_bits, backend.dim
        )
        mixture += (np.abs(table) ** 2).sum(axis=1)
    mixture /= backend.num_nodes
    return ensure_rng(seed).multinomial(shots, mixture).astype(float)


@pytest.mark.benchmark(group="readout-batch")
def test_bench_readout_analytic(benchmark):
    """512 nodes x 1024 shots, analytic backend: batched vs per-row loop."""
    graph, _ = sparse_mixed_sbm(512, 4, seed=1)
    laplacian = hermitian_laplacian(graph, backend="dense")
    config = QSCConfig(backend="analytic", precision_bits=6, shots=SHOTS)
    backend = make_backend(laplacian, config)
    accepted = accepted_outcomes(0.3, 6, backend.lambda_scale)

    start = time.perf_counter()
    loop_rows, loop_norms = per_row_loop_readout(backend, accepted, SHOTS, ROW_SEED)
    loop_seconds = time.perf_counter() - start

    result = benchmark.pedantic(
        lambda: batched_readout(backend, accepted, SHOTS, ensure_rng(ROW_SEED)),
        rounds=3,
        iterations=1,
    )
    batch_seconds = benchmark.stats.stats.min
    speedup = loop_seconds / batch_seconds
    print(
        f"\nanalytic 512x{SHOTS}: loop {loop_seconds:.3f}s, "
        f"batched {batch_seconds:.3f}s, speedup {speedup:.1f}x"
    )

    # identical outputs at fixed seed (same draws; filter matmul differs
    # only at float rounding between gemv and batched gemm)
    np.testing.assert_allclose(result.rows, loop_rows, atol=1e-9)
    np.testing.assert_allclose(result.norms, loop_norms, atol=1e-12)
    assert speedup >= 2.0, f"batched readout regressed: {speedup:.2f}x"


@pytest.mark.benchmark(group="readout-batch")
def test_bench_readout_circuit(benchmark):
    """Gate-level pipeline (histogram + readout): batched vs per-node runs."""
    graph, _ = mixed_sbm(48, 2, seed=1)
    laplacian = hermitian_laplacian(graph, backend="dense")
    config = QSCConfig(backend="circuit", precision_bits=5, shots=SHOTS)
    loop_backend = make_backend(laplacian, config)
    accepted = accepted_outcomes(0.4, 5, loop_backend.lambda_scale)

    start = time.perf_counter()
    loop_histogram = per_node_circuit_histogram(
        loop_backend, HISTOGRAM_SHOTS, HISTOGRAM_SEED
    )
    loop_rows, loop_norms = per_row_loop_readout(
        loop_backend, accepted, SHOTS, ROW_SEED
    )
    loop_seconds = time.perf_counter() - start

    def batched_pipeline():
        backend = make_backend(laplacian, config)
        histogram = backend.eigenvalue_histogram(
            HISTOGRAM_SHOTS, ensure_rng(HISTOGRAM_SEED)
        )
        readout = batched_readout(backend, accepted, SHOTS, ensure_rng(ROW_SEED))
        return histogram, readout

    histogram, readout = benchmark.pedantic(batched_pipeline, rounds=3, iterations=1)
    batch_seconds = benchmark.stats.stats.min
    speedup = loop_seconds / batch_seconds
    print(
        f"\ncircuit 48x{SHOTS} (+histogram): loop {loop_seconds:.3f}s, "
        f"batched {batch_seconds:.3f}s, speedup {speedup:.1f}x"
    )

    np.testing.assert_array_equal(histogram, loop_histogram)
    np.testing.assert_allclose(readout.rows, loop_rows, atol=1e-9)
    np.testing.assert_allclose(readout.norms, loop_norms, atol=1e-12)
    assert speedup >= 3.0, f"batched circuit pipeline regressed: {speedup:.2f}x"
