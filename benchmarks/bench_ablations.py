"""Benchmarks A1–A3 — Trotter depth, θ phase, and gate-noise ablations."""

import numpy as np
import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="A1")
def test_bench_trotter_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.trotter_ablation(steps_list=(1, 4, 16), orders=(1, 2)),
        rounds=1,
        iterations=1,
    )
    first_order = {r["steps"]: r for r in rows if r["order"] == 1}
    # error decreases monotonically with Trotter depth
    assert (
        first_order[1]["unitary_error"]
        > first_order[4]["unitary_error"]
        > first_order[16]["unitary_error"]
    )
    # second order beats first order at equal depth
    second_order = {r["steps"]: r for r in rows if r["order"] == 2}
    assert second_order[4]["unitary_error"] < first_order[4]["unitary_error"]


@pytest.mark.benchmark(group="A2")
def test_bench_theta_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.theta_ablation(thetas=(np.pi / 16, np.pi / 2), trials=3),
        rounds=1,
        iterations=1,
    )
    by_theta = {round(r["theta"], 3): r["ari_mean"] for r in rows}
    # directional signal strengthens with theta on flow SBMs
    assert by_theta[round(np.pi / 2, 3)] > by_theta[round(np.pi / 16, 3)]


@pytest.mark.benchmark(group="A3")
def test_bench_noise_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.noise_ablation(depolarizing_rates=(0.0, 0.05), shots=400),
        rounds=1,
        iterations=1,
    )
    by_rate = {r["depolarizing_rate"]: r["qpe_tv_distance"] for r in rows}
    # gate noise corrupts the QPE readout distribution
    assert by_rate[0.05] > by_rate[0.0]


@pytest.mark.benchmark(group="A4")
def test_bench_autok_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.autok_ablation(cluster_counts=(2, 3), trials=2, shots=8192),
        rounds=1,
        iterations=1,
    )
    # histogram-only model selection recovers k on well-separated SBMs
    assert all(r["quantum_hit_rate"] >= 0.5 for r in rows)


@pytest.mark.benchmark(group="A5")
def test_bench_vqe_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.vqe_ablation(trials=1, layers=2),
        rounds=1,
        iterations=1,
    )
    # the variational front end reaches the exact low subspace
    assert rows[0]["eigenvalue_error"] < 0.1
    assert rows[0]["subspace_fidelity"] > 0.9


@pytest.mark.benchmark(group="A6")
def test_bench_expansion_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.expansion_ablation(trials=2),
        rounds=1,
        iterations=1,
    )
    by_style = {r["expansion"]: r["ari_mean"] for r in rows}
    # flow arcs alone carry most of the module signal
    assert by_style["star"] > 0.3
    assert by_style["clique"] > 0.4
