"""CI benchmark-smoke runner: import every benchmark, run F1 reduced.

The full benchmark suite takes minutes; CI cannot afford that on every
push, but silent drift in the experiment harnesses is exactly the failure
mode benchmarks exist to catch.  This script does the cheap 95%:

1. import every ``bench_*.py`` module under ``benchmarks/`` (catches
   renamed APIs, missing imports, and collection-time breakage), and
2. run the F1 direction sweep at smoke scale (two strengths, one trial,
   small graphs) and re-assert the figure's qualitative shape — quantum
   separates the directed clusters, the symmetrized baseline cannot.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke.py
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys


def import_benchmark_modules() -> list[str]:
    """Import each bench_*.py file in this directory; return module names."""
    bench_dir = pathlib.Path(__file__).resolve().parent
    # bench modules import the shared perf_gates helper as a sibling
    # (exactly how pytest resolves it); make that work here too
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    imported = []
    for path in sorted(bench_dir.glob("bench_*.py")):
        name = f"benchmarks_smoke_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        spec.loader.exec_module(module)
        imported.append(path.stem)
    return imported


def run_fig1_smoke() -> None:
    """F1 at reduced scale; assert the crossover shape survives.

    Three trials instead of one: at 36 nodes the per-trial ARI variance is
    large (single seeds range from ~0.3 to ~0.9 on unchanged code), so a
    one-trial threshold flickers whenever an upstream RNG stream shifts.
    The thresholds below are calibrated against the 6-trial mean (~0.5–0.6
    for quantum at strength 1.0, ~0 for the weak and symmetrized arms).
    """
    import numpy as np

    from repro.experiments import fig1_direction_sweep

    records = fig1_direction_sweep.run(
        strengths=(0.5, 1.0), num_nodes=36, trials=3, shots=512
    )
    assert records, "fig1 smoke produced no records"

    def mean_ari(method: str, strength: float) -> float:
        rows = [
            r.ari
            for r in records
            if r.method == method and r.parameters["strength"] == strength
        ]
        assert rows, f"no records for {method} at strength {strength}"
        return float(np.mean(rows))

    quantum_strong = mean_ari("quantum", 1.0)
    quantum_weak = mean_ari("quantum", 0.5)
    symmetrized_strong = mean_ari("symmetrized", 1.0)
    assert quantum_strong > 0.4, f"quantum ARI drifted low: {quantum_strong}"
    assert quantum_strong > quantum_weak + 0.2, (
        f"direction signal lost: {quantum_strong} vs {quantum_weak}"
    )
    assert abs(symmetrized_strong) < 0.3, (
        f"symmetrized baseline should stay near chance: {symmetrized_strong}"
    )


def main() -> int:
    imported = import_benchmark_modules()
    print(f"imported {len(imported)} benchmark modules: {', '.join(imported)}")
    run_fig1_smoke()
    print("fig1 smoke: crossover shape OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
