"""Benchmark F2 — the precision sweep through the unified sweep engine.

Two measurements, both on the fig2 :class:`~repro.experiments.runner.SweepSpec`:

1. **Sweep pass** — the sweep runs cold (empty spectral cache) and then
   warm, as happens whenever a sweep is re-rendered, extended with new
   shot budgets (the fig2 trial seed does not depend on shots), or
   followed by a diagnostics pass over the same trial graphs.  The warm
   pass must beat cold and produce bit-identical records; its end-to-end
   gain is bounded by the non-spectral trial work (graph generation,
   tomography draws and q-means are seed-locked and cannot be skipped).
2. **Spectral path** — constructing every (Laplacian, precision) backend
   of the sweep, cold versus cache-served.  This is exactly the work the
   spectral cache deduplicates across sweep points, and where the ≥2x
   wall-clock guarantee is enforced (in practice it is ≥10x).

Cache hit/miss counts for both passes land in ``benchmark.extra_info`` so
the bench trajectory records sweep-path numbers.
"""

import time

import numpy as np
import pytest

from repro.core.qpe_engine import AnalyticQPEBackend, clear_spectral_cache
from repro.experiments import fig2_precision_sweep
from repro.experiments.runner import SweepRunner
from repro.graphs import ensure_connected, hermitian_laplacian, mixed_sbm


@pytest.mark.benchmark(group="F2")
def test_bench_precision_sweep(benchmark, quick_trials):
    spec = fig2_precision_sweep.spec(
        precisions=(2, 7), num_nodes=40, trials=quick_trials
    )
    runner = SweepRunner(spec)
    tasks = spec.tasks()

    clear_spectral_cache()
    cold = runner.run()
    warm = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    # the gated end-to-end ratio uses the best of two warm passes so a
    # single scheduler stall in a ~30 ms measurement cannot flake the gate
    warm_seconds = min(warm.elapsed_seconds, runner.run().elapsed_seconds)
    records = cold.records

    # cache accounting: cold, each trial's fit misses its decomposition and
    # kernel; the diagnostics pass reuses the fit pipeline's own backend
    # (staged-state reuse — no second construction, not even a cache hit).
    # Warm, the fit's spectral work is fully cache-served.
    benchmark.extra_info["cold_cache"] = cold.cache
    benchmark.extra_info["warm_cache"] = warm.cache
    assert cold.cache["misses"] == 2 * len(tasks)
    assert cold.cache["hits"] == 0
    assert warm.cache["misses"] == 0
    assert warm.cache["hits"] == 2 * len(tasks)
    # per-stage telemetry: every trial computed all five stages for real
    assert cold.profile["laplacian"]["computed"] == len(tasks)
    assert cold.profile["laplacian"]["loaded"] == 0
    assert cold.profile["qmeans"]["computed"] == len(tasks)

    # cache transparency: hit or miss, the records are identical — and the
    # warm pass must be an end-to-end win, not just a spectral one.  The
    # margin shrank when the staged pipeline removed the per-trial
    # diagnostics rebuild from the cold pass (the cold sweep got cheaper),
    # so the gate only asserts a real win above timer noise; the spectral
    # ≥2x gate below is the enforced contract.
    assert warm.records == records
    sweep_speedup = cold.elapsed_seconds / warm_seconds
    benchmark.extra_info["sweep_warm_speedup"] = sweep_speedup
    assert sweep_speedup >= 1.05, f"warm sweep speedup only {sweep_speedup:.2f}x"

    # spectral path: the (Laplacian, precision) constructions of the sweep,
    # cold vs cache-served — the work the cache removes from sweep points
    # that vary only shots/threshold (same trial seeds, same Laplacians).
    laplacians = []
    for task in tasks:
        graph, _ = mixed_sbm(
            spec.fixed["num_nodes"],
            spec.fixed["num_clusters"],
            p_intra=fig2_precision_sweep.SBM_P_INTRA,
            p_inter=fig2_precision_sweep.SBM_P_INTER,
            seed=task.seed,
        )
        ensure_connected(graph, seed=task.seed)
        laplacians.append((hermitian_laplacian(graph), task.point["p"]))

    def build_all():
        for laplacian, precision in laplacians:
            AnalyticQPEBackend(laplacian, precision)

    clear_spectral_cache()
    start = time.perf_counter()
    build_all()
    spectral_cold = time.perf_counter() - start
    start = time.perf_counter()
    build_all()
    spectral_warm = time.perf_counter() - start
    spectral_speedup = spectral_cold / spectral_warm
    benchmark.extra_info["spectral_cache_speedup"] = spectral_speedup
    assert spectral_speedup >= 2.0, (
        f"spectral cache speedup only {spectral_speedup:.2f}x"
    )

    def rows(precision):
        return [r for r in records if r.parameters["p"] == precision]

    # paper shape: the eigenvalue filter sharpens with precision — bulk
    # leakage into the cluster subspace falls by an order of magnitude
    # between p=2 and p=7 ...
    leak_coarse = np.mean([r.extra["bulk_leakage"] for r in rows(2)])
    leak_fine = np.mean([r.extra["bulk_leakage"] for r in rows(7)])
    assert leak_fine < leak_coarse / 5
    # ... while end-to-end accuracy is already saturated (robustness
    # finding recorded in EXPERIMENTS.md).
    assert np.mean([r.ari for r in rows(7)]) > 0.85
    assert np.mean([r.ari for r in rows(7)]) >= np.mean([r.ari for r in rows(2)]) - 0.1
