"""Benchmark F2 — QPE precision: quantization error, leakage, accuracy."""

import numpy as np
import pytest

from repro.experiments import fig2_precision_sweep


@pytest.mark.benchmark(group="F2")
def test_bench_precision_sweep(benchmark, quick_trials):
    records = benchmark.pedantic(
        lambda: fig2_precision_sweep.run(
            precisions=(2, 7), num_nodes=40, trials=quick_trials
        ),
        rounds=1,
        iterations=1,
    )

    def rows(precision):
        return [r for r in records if r.parameters["p"] == precision]

    # paper shape: the eigenvalue filter sharpens with precision — bulk
    # leakage into the cluster subspace falls by an order of magnitude
    # between p=2 and p=7 ...
    leak_coarse = np.mean([r.extra["bulk_leakage"] for r in rows(2)])
    leak_fine = np.mean([r.extra["bulk_leakage"] for r in rows(7)])
    assert leak_fine < leak_coarse / 5
    # ... while end-to-end accuracy is already saturated (robustness
    # finding recorded in EXPERIMENTS.md).
    assert np.mean([r.ari for r in rows(7)]) > 0.85
    assert np.mean([r.ari for r in rows(7)]) >= np.mean(
        [r.ari for r in rows(2)]
    ) - 0.1
