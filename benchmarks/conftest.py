"""Shared fixtures for the benchmark suite.

Benchmarks run the same experiment code as ``repro.experiments`` at reduced
scale so the full suite stays in the minutes range; the `main()` entry
points of the experiment modules regenerate the full-scale tables.
"""

import pytest


@pytest.fixture(scope="session")
def quick_trials():
    """Trial count used by benchmark-scale sweeps."""
    return 2
