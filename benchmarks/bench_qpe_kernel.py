"""Benchmark — batched QPE kernel build versus the per-eigenvalue loop.

A spectral-cache miss used to build the QPE response kernel by calling
``qpe_outcome_distribution`` once per eigenvalue — 2^m Python calls, each
allocating a handful of 2^p-length temporaries.  The batched
``qpe_outcome_distributions`` computes the full (eigenvalues × outcomes)
matrix in one broadcast pass with numerics bit-identical to the loop.

Gates (shared with CI's ``bench-trajectory`` job via ``perf_gates``):

* the batched build must be >= 3x faster than the per-phase loop at
  1024 phases × 7 ancilla bits (measured ~9-13x);
* batched and looped kernels must be *exactly* equal (np.array_equal) —
  the cache serves either form interchangeably.
"""

import numpy as np
import pytest
from perf_gates import (
    KERNEL_PHASES,
    KERNEL_PRECISION,
    MIN_KERNEL_SPEEDUP,
    batch_kernel_build,
    best_seconds,
    kernel_phases,
    loop_kernel_build,
)


@pytest.mark.benchmark(group="qpe-kernel")
def test_bench_kernel_build(benchmark):
    phases = kernel_phases()

    loop_seconds = best_seconds(lambda: loop_kernel_build(phases), repeats=2)
    benchmark.pedantic(
        lambda: batch_kernel_build(phases), rounds=3, iterations=1
    )
    batch_seconds = best_seconds(lambda: batch_kernel_build(phases))

    speedup = loop_seconds / batch_seconds
    benchmark.extra_info["loop_seconds"] = loop_seconds
    benchmark.extra_info["batch_seconds"] = batch_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"kernel-build speedup only {speedup:.2f}x "
        f"({KERNEL_PHASES} phases, p={KERNEL_PRECISION})"
    )

    # the batched matrix is the loop's rows, bit for bit — rows sum to 1
    assert np.array_equal(loop_kernel_build(phases), batch_kernel_build(phases))
    assert np.allclose(batch_kernel_build(phases).sum(axis=1), 1.0)
