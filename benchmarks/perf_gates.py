"""Shared perf-gate definitions for the benchmark suite and CI trajectory.

The pytest benchmarks (``bench_generators.py``, ``bench_qpe_kernel.py``)
and the CI ``bench-trajectory`` runner (``trajectory.py``) enforce the
same speedup gates on the same workloads.  Thresholds, the timing helper
and the workload builders live here so the two entry points cannot drift
apart — raising a gate in one place raises it everywhere.
"""

from __future__ import annotations

import time

import numpy as np

# Wall-clock speedup gates (absolute thresholds; measured margins are
# listed in the modules that enforce them).
MIN_GENERATOR_SPEEDUP = 5.0
MIN_KERNEL_SPEEDUP = 3.0

# Sharded readout (worker processes) vs the single-process batched stage.
# Wall-clock parallel speedup needs actual cores, so this gate is only
# *enforced* on multi-core hosts (CI runners are; a 1-CPU container cannot
# beat the serial stage and records the number as data instead — the same
# policy the warm-sweep speedup follows).  The bit-identity contract of
# the merged shards is hardware-independent and gates everywhere.
MIN_READOUT_SHARD_SPEEDUP = 1.5
READOUT_SHARD_COUNT = 4

# Preconditioned LOBPCG vs ARPACK eigsh on the ill-conditioned midrange
# eigenproblem (the workload the "auto" midrange band exists for).  Both
# timings come from the same run on the same matrix, so the gate is
# hardware-robust, but it needs a scipy build with lobpcg — hosts without
# one record the eigsh timing as data instead (``eigensolver_gate_enforced``).
MIN_LOBPCG_SPEEDUP = 2.0

# Relative trend gate of the per-PR benchmark series
# (``benchmarks/trajectory.py --series``): each speedup metric of the new
# entry must reach at least this fraction of the previous PR's value.
# Deliberately loose — both numbers come from different CI runs on noisy
# shared runners, so this catches real regressions (a vectorized path
# falling back to a loop) without flaking on scheduler jitter.
MIN_RELATIVE_TREND = 0.5

# Workload scales.
GENERATOR_NODES = 1000
GENERATOR_CLUSTERS = 3
KERNEL_PHASES = 1024
KERNEL_PRECISION = 7
SHARD_NODES = 512
SHARD_SHOTS = 2048
SHARD_SEED = 99
EIGENSOLVER_NODES = 1024  # midrange: SPARSE_AUTO_THRESHOLD <= n < ceiling
EIGENSOLVER_CLUSTERS = 4
EIGENSOLVER_K = 4
EIGENSOLVER_WEIGHT_DECADES = 6.0
EIGENSOLVER_SEED = 7


def usable_cores() -> int:
    """CPU cores the process may actually use (affinity-aware)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def shard_gate_enforced() -> bool:
    """Whether the sharded-readout wall-clock gate applies on this host."""
    return usable_cores() >= 2


def eigensolver_gate_enforced() -> bool:
    """Whether the LOBPCG-vs-eigsh gate applies on this host.

    The gate compares the sparse backend's two iterative routes, so it
    needs a scipy build that ships ``lobpcg``; anything less records the
    available timings as data.
    """
    from repro.linalg.backends import HAVE_LOBPCG

    return HAVE_LOBPCG


def ill_conditioned_laplacian():
    """The gated midrange eigenproblem: a weight-skewed SBM Laplacian.

    The adjacency pattern is the standard sparse mixed SBM at midrange
    scale, but edge weights are drawn log-uniformly across
    ``EIGENSOLVER_WEIGHT_DECADES`` orders of magnitude, so the
    unnormalized Laplacian's degree diagonal — and with it the spectrum —
    spans ~10^6.  ARPACK's shiftless Lanczos needs many restarts to pull
    the smallest eigenvalues out of that spread; the degree/Jacobi
    preconditioner hands LOBPCG the rescaling for free, which is exactly
    the regime the "auto" midrange band routes to LOBPCG.  (A normalized
    Laplacian would be unit-diagonal and the preconditioner inert — the
    skewed weights are what makes this gate meaningful.)
    """
    import scipy.sparse as sparse

    from repro.graphs import sparse_mixed_sbm

    graph, _ = sparse_mixed_sbm(
        EIGENSOLVER_NODES, EIGENSOLVER_CLUSTERS, seed=EIGENSOLVER_SEED
    )
    pattern = sparse.csr_matrix(graph.symmetrized_adjacency()).tocoo()
    upper = pattern.row < pattern.col
    rows, cols = pattern.row[upper], pattern.col[upper]
    rng = np.random.default_rng(EIGENSOLVER_SEED)
    weights = 10.0 ** rng.uniform(0.0, EIGENSOLVER_WEIGHT_DECADES, size=rows.size)
    adjacency = sparse.coo_matrix(
        (
            np.concatenate([weights, weights]),
            (np.concatenate([rows, cols]), np.concatenate([cols, rows])),
        ),
        shape=pattern.shape,
    ).tocsr()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    return (sparse.diags(degrees) - adjacency).astype(complex).tocsr()


def readout_shard_case():
    """``(backend, accepted)`` of the gated sharded-readout workload.

    Same shape as ``bench_readout_batch``'s analytic case but with a
    tomography-dominated shot count, so the per-row work the shards split
    dwarfs the per-worker process/pickle overhead.
    """
    from repro.core.config import QSCConfig
    from repro.core.projection import accepted_outcomes
    from repro.core.qpe_engine import make_backend
    from repro.graphs import hermitian_laplacian, sparse_mixed_sbm

    graph, _ = sparse_mixed_sbm(SHARD_NODES, 4, seed=1)
    laplacian = hermitian_laplacian(graph, backend="dense")
    config = QSCConfig(backend="analytic", precision_bits=6, shots=SHARD_SHOTS)
    backend = make_backend(laplacian, config)
    accepted = accepted_outcomes(0.3, 6, backend.lambda_scale)
    return backend, accepted


def best_seconds(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` — robust to one-off scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def generator_cases() -> dict:
    """Name -> ``build(version)`` for the gated generator workloads."""
    from repro.graphs import cyclic_flow_sbm, mixed_sbm

    return {
        "mixed_sbm": lambda version: mixed_sbm(
            GENERATOR_NODES,
            GENERATOR_CLUSTERS,
            seed=0,
            generator_version=version,
        ),
        "cyclic_flow_sbm": lambda version: cyclic_flow_sbm(
            GENERATOR_NODES,
            GENERATOR_CLUSTERS,
            intra_directed=True,
            seed=0,
            generator_version=version,
        ),
    }


def kernel_phases() -> np.ndarray:
    """The gated kernel workload: a bulk spectrum plus dyadic phases so
    the Dirichlet-kernel limit branch is exercised too."""
    phases = np.random.default_rng(17).random(KERNEL_PHASES)
    phases[:8] = np.arange(8) / 2**KERNEL_PRECISION
    return phases


def loop_kernel_build(phases: np.ndarray) -> np.ndarray:
    """The legacy per-eigenvalue kernel build (one call per phase)."""
    from repro.quantum.phase_estimation import qpe_outcome_distribution

    return np.vstack(
        [qpe_outcome_distribution(phase, KERNEL_PRECISION) for phase in phases]
    )


def batch_kernel_build(phases: np.ndarray) -> np.ndarray:
    """The batched kernel build (one broadcast pass)."""
    from repro.quantum.phase_estimation import qpe_outcome_distributions

    return qpe_outcome_distributions(phases, KERNEL_PRECISION)
