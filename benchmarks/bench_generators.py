"""Benchmark — vectorized (v2) SBM generators versus the legacy pair loop.

PR 3's spectral cache left the seed-locked pure-Python pair loops of
``mixed_sbm``/``cyclic_flow_sbm`` as the floor of every warm sweep re-run:
at 1k nodes each generator call walks ~500k node pairs in Python.  The v2
seed contract (``generator_version="v2"``) samples each cluster block's
pair set with one chunked Bernoulli array and bulk-inserts the result, so
generation cost drops to O(edges) NumPy work.

Gates (shared with CI's ``bench-trajectory`` job via ``perf_gates``):

* v2 must be >= 5x faster than v1 for both generators at 1000 nodes
  (measured ~8-13x on one core);
* v2 must stay *statistically* faithful to v1 — total connection count
  within 10% and directed fraction within 0.05 at matched parameters (the
  distributions are identical; only the stream layout differs).
"""

import pytest
from perf_gates import (
    GENERATOR_NODES,
    MIN_GENERATOR_SPEEDUP,
    best_seconds,
    generator_cases,
)


@pytest.mark.benchmark(group="generators")
@pytest.mark.parametrize("name", ["mixed_sbm", "cyclic_flow_sbm"])
def test_bench_generator_vectorization(benchmark, name):
    build = generator_cases()[name]

    v1_seconds = best_seconds(lambda: build("v1"), repeats=2)
    benchmark.pedantic(lambda: build("v2"), rounds=3, iterations=1)
    v2_seconds = best_seconds(lambda: build("v2"))

    speedup = v1_seconds / v2_seconds
    benchmark.extra_info["v1_seconds"] = v1_seconds
    benchmark.extra_info["v2_seconds"] = v2_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_GENERATOR_SPEEDUP, (
        f"{name} v2 speedup only {speedup:.2f}x at {GENERATOR_NODES} nodes"
    )

    # statistical faithfulness: identical per-pair law, so totals at a
    # common parameter point must agree closely (different seed streams)
    graph_v1, labels_v1 = build("v1")
    graph_v2, labels_v2 = build("v2")
    assert (labels_v1 == labels_v2).all()
    total_v1 = graph_v1.num_edges + graph_v1.num_arcs
    total_v2 = graph_v2.num_edges + graph_v2.num_arcs
    assert abs(total_v1 - total_v2) <= 0.1 * total_v1, (
        f"{name} v2 connection count drifted: {total_v1} vs {total_v2}"
    )
    assert abs(graph_v1.directed_fraction - graph_v2.directed_fraction) <= 0.05, (
        f"{name} v2 directed fraction drifted: "
        f"{graph_v1.directed_fraction:.3f} vs "
        f"{graph_v2.directed_fraction:.3f}"
    )
