"""Benchmark — sharded readout (worker processes) vs the batched stage.

The readout stage is embarrassingly parallel across rows, so splitting it
into supervised row shards (``repro.pipeline.sharding``) buys wall-clock
on multi-core hosts while the deterministic RNG layout keeps the merged
output bit-identical at any shard count.  This module records the
shard-count scaling curve and enforces two contracts:

* **bit identity** (every host): the merged sharded result equals the
  single-process ``batched_readout`` exactly, for every measured count;
* **wall clock** (multi-core hosts only): ``READOUT_SHARD_COUNT`` shards
  must beat the unsharded stage by ``MIN_READOUT_SHARD_SPEEDUP``.  A
  1-CPU container cannot beat a serial stage with parallelism plus
  process overhead, so there the number is printed as data — the same
  policy the warm-sweep speedup follows (``benchmarks/trajectory.py``
  applies the identical rule in CI).
"""

import time

import numpy as np
import pytest
from perf_gates import (
    MIN_READOUT_SHARD_SPEEDUP,
    READOUT_SHARD_COUNT,
    SHARD_SEED,
    SHARD_SHOTS,
    readout_shard_case,
    shard_gate_enforced,
    usable_cores,
)

from repro.core.readout import batched_readout
from repro.pipeline.sharding import sharded_readout
from repro.utils.rng import ensure_rng

SHARD_COUNTS = (1, 2, READOUT_SHARD_COUNT)


@pytest.mark.benchmark(group="readout-shards")
def test_bench_readout_shard_scaling(benchmark):
    """Scaling curve over shard counts; gated at READOUT_SHARD_COUNT."""
    backend, accepted = readout_shard_case()

    start = time.perf_counter()
    reference = batched_readout(
        backend, accepted, SHARD_SHOTS, ensure_rng(SHARD_SEED)
    )
    unsharded_seconds = time.perf_counter() - start

    def run_sharded(count):
        return sharded_readout(
            backend,
            accepted,
            SHARD_SHOTS,
            ensure_rng(SHARD_SEED),
            shard_count=count,
        )

    curve = {}
    for count in SHARD_COUNTS:
        if count == READOUT_SHARD_COUNT:
            sharded = benchmark.pedantic(
                lambda: run_sharded(count), rounds=3, iterations=1
            )
            seconds = benchmark.stats.stats.min
        else:
            start = time.perf_counter()
            sharded = run_sharded(count)
            seconds = time.perf_counter() - start
        curve[count] = seconds
        # Bit identity gates on every host, at every count.
        np.testing.assert_array_equal(sharded.result.rows, reference.rows)
        np.testing.assert_array_equal(sharded.result.norms, reference.norms)
        assert sharded.incomplete_shards == ()

    speedup = unsharded_seconds / curve[READOUT_SHARD_COUNT]
    points = ", ".join(
        f"{count} shards {seconds:.3f}s" for count, seconds in curve.items()
    )
    print(
        f"\nsharded readout ({usable_cores()} cores): unsharded "
        f"{unsharded_seconds:.3f}s, {points}, speedup {speedup:.2f}x "
        f"at {READOUT_SHARD_COUNT} shards"
    )
    if shard_gate_enforced():
        assert speedup >= MIN_READOUT_SHARD_SPEEDUP, (
            f"sharded readout regressed: {speedup:.2f}x at "
            f"{READOUT_SHARD_COUNT} shards"
        )
