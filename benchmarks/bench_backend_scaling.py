"""Benchmark — dense vs sparse linear-algebra backend scaling.

The headline case clusters a 10k-node sparse MSBM graph end-to-end through
the CLI with ``--backend sparse`` — a size where the dense path would need
a 10000 × 10000 complex Laplacian (~1.6 GB with workspace copies) plus an
O(n³) eigendecomposition, i.e. it does not fit comfortably at all.  The
companion cases pin the crossover behaviour: at mid size both backends
must agree on labels, and sparse construction must beat dense
construction by a wide margin.
"""

import numpy as np
import pytest

from repro.graphs import hermitian_laplacian, io as graph_io, sparse_mixed_sbm
from repro.metrics import adjusted_rand_index
from repro.spectral import ClassicalSpectralClustering


@pytest.mark.benchmark(group="backend-scaling")
def test_bench_sparse_10k_end_to_end_cli(benchmark, tmp_path):
    """10k nodes through generate → cluster, sparse backend, via the CLI."""
    from repro.cli import main

    graph, truth = sparse_mixed_sbm(10_000, 4, seed=3)
    path = tmp_path / "big.mixed"
    graph_io.save(graph, path)
    printed: list[str] = []

    def run():
        import contextlib
        import io as io_module

        buffer = io_module.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(
                [
                    "cluster",
                    "--input",
                    str(path),
                    "--clusters",
                    "4",
                    "--method",
                    "classical",
                    "--backend",
                    "sparse",
                    "--seed",
                    "0",
                ]
            )
        printed.append(buffer.getvalue())
        return code

    code = benchmark.pedantic(run, rounds=1, iterations=1)
    assert code == 0
    labels = np.array([int(tok) for tok in printed[-1].splitlines()[0].split()[1:]])
    assert labels.shape == (10_000,)
    assert adjusted_rand_index(truth, labels) > 0.95


@pytest.mark.benchmark(group="backend-scaling")
def test_bench_dense_sparse_label_agreement_mid_size(benchmark):
    """At 1.5k nodes both backends run; labels must agree exactly."""
    graph, truth = sparse_mixed_sbm(1_500, 3, seed=5)

    def run():
        sparse = ClassicalSpectralClustering(3, backend="sparse", seed=0).fit(graph)
        dense = ClassicalSpectralClustering(3, backend="dense", seed=0).fit(graph)
        return sparse.labels, dense.labels

    sparse_labels, dense_labels = benchmark.pedantic(run, rounds=1, iterations=1)
    # near-degenerate eigenspaces may rotate between ARPACK and LAPACK,
    # flipping a few boundary nodes — require agreement, not bit-equality
    assert adjusted_rand_index(sparse_labels, dense_labels) > 0.98
    assert adjusted_rand_index(truth, sparse_labels) > 0.95


@pytest.mark.benchmark(group="backend-scaling")
def test_bench_sparse_laplacian_construction(benchmark):
    """CSR Laplacian assembly for a 10k-node graph stays sub-second."""
    graph, _ = sparse_mixed_sbm(10_000, 4, seed=7)
    laplacian = benchmark.pedantic(
        lambda: hermitian_laplacian(graph, backend="sparse"),
        rounds=3,
        iterations=1,
    )
    assert laplacian.shape == (10_000, 10_000)
    assert laplacian.nnz < 10_000 * 40  # stays sparse: bounded fill-in
