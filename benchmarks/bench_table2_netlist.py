"""Benchmark T2 — netlist module partitioning."""

import numpy as np
import pytest

from repro.experiments import table2_netlist


@pytest.mark.benchmark(group="T2")
def test_bench_netlist_partitioning(benchmark, quick_trials):
    records = benchmark.pedantic(
        lambda: table2_netlist.run(
            module_counts=(3,), gates_per_module=12, trials=quick_trials
        ),
        rounds=1,
        iterations=1,
    )
    quantum = [r for r in records if r.method == "quantum"]
    symmetrized = [r for r in records if r.method == "symmetrized"]
    q_mean = np.mean([r.ari for r in quantum])
    s_mean = np.mean([r.ari for r in symmetrized])
    # paper shape: Hermitian clustering at least matches the direction-blind
    # baseline on signal-flow netlists (it wins clearly at full scale; the
    # reduced benchmark instances occasionally tie)
    assert q_mean >= s_mean - 0.05
    assert q_mean > 0.5


@pytest.mark.benchmark(group="T2")
def test_bench_c17_partition(benchmark):
    summary = benchmark.pedantic(table2_netlist.c17_partition, rounds=1, iterations=1)
    assert summary["num_nodes"] == 11
    assert summary["cut_weight"] >= 0
