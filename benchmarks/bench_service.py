"""Benchmark — a served fig1 job vs the direct ``SweepRunner`` call.

``repro serve`` is a transport: the job's sweep runs through exactly the
code path the direct call takes, so the only cost the service may add is
bookkeeping — socket round trips, event assembly and streaming, and (at
the default executor) the worker-process launch.  This module measures
that overhead at smoke scale and re-asserts the core guarantee alongside
it: the served artifact's records are bit-identical to the direct run's.

The number is recorded as data, not gated — service overhead is
dominated by process-launch latency, which varies too much across hosts
for a stable threshold.  The in-process executor keeps the measurement
about the transport, not about ``fork``.
"""

import time

import pytest

from repro.experiments.runner import SweepRunner, spec_from_job
from repro.pipeline.supervisor import InlineShardExecutor
from repro.service import ServerThread

#: The tiny fig1 job the service tests use (tests/service/conftest.py):
#: one strength, 18 nodes, 64 shots — milliseconds per run.
SERVICE_JOB = {
    "experiment": "fig1",
    "trials": 1,
    "overrides": {
        "strengths": [0.9],
        "num_nodes": 18,
        "num_clusters": 2,
        "shots": 64,
        "precision_bits": 5,
    },
}


@pytest.mark.benchmark(group="service")
def test_bench_served_job_overhead(benchmark):
    """Round-trip a job through a live server; print the added cost."""
    start = time.perf_counter()
    direct = SweepRunner(spec_from_job(SERVICE_JOB), jobs=1).run().to_artifact()
    direct_seconds = time.perf_counter() - start

    with ServerThread(executor_factory=InlineShardExecutor) as server:
        client = server.client()

        def round_trip():
            submitted = client.submit(SERVICE_JOB)
            client.events(submitted["job"])  # full streamed transcript
            return client.artifact(submitted["job"])

        served = benchmark.pedantic(round_trip, rounds=3, iterations=1)
        served_seconds = benchmark.stats.stats.min

    assert served["records"] == direct["records"]
    overhead = served_seconds - direct_seconds
    print(
        f"fig1 smoke job: direct {direct_seconds:.3f}s, "
        f"served {served_seconds:.3f}s, "
        f"service overhead {overhead * 1000.0:.1f}ms"
    )
