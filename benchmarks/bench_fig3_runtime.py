"""Benchmark F3 — runtime scaling (quantum proxy vs classical O(n³))."""

import pytest

from repro.experiments import fig3_runtime_scaling


@pytest.mark.benchmark(group="F3")
def test_bench_runtime_scaling(benchmark):
    samples = benchmark.pedantic(
        lambda: fig3_runtime_scaling.run(sizes=(64, 128, 256, 512)),
        rounds=1,
        iterations=1,
    )
    fits = fig3_runtime_scaling.exponents(samples)
    # paper shape: near-linear quantum proxy vs cubic classical model.
    assert fits["quantum_steps"] < 2.0
    assert fits["classical_steps"] > 2.7
    # and the measured dense eigensolver really grows superquadratically
    # is machine-dependent; assert at least that time increases with n.
    times = [s.dense_seconds for s in samples]
    assert times[-1] > times[0]


@pytest.mark.benchmark(group="F3")
def test_bench_dense_eigensolve_512(benchmark):
    import numpy as np

    from repro.graphs import ensure_connected, hermitian_laplacian, mixed_sbm
    from repro.spectral import dense_lowest_eigenpairs

    graph, _ = mixed_sbm(512, 2, p_intra=0.03, p_inter=0.005, seed=0)
    ensure_connected(graph, seed=0)
    laplacian = hermitian_laplacian(graph)

    values, vectors = benchmark(lambda: dense_lowest_eigenpairs(laplacian, 2))
    assert values.shape == (2,)
    assert np.isfinite(vectors).all()
