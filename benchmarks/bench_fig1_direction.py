"""Benchmark F1 — the direction-strength crossover figure."""

import numpy as np
import pytest

from repro.experiments import fig1_direction_sweep


@pytest.mark.benchmark(group="F1")
def test_bench_direction_sweep(benchmark, quick_trials):
    records = benchmark.pedantic(
        lambda: fig1_direction_sweep.run(
            strengths=(0.5, 1.0), num_nodes=48, trials=quick_trials
        ),
        rounds=1,
        iterations=1,
    )

    def mean_ari(method, strength):
        rows = [
            r.ari
            for r in records
            if r.method == method and r.parameters["strength"] == strength
        ]
        return float(np.mean(rows))

    # paper shape: quantum climbs from chance to (near-)perfect with
    # direction strength; symmetrized never leaves chance.
    assert mean_ari("quantum", 1.0) > 0.8
    assert mean_ari("quantum", 1.0) > mean_ari("quantum", 0.5) + 0.4
    assert abs(mean_ari("symmetrized", 1.0)) < 0.25
    assert abs(mean_ari("symmetrized", 0.5)) < 0.25
