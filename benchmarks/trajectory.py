"""CI perf-trajectory runner: smoke-scale benches -> a per-PR series.

The benchmark suite gates the repo's perf wins (generator vectorization,
batched kernel build, spectral cache), but pytest-benchmark output is not
a durable record.  This script runs the key measurements at smoke scale,
enforces the shared gates (thresholds live in ``perf_gates`` so the
pytest benchmarks and this runner cannot drift), and serializes one JSON
summary per run.  With ``--series`` it additionally maintains
``BENCH_trajectory.json`` — a schema-tagged list of one entry per PR —
and **diffs the new entry against the previous PR's**: every speedup
metric must reach at least ``perf_gates.MIN_RELATIVE_TREND`` of its
predecessor (a *relative* regression gate on top of the absolute
thresholds), so a vectorized path quietly degrading between PRs fails CI
even while it still clears the absolute bar.

Gating policy: wall-clock gates compare two timings from the *same* run
(v1 vs v2, loop vs batch), which is robust on noisy shared runners; the
spectral cache is gated on its deterministic hit/miss counters, with the
warm-sweep speedup recorded as data rather than enforced (a single
scheduler stall in a ~50 ms sweep would otherwise flake CI —
``benchmarks/bench_fig2_precision.py`` still gates it for local runs).
The shared content-addressed store is gated the same way: a warm
store-backed sweep with the memory tier cleared must be served entirely
by on-disk hits (``warm_store_*`` gates), its speedup recorded as data.
The cross-run trend gate uses the loose ``MIN_RELATIVE_TREND`` fraction
because its two sides come from different CI runs.

Run from the repository root::

    PYTHONPATH=src python benchmarks/trajectory.py \
        --out BENCH_pr10.json --series BENCH_trajectory.json --label pr10

Exit status is non-zero if any gate fails; the JSON (and the updated
series) is written either way so the failing numbers are inspectable.
An entry whose label already exists in the series is replaced, so local
re-runs stay idempotent.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

import numpy as np
from perf_gates import (
    EIGENSOLVER_K,
    EIGENSOLVER_NODES,
    GENERATOR_NODES,
    KERNEL_PHASES,
    KERNEL_PRECISION,
    MIN_GENERATOR_SPEEDUP,
    MIN_KERNEL_SPEEDUP,
    MIN_LOBPCG_SPEEDUP,
    MIN_READOUT_SHARD_SPEEDUP,
    MIN_RELATIVE_TREND,
    READOUT_SHARD_COUNT,
    SHARD_SEED,
    SHARD_SHOTS,
    batch_kernel_build,
    best_seconds,
    eigensolver_gate_enforced,
    generator_cases,
    ill_conditioned_laplacian,
    kernel_phases,
    loop_kernel_build,
    readout_shard_case,
    shard_gate_enforced,
    usable_cores,
)

SCHEMA = "repro.bench/1"
SERIES_SCHEMA = "repro.bench-series/1"


def measure_generators() -> dict:
    """v1 vs v2 wall time of both SBM generators at smoke scale."""
    out = {}
    for name, build in generator_cases().items():
        v1 = best_seconds(lambda: build("v1"), repeats=2)
        v2 = best_seconds(lambda: build("v2"), repeats=3)
        out[name] = {
            "num_nodes": GENERATOR_NODES,
            "v1_seconds": v1,
            "v2_seconds": v2,
            "speedup": v1 / v2,
        }
    return out


def measure_kernel() -> dict:
    """Per-phase loop vs batched build of the QPE response kernel."""
    phases = kernel_phases()
    if not np.array_equal(loop_kernel_build(phases), batch_kernel_build(phases)):
        raise AssertionError("batched kernel differs from per-phase loop")
    loop = best_seconds(lambda: loop_kernel_build(phases), repeats=2)
    batch = best_seconds(lambda: batch_kernel_build(phases), repeats=3)
    return {
        "num_phases": KERNEL_PHASES,
        "precision_bits": KERNEL_PRECISION,
        "loop_seconds": loop,
        "batch_seconds": batch,
        "speedup": loop / batch,
    }


def measure_sweep_cache() -> dict:
    """Cold vs warm fig2 smoke sweep — the spectral cache's win.

    The warm speedup is recorded for the trajectory; the *gate* is the
    deterministic counter contract (warm pass fully cache-served,
    bit-identical records).
    """
    from repro.core.qpe_engine import clear_spectral_cache
    from repro.experiments import fig2_precision_sweep
    from repro.experiments.runner import SweepRunner

    spec = fig2_precision_sweep.spec(precisions=(2, 7), num_nodes=40, trials=1)
    runner = SweepRunner(spec)
    clear_spectral_cache()
    cold = runner.run()
    warm = runner.run()
    if warm.records != cold.records:
        raise AssertionError("warm sweep records differ from cold")
    return {
        "tasks": len(spec.tasks()),
        "cold_seconds": cold.elapsed_seconds,
        "warm_seconds": warm.elapsed_seconds,
        "warm_speedup": cold.elapsed_seconds / warm.elapsed_seconds,
        "cold_cache": cold.cache,
        "warm_cache": warm.cache,
    }


def measure_store() -> dict:
    """Cold vs warm *store-backed* smoke sweep — the cross-process gate.

    Extends the in-process ``measure_sweep_cache`` contract to the shared
    content-addressed store: the sweep runs twice against one temporary
    store root with the in-memory spectral tier cleared in between, so
    the warm pass simulates a *fresh process* that can only be served by
    the on-disk tier.  The gate is deterministic counters again — warm
    pass misses nothing, hits the disk tier at least once, and produces
    bit-identical records — while the warm speedup rides along as data.
    """
    import tempfile

    from repro.core.qpe_engine import clear_spectral_cache
    from repro.experiments import fig2_precision_sweep
    from repro.experiments.runner import SweepRunner
    from repro.store import configure_store

    spec_kwargs = {"precisions": (2, 7), "num_nodes": 40, "trials": 1}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-store-") as root:
            spec = fig2_precision_sweep.spec(store_dir=root, **spec_kwargs)
            runner = SweepRunner(spec)
            clear_spectral_cache()
            cold = runner.run()
            # Drop the memory tier so the warm pass plays a fresh process:
            # only the on-disk store can serve it.
            clear_spectral_cache()
            warm = runner.run()
    finally:
        configure_store(root=None)
        clear_spectral_cache()
    if warm.records != cold.records:
        raise AssertionError("warm store-backed sweep records differ from cold")
    return {
        "tasks": len(spec.tasks()),
        "cold_seconds": cold.elapsed_seconds,
        "warm_seconds": warm.elapsed_seconds,
        "warm_speedup": cold.elapsed_seconds / warm.elapsed_seconds,
        "cold_store": cold.store,
        "warm_store": warm.store,
    }


def measure_readout_shards() -> dict:
    """Shard-count scaling curve of the sharded readout stage.

    Bit identity of the merged shards against the single-process stage is
    verified for every measured count (an ``AssertionError`` here fails
    the whole run — determinism has no hardware excuse).  The wall-clock
    speedup at ``READOUT_SHARD_COUNT`` shards is *gated* only on
    multi-core hosts; single-core containers record it as data.
    """
    from repro.core.readout import batched_readout
    from repro.pipeline.sharding import sharded_readout
    from repro.utils.rng import ensure_rng

    backend, accepted = readout_shard_case()
    unsharded_holder = {}

    def run_unsharded():
        unsharded_holder["result"] = batched_readout(
            backend, accepted, SHARD_SHOTS, ensure_rng(SHARD_SEED)
        )

    unsharded = best_seconds(run_unsharded, repeats=2)
    reference = unsharded_holder["result"]
    curve = {}
    for count in (2, READOUT_SHARD_COUNT):
        sharded_holder = {}

        def run_sharded(count=count):
            sharded_holder["result"] = sharded_readout(
                backend,
                accepted,
                SHARD_SHOTS,
                ensure_rng(SHARD_SEED),
                shard_count=count,
            )

        curve[str(count)] = best_seconds(run_sharded, repeats=2)
        sharded = sharded_holder["result"]
        if (
            not np.array_equal(sharded.result.rows, reference.rows)
            or not np.array_equal(sharded.result.norms, reference.norms)
            or sharded.incomplete_shards
        ):
            raise AssertionError(
                f"sharded readout at {count} shards differs from the "
                "unsharded stage"
            )
    return {
        "num_nodes": int(backend.num_nodes),
        "shots": SHARD_SHOTS,
        "cores": usable_cores(),
        "unsharded_seconds": unsharded,
        "sharded_seconds": curve,
        "speedup": unsharded / curve[str(READOUT_SHARD_COUNT)],
        "gate_enforced": shard_gate_enforced(),
    }


def measure_eigensolver() -> dict:
    """Preconditioned LOBPCG vs ARPACK eigsh on the midrange workload.

    The matrix is the weight-skewed SBM Laplacian from
    ``perf_gates.ill_conditioned_laplacian`` — the problem class the
    "auto" midrange band routes to LOBPCG.  Eigenvalue agreement between
    the two routes is asserted (an ``AssertionError`` fails the whole
    run), the LOBPCG route must actually be taken (no silent eigsh
    fallback masquerading as a win), and the wall-clock speedup gates at
    ``MIN_LOBPCG_SPEEDUP`` wherever scipy ships lobpcg.  Hosts without
    lobpcg record the eigsh timing as data.
    """
    from repro.linalg.backends import HAVE_LOBPCG, SparseBackend

    laplacian = ill_conditioned_laplacian()
    eigsh_backend = SparseBackend(solver="eigsh")
    eigsh_values, _ = eigsh_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K)
    eigsh_seconds = best_seconds(
        lambda: eigsh_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K),
        repeats=2,
    )
    out = {
        "num_nodes": EIGENSOLVER_NODES,
        "k": EIGENSOLVER_K,
        "eigsh_seconds": eigsh_seconds,
        "gate_enforced": eigensolver_gate_enforced(),
    }
    if not HAVE_LOBPCG:
        return out
    lobpcg_backend = SparseBackend(solver="lobpcg")
    lobpcg_values, _ = lobpcg_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K)
    if lobpcg_backend.last_route != "lobpcg":
        raise AssertionError(
            "LOBPCG route fell back to "
            f"{lobpcg_backend.last_route!r} on the gated workload"
        )
    if not np.allclose(lobpcg_values, eigsh_values, rtol=1e-4, atol=1e-8):
        raise AssertionError("LOBPCG eigenvalues differ from eigsh")
    lobpcg_seconds = best_seconds(
        lambda: lobpcg_backend.lowest_eigenpairs(laplacian, EIGENSOLVER_K),
        repeats=2,
    )
    out["lobpcg_seconds"] = lobpcg_seconds
    out["speedup"] = eigsh_seconds / lobpcg_seconds
    return out


def measure_array_dispatch() -> dict:
    """The array backend's dispatched QPE kernel vs the legacy numpy path.

    Recorded as *data*, never gated: on the default CI leg the only
    importable namespace is numpy, where the dispatched kernel computes
    the same broadcast at the same speed — the measurement exists so the
    trajectory shows the dispatch overhead is nil and lights up with real
    numbers on hosts where torch/CuPy is installed.  Equality against the
    legacy kernel *is* asserted (tolerance-based, as everywhere the
    array backend is compared).
    """
    from repro.linalg import default_namespace_name, dispatch_scope

    phases = kernel_phases()
    legacy = batch_kernel_build(phases)
    plain_seconds = best_seconds(lambda: batch_kernel_build(phases), repeats=3)

    def dispatched_build():
        with dispatch_scope():
            return batch_kernel_build(phases)

    dispatched = dispatched_build()
    if not np.allclose(dispatched, legacy, atol=1e-9):
        raise AssertionError("dispatched QPE kernel differs from the legacy build")
    dispatched_seconds = best_seconds(dispatched_build, repeats=3)
    return {
        "namespace": default_namespace_name(),
        "num_phases": KERNEL_PHASES,
        "precision_bits": KERNEL_PRECISION,
        "plain_seconds": plain_seconds,
        "dispatched_seconds": dispatched_seconds,
        "relative": plain_seconds / dispatched_seconds,
    }


def trend_metrics(results: dict) -> dict:
    """The speedup metrics compared across PR entries by the trend gate.

    Only same-run *ratios* participate (absolute seconds shift with
    runner hardware; the warm-sweep speedup is too short-lived to compare
    across runs and is recorded as data only).
    """
    metrics = {
        f"generator:{name}": row["speedup"]
        for name, row in results["generators"].items()
    }
    metrics["kernel"] = results["kernel"]["speedup"]
    shards = results.get("readout_shards")
    if shards is not None and shards["gate_enforced"]:
        # Parallel speedup only trends where it is gated (multi-core
        # hosts); a single-core container's ~1x would poison the baseline.
        metrics["readout_shards"] = shards["speedup"]
    solver = results.get("eigensolver")
    if solver is not None and solver["gate_enforced"]:
        # Same enforced-only policy: a lobpcg-less host has no speedup
        # to trend and must not poison the baseline with its absence.
        metrics["eigensolver"] = solver["speedup"]
    return metrics


def load_series(path) -> dict:
    """Read (or initialise) the per-PR benchmark series."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"schema": SERIES_SCHEMA, "entries": []}
    with open(path, encoding="utf-8") as handle:
        series = json.load(handle)
    if series.get("schema") != SERIES_SCHEMA or not isinstance(
        series.get("entries"), list
    ):
        raise AssertionError(
            f"{path} is not a {SERIES_SCHEMA} series file"
        )
    return series


def evaluate_trend_gates(summary: dict, series: dict) -> dict:
    """Relative regression gates of ``summary`` against the previous entry.

    The baseline is the newest series entry whose label differs from the
    current one (so re-running a PR's benches diffs against the *previous
    PR*, not against itself).  An empty series yields no trend gates —
    the first entry only seeds the baseline.
    """
    previous = None
    for entry in reversed(series["entries"]):
        if entry.get("label") != summary["label"]:
            previous = entry
            break
    if previous is None:
        return {}
    gates = {}
    baseline = trend_metrics(previous["results"])
    current = trend_metrics(summary["results"])
    for name, value in current.items():
        if name not in baseline:
            continue  # metric introduced this PR: no baseline to diff
        floor = baseline[name] * MIN_RELATIVE_TREND
        gates[f"trend:{name}"] = {
            "threshold": floor,
            "baseline": baseline[name],
            "baseline_label": previous.get("label"),
            "value": value,
            "passed": value >= floor,
        }
    for name in baseline:
        # A gated metric that vanished from the current run must FAIL,
        # not silently lose its gate — removing a bench case is a
        # deliberate act that has to touch the series on purpose.
        if name not in current:
            gates[f"trend:{name}"] = {
                "threshold": baseline[name] * MIN_RELATIVE_TREND,
                "baseline": baseline[name],
                "baseline_label": previous.get("label"),
                "value": None,
                "passed": False,
            }
    return gates


def update_series(series: dict, summary: dict) -> dict:
    """Replace-or-append the summary's entry in the series (label-keyed)."""
    entries = [
        entry
        for entry in series["entries"]
        if entry.get("label") != summary["label"]
    ]
    entries.append(summary)
    return {"schema": SERIES_SCHEMA, "entries": entries}


def evaluate_gates(results: dict) -> dict:
    """Gate name -> {threshold, value, passed} for every enforced gate."""
    gates = {}
    for name, row in results["generators"].items():
        gates[f"generator_speedup:{name}"] = {
            "threshold": MIN_GENERATOR_SPEEDUP,
            "value": row["speedup"],
            "passed": row["speedup"] >= MIN_GENERATOR_SPEEDUP,
        }
    gates["kernel_build_speedup"] = {
        "threshold": MIN_KERNEL_SPEEDUP,
        "value": results["kernel"]["speedup"],
        "passed": results["kernel"]["speedup"] >= MIN_KERNEL_SPEEDUP,
    }
    warm_cache = results["sweep_cache"]["warm_cache"]
    gates["warm_sweep_fully_cached"] = {
        "threshold": 0,
        "value": warm_cache["misses"],
        "passed": warm_cache["misses"] == 0 and warm_cache["hits"] > 0,
    }
    warm_store = results["store"]["warm_store"]
    gates["warm_store_fully_served"] = {
        "threshold": 0,
        "value": warm_store["misses"],
        "passed": warm_store["misses"] == 0,
    }
    gates["warm_store_cross_process_hits"] = {
        # The memory tier was cleared between passes, so every warm hit
        # must come from the on-disk tier — the cross-process contract.
        "threshold": 1,
        "value": warm_store["disk_hits"],
        "passed": warm_store["disk_hits"] >= 1,
    }
    shards = results["readout_shards"]
    if shards["gate_enforced"]:
        gates[f"readout_shard_speedup@{READOUT_SHARD_COUNT}"] = {
            "threshold": MIN_READOUT_SHARD_SPEEDUP,
            "value": shards["speedup"],
            "passed": shards["speedup"] >= MIN_READOUT_SHARD_SPEEDUP,
        }
    solver = results["eigensolver"]
    if solver["gate_enforced"]:
        gates["lobpcg_speedup"] = {
            "threshold": MIN_LOBPCG_SPEEDUP,
            "value": solver["speedup"],
            "passed": solver["speedup"] >= MIN_LOBPCG_SPEEDUP,
        }
    return gates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_pr10.json",
        metavar="PATH",
        help="where to write the JSON summary (default: ./BENCH_pr10.json)",
    )
    parser.add_argument(
        "--series",
        default=None,
        metavar="PATH",
        help=(
            "per-PR series file (e.g. BENCH_trajectory.json): the new "
            "entry is diffed against the previous PR's (relative "
            "regression gate) and appended; omit to skip the series"
        ),
    )
    parser.add_argument(
        "--label",
        default="pr10",
        metavar="NAME",
        help="series label of this entry (default: pr10)",
    )
    args = parser.parse_args(argv)

    results = {
        "generators": measure_generators(),
        "kernel": measure_kernel(),
        "sweep_cache": measure_sweep_cache(),
        "store": measure_store(),
        "readout_shards": measure_readout_shards(),
        "eigensolver": measure_eigensolver(),
        "array_dispatch": measure_array_dispatch(),
    }
    gates = evaluate_gates(results)
    summary = {
        "schema": SCHEMA,
        "label": args.label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "gates": gates,
        "passed": all(gate["passed"] for gate in gates.values()),
    }
    if args.series is not None:
        series = load_series(args.series)
        trend = evaluate_trend_gates(summary, series)
        gates.update(trend)
        summary["gates"] = gates
        summary["passed"] = all(gate["passed"] for gate in gates.values())
        series = update_series(series, summary)
        with open(args.series, "w", encoding="utf-8") as handle:
            json.dump(series, handle, indent=2)
            handle.write("\n")
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    for name, gate in gates.items():
        status = "ok" if gate["passed"] else "FAIL"
        against = (
            f"threshold {gate['threshold']:.2f}"
            if isinstance(gate["threshold"], float)
            else f"threshold {gate['threshold']}"
        )
        if "baseline_label" in gate:
            against += (
                f" = {MIN_RELATIVE_TREND} x {gate['baseline']:.2f} "
                f"@{gate['baseline_label']}"
            )
        shown = "missing" if gate["value"] is None else f"{gate['value']:.2f}"
        print(f"{status:4s} {name}: {shown} ({against})")
    if args.series is not None:
        print(f"updated series {args.series}")
    print(f"wrote {args.out}")
    if not summary["passed"]:
        print("perf trajectory gates FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
