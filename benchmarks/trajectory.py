"""CI perf-trajectory runner: smoke-scale benches -> one BENCH_*.json.

The benchmark suite gates the repo's perf wins (generator vectorization,
batched kernel build, spectral cache), but pytest-benchmark output is not
a durable record.  This script runs the key measurements at smoke scale,
enforces the shared gates (thresholds live in ``perf_gates`` so the
pytest benchmarks and this runner cannot drift), and serializes one JSON
summary — ``BENCH_pr4.json`` — that CI's ``bench-trajectory`` job uploads
on every push, seeding the perf trajectory the ROADMAP asks for: any
regression fails the job, and the artifact series shows the trend across
PRs.

Gating policy: wall-clock gates compare two timings from the *same* run
(v1 vs v2, loop vs batch), which is robust on noisy shared runners; the
spectral cache is gated on its deterministic hit/miss counters, with the
warm-sweep speedup recorded as data rather than enforced (a single
scheduler stall in a ~50 ms sweep would otherwise flake CI —
``benchmarks/bench_fig2_precision.py`` still gates it for local runs).

Run from the repository root::

    PYTHONPATH=src python benchmarks/trajectory.py --out BENCH_pr4.json

Exit status is non-zero if any gate fails; the JSON is written either way
so the failing numbers are inspectable.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

import numpy as np
from perf_gates import (
    GENERATOR_NODES,
    KERNEL_PHASES,
    KERNEL_PRECISION,
    MIN_GENERATOR_SPEEDUP,
    MIN_KERNEL_SPEEDUP,
    batch_kernel_build,
    best_seconds,
    generator_cases,
    kernel_phases,
    loop_kernel_build,
)

SCHEMA = "repro.bench/1"


def measure_generators() -> dict:
    """v1 vs v2 wall time of both SBM generators at smoke scale."""
    out = {}
    for name, build in generator_cases().items():
        v1 = best_seconds(lambda: build("v1"), repeats=2)
        v2 = best_seconds(lambda: build("v2"), repeats=3)
        out[name] = {
            "num_nodes": GENERATOR_NODES,
            "v1_seconds": v1,
            "v2_seconds": v2,
            "speedup": v1 / v2,
        }
    return out


def measure_kernel() -> dict:
    """Per-phase loop vs batched build of the QPE response kernel."""
    phases = kernel_phases()
    if not np.array_equal(loop_kernel_build(phases), batch_kernel_build(phases)):
        raise AssertionError("batched kernel differs from per-phase loop")
    loop = best_seconds(lambda: loop_kernel_build(phases), repeats=2)
    batch = best_seconds(lambda: batch_kernel_build(phases), repeats=3)
    return {
        "num_phases": KERNEL_PHASES,
        "precision_bits": KERNEL_PRECISION,
        "loop_seconds": loop,
        "batch_seconds": batch,
        "speedup": loop / batch,
    }


def measure_sweep_cache() -> dict:
    """Cold vs warm fig2 smoke sweep — the spectral cache's win.

    The warm speedup is recorded for the trajectory; the *gate* is the
    deterministic counter contract (warm pass fully cache-served,
    bit-identical records).
    """
    from repro.core.qpe_engine import clear_spectral_cache
    from repro.experiments import fig2_precision_sweep
    from repro.experiments.runner import SweepRunner

    spec = fig2_precision_sweep.spec(precisions=(2, 7), num_nodes=40, trials=1)
    runner = SweepRunner(spec)
    clear_spectral_cache()
    cold = runner.run()
    warm = runner.run()
    if warm.records != cold.records:
        raise AssertionError("warm sweep records differ from cold")
    return {
        "tasks": len(spec.tasks()),
        "cold_seconds": cold.elapsed_seconds,
        "warm_seconds": warm.elapsed_seconds,
        "warm_speedup": cold.elapsed_seconds / warm.elapsed_seconds,
        "cold_cache": cold.cache,
        "warm_cache": warm.cache,
    }


def evaluate_gates(results: dict) -> dict:
    """Gate name -> {threshold, value, passed} for every enforced gate."""
    gates = {}
    for name, row in results["generators"].items():
        gates[f"generator_speedup:{name}"] = {
            "threshold": MIN_GENERATOR_SPEEDUP,
            "value": row["speedup"],
            "passed": row["speedup"] >= MIN_GENERATOR_SPEEDUP,
        }
    gates["kernel_build_speedup"] = {
        "threshold": MIN_KERNEL_SPEEDUP,
        "value": results["kernel"]["speedup"],
        "passed": results["kernel"]["speedup"] >= MIN_KERNEL_SPEEDUP,
    }
    warm_cache = results["sweep_cache"]["warm_cache"]
    gates["warm_sweep_fully_cached"] = {
        "threshold": 0,
        "value": warm_cache["misses"],
        "passed": warm_cache["misses"] == 0 and warm_cache["hits"] > 0,
    }
    return gates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_pr4.json",
        metavar="PATH",
        help="where to write the JSON summary (default: ./BENCH_pr4.json)",
    )
    args = parser.parse_args(argv)

    results = {
        "generators": measure_generators(),
        "kernel": measure_kernel(),
        "sweep_cache": measure_sweep_cache(),
    }
    gates = evaluate_gates(results)
    summary = {
        "schema": SCHEMA,
        "label": "pr4",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "gates": gates,
        "passed": all(gate["passed"] for gate in gates.values()),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    for name, gate in gates.items():
        status = "ok" if gate["passed"] else "FAIL"
        print(
            f"{status:4s} {name}: {gate['value']:.2f} "
            f"(threshold {gate['threshold']})"
        )
    print(f"wrote {args.out}")
    if not summary["passed"]:
        print("perf trajectory gates FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
