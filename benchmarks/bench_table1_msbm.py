"""Benchmark T1 — mixed-SBM accuracy table.

Regenerates the T1 comparison rows at benchmark scale and times the
dominant kernel (the quantum pipeline on one instance).  Shape assertions
enforce the paper's qualitative claim: quantum ≈ classical Hermitian.
"""

import numpy as np
import pytest

from repro import QSCConfig, QuantumSpectralClustering, adjusted_rand_index, mixed_sbm
from repro.experiments import table1_msbm
from repro.graphs import ensure_connected
from repro.spectral import ClassicalSpectralClustering


@pytest.mark.benchmark(group="T1")
def test_bench_quantum_pipeline_single_instance(benchmark):
    graph, truth = mixed_sbm(64, 2, p_intra=0.4, p_inter=0.05, seed=0)
    ensure_connected(graph, seed=0)
    config = QSCConfig(precision_bits=7, shots=512, seed=0)

    result = benchmark(lambda: QuantumSpectralClustering(2, config).fit(graph))
    assert adjusted_rand_index(truth, result.labels) > 0.9


@pytest.mark.benchmark(group="T1")
def test_bench_classical_pipeline_single_instance(benchmark):
    graph, truth = mixed_sbm(64, 2, p_intra=0.4, p_inter=0.05, seed=0)
    ensure_connected(graph, seed=0)

    result = benchmark(lambda: ClassicalSpectralClustering(2, seed=0).fit(graph))
    assert adjusted_rand_index(truth, result.labels) > 0.9


@pytest.mark.benchmark(group="T1")
def test_bench_table1_rows(benchmark, quick_trials):
    records = benchmark.pedantic(
        lambda: table1_msbm.run(sizes=(32,), cluster_counts=(2,), trials=quick_trials),
        rounds=1,
        iterations=1,
    )
    rows = table1_msbm.table(records)
    assert "quantum" in rows and "classical" in rows
    quantum = [r for r in records if r.method == "quantum"]
    classical = [r for r in records if r.method == "classical"]
    q_mean = np.mean([r.ari for r in quantum])
    c_mean = np.mean([r.ari for r in classical])
    # paper shape: quantum within a small gap of exact classical Hermitian
    assert q_mean > c_mean - 0.1
