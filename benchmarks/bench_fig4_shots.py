"""Benchmark F4 — accuracy and embedding error versus tomography shots."""

import numpy as np
import pytest

from repro.experiments import fig4_shots_sweep


@pytest.mark.benchmark(group="F4")
def test_bench_shots_sweep(benchmark, quick_trials):
    records = benchmark.pedantic(
        lambda: fig4_shots_sweep.run(
            shot_budgets=(32, 2048), num_nodes=40, trials=quick_trials
        ),
        rounds=1,
        iterations=1,
    )

    def rows(shots):
        return [r for r in records if r.parameters["shots"] == shots]

    low_error = np.mean([r.extra["embedding_error"] for r in rows(2048)])
    high_error = np.mean([r.extra["embedding_error"] for r in rows(32)])
    # paper shape: tomography error decreases with shots (≈ 1/sqrt law)
    assert low_error < high_error
    assert np.mean([r.ari for r in rows(2048)]) >= np.mean(
        [r.ari for r in rows(32)]
    ) - 0.05
