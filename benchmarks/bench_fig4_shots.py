"""Benchmark F4 — the shot-budget sweep through the unified sweep engine.

Each F4 trial fits the pipeline twice on the same graph (noiseless
reference, then finite shots), so even a cold run exercises the spectral
cache: the second fit's eigendecomposition and QPE kernel are hits.  The
benchmark asserts that accounting alongside the paper shape (tomography
error falls with shots).
"""

import numpy as np
import pytest

from repro.core.qpe_engine import clear_spectral_cache
from repro.experiments import fig4_shots_sweep
from repro.experiments.runner import SweepRunner


@pytest.mark.benchmark(group="F4")
def test_bench_shots_sweep(benchmark, quick_trials):
    spec = fig4_shots_sweep.spec(
        shot_budgets=(32, 2048), num_nodes=40, trials=quick_trials
    )
    runner = SweepRunner(spec)
    num_tasks = len(spec.tasks())

    clear_spectral_cache()
    result = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    records = result.records

    # accounting: per trial the noiseless fit misses its decomposition and
    # kernel; the finite-shot fit resumes from the readout stage against
    # the reference fit's in-memory state, so it constructs no backend at
    # all — the upstream skip shows up in the per-stage telemetry instead
    # of as cache hits.
    benchmark.extra_info["cache"] = result.cache
    benchmark.extra_info["profile"] = result.profile
    assert result.cache["misses"] == 2 * num_tasks
    assert result.cache["hits"] == 0
    assert result.profile["laplacian"]["computed"] == num_tasks
    assert result.profile["laplacian"]["loaded"] == num_tasks
    assert result.profile["threshold"]["loaded"] == num_tasks
    assert result.profile["readout"]["computed"] == 2 * num_tasks
    assert result.profile["readout"]["loaded"] == 0

    def rows(shots):
        return [r for r in records if r.parameters["shots"] == shots]

    low_error = np.mean([r.extra["embedding_error"] for r in rows(2048)])
    high_error = np.mean([r.extra["embedding_error"] for r in rows(32)])
    # paper shape: tomography error decreases with shots (≈ 1/sqrt law)
    assert low_error < high_error
    assert np.mean([r.ari for r in rows(2048)]) >= np.mean(
        [r.ari for r in rows(32)]
    ) - 0.05
