"""Lint the public API surface: versioned routes + non-drifting docs.

Two checks, both cheap enough for every push:

1. **Generated reference** — the block between ``<!-- generated:begin -->``
   and ``<!-- generated:end -->`` in ``docs/api.md`` must be byte-identical
   to :func:`repro.service.routes.render_api_reference`.  The route table,
   op list and error-code table documented to users are rendered from the
   same constants the server dispatches on, so the docs cannot drift.

2. **No unversioned routes** — README, ``docs/*.md`` and ``tests/**/*.py``
   may not reference the legacy unversioned HTTP paths (``/jobs…``): every
   route mention must carry the ``/v1`` prefix.  A line that *deliberately*
   exercises the legacy 301 redirect marks itself with ``v1-lint: allow``;
   a run of such lines sits between ``v1-lint: allow-begin`` and
   ``v1-lint: allow-end``.

Run from the repository root::

    PYTHONPATH=src python tools/lint_api_surface.py
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

GENERATED_BEGIN = "<!-- generated:begin -->"
GENERATED_END = "<!-- generated:end -->"
ALLOW_MARKER = "v1-lint: allow"


def check_generated_block() -> list[str]:
    from repro.service.routes import render_api_reference

    path = ROOT / "docs" / "api.md"
    if not path.exists():
        return [f"{path}: missing (the v1 reference page must exist)"]
    text = path.read_text(encoding="utf-8")
    if GENERATED_BEGIN not in text or GENERATED_END not in text:
        return [f"{path}: generated-block markers are missing"]
    begin = text.index(GENERATED_BEGIN) + len(GENERATED_BEGIN)
    block = text[begin : text.index(GENERATED_END)].strip("\n")
    expected = render_api_reference().strip("\n")
    if block != expected:
        return [
            f"{path}: generated block is stale — paste the current "
            "render_api_reference() output between the markers"
        ]
    return []


def _lint_targets() -> list[pathlib.Path]:
    targets = [ROOT / "README.md"]
    targets += sorted((ROOT / "docs").glob("*.md"))
    targets += sorted((ROOT / "tests").rglob("*.py"))
    return [path for path in targets if path.exists()]


def check_versioned_routes() -> list[str]:
    problems = []
    for path in _lint_targets():
        allowing = False
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if ALLOW_MARKER + "-begin" in line:
                allowing = True
                continue
            if ALLOW_MARKER + "-end" in line:
                allowing = False
                continue
            if allowing or ALLOW_MARKER in line:
                continue
            # Remove the versioned mentions; whatever `/jobs` remains is
            # a legacy unversioned route reference.
            stripped = line.replace("/v1/jobs", "").replace("/v1/stats", "")
            if "/jobs" in stripped or "/stats" in stripped:
                problems.append(
                    f"{path.relative_to(ROOT)}:{number}: unversioned route "
                    f"reference ({line.strip()[:80]!r}) — use /v1/…, or "
                    f"mark an intentional legacy test with {ALLOW_MARKER!r}"
                )
    return problems


def main() -> int:
    problems = check_generated_block() + check_versioned_routes()
    for problem in problems:
        print(problem)
    if problems:
        print(f"api-surface lint: {len(problems)} problem(s)")
        return 1
    print("api-surface lint OK: docs in sync, all route references are /v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
