"""CI service smoke: boot a real ``repro serve`` subprocess, prove identity.

The in-process tests (``tests/service/``) exercise the full wire path but
share the interpreter with the server.  This script is the cold-boot
check CI runs on every push:

1. launch ``python -m repro serve --port 0 --store-dir <tmp>`` as a real
   subprocess and parse the ephemeral port from its readiness line;
2. submit a one-trial fig1 job over the JSON-line protocol, stream its
   full event transcript, and fetch the finished artifact;
3. run the same sweep through ``python -m repro experiments`` and assert
   the served records are identical to the CLI artifact's;
4. write the streamed transcript to ``service-transcript.jsonl`` (CI
   uploads it as a build artifact) and shut the server down cleanly.

Run from the repository root::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from repro.experiments.runner import validate_artifact, validate_artifact_file
from repro.service.client import ServiceClient

READY_PREFIX = "repro serve: listening on "
BOOT_TIMEOUT = 60.0

SMOKE_JOB = {"experiment": "fig1", "trials": 1}


def boot_server(store_dir: str) -> tuple[subprocess.Popen, str, int]:
    """Start the serve subprocess; return (process, host, port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--store-dir",
            store_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit(
                f"server exited during boot (code {process.returncode})"
            )
        if line.startswith(READY_PREFIX):
            host, _, port = line[len(READY_PREFIX) :].strip().rpartition(":")
            return process, host, int(port)
    process.kill()
    raise SystemExit(f"server not ready within {BOOT_TIMEOUT:g}s")


def main() -> int:
    transcript_path = pathlib.Path("service-transcript.jsonl")
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        process, host, port = boot_server(f"{tmp}/store")
        try:
            client = ServiceClient(host, port, timeout=600.0)
            assert client.ping(), "server did not answer ping"
            submitted = client.submit(SMOKE_JOB)
            print(f"submitted {submitted['job']} ({submitted['fingerprint']})")

            transcript = client.events(submitted["job"])
            transcript_path.write_text(
                "".join(json.dumps(event) + "\n" for event in transcript),
                encoding="utf-8",
            )
            kinds = [event["event"] for event in transcript]
            print(f"transcript ({len(transcript)} events): {' '.join(kinds)}")
            assert kinds[-1] == "completed", f"job ended {kinds[-1]!r}"
            assert "stage" in kinds, "no stage telemetry was streamed"

            served = client.artifact(submitted["job"])
            validate_artifact(served)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(30)
            except subprocess.TimeoutExpired:
                process.kill()

        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "experiments",
                "--only",
                "fig1",
                "--trials",
                "1",
                "--jobs",
                "1",
                "--out",
                f"{tmp}/artifacts",
            ],
            check=True,
        )
        direct = validate_artifact_file(f"{tmp}/artifacts/fig1.json")

    assert served["records"] == direct["records"], (
        "served fig1 records differ from the direct CLI sweep"
    )
    print(
        f"service smoke OK: {len(served['records'])} records, "
        f"bit-identical to the direct run; transcript at {transcript_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
