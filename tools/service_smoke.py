"""CI service smoke: boot a real ``repro serve`` subprocess, prove identity.

The in-process tests (``tests/service/``) exercise the full wire path but
share the interpreter with the server.  This script is the cold-boot
check CI runs on every push:

1. launch ``python -m repro serve --port 0 --store-dir <tmp>`` as a real
   subprocess and parse the ephemeral port from its readiness line;
2. submit a one-trial fig1 job over the JSON-line protocol, stream its
   full event transcript, and fetch the finished artifact;
3. run the same sweep through ``python -m repro experiments`` and assert
   the served records are identical to the CLI artifact's;
4. write the streamed transcript to ``service-transcript.jsonl`` (CI
   uploads it as a build artifact) and shut the server down cleanly;
5. run the **restart drill**: a second server (``--max-queued 1``) gets
   a sharded job plus a queued one, sheds a third submission with the
   retryable 429 (``Retry-After`` intact), is SIGKILLed the moment the
   first readout shard checkpoint lands, and is rebooted on the same
   store — it must report ``recovered 2 job(s)``, finish both from
   checkpoints, and serve records identical to a direct in-process
   :class:`~repro.experiments.runner.SweepRunner` run.

Run from the repository root::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from repro.experiments.runner import (
    SweepRunner,
    spec_from_job,
    validate_artifact,
    validate_artifact_file,
)
from repro.service.client import ServiceClient
from repro.service.errors import RejectedError

READY_PREFIX = "repro serve: listening on "
RECOVERED_PREFIX = "repro serve: recovered "
BOOT_TIMEOUT = 60.0

SMOKE_JOB = {"experiment": "fig1", "trials": 1}

#: The restart drill's in-flight job: sharded readout, sized so the
#: SIGKILL (triggered by the first shard checkpoint) lands mid-stage.
DRILL_JOB = {
    "experiment": "fig1",
    "trials": 1,
    "overrides": {
        "strengths": [0.9],
        "num_nodes": 24,
        "num_clusters": 2,
        "shots": 256,
        "precision_bits": 6,
        "readout_shards": 6,
    },
}

#: The restart drill's queued job: tiny, waits behind the drill job.
QUEUED_JOB = {
    "experiment": "fig1",
    "trials": 1,
    "overrides": {
        "strengths": [0.9],
        "num_nodes": 18,
        "num_clusters": 2,
        "shots": 64,
        "precision_bits": 5,
    },
}


def boot_server(
    store_dir: str, *extra_flags: str
) -> tuple[subprocess.Popen, str, int, int]:
    """Start the serve subprocess; return (process, host, port, recovered)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--store-dir",
            store_dir,
            *extra_flags,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    recovered = 0
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit(
                f"server exited during boot (code {process.returncode})"
            )
        if line.startswith(RECOVERED_PREFIX):
            recovered = int(line[len(RECOVERED_PREFIX) :].split()[0])
        if line.startswith(READY_PREFIX):
            host, _, port = line[len(READY_PREFIX) :].strip().rpartition(":")
            return process, host, int(port), recovered
    process.kill()
    raise SystemExit(f"server not ready within {BOOT_TIMEOUT:g}s")


def wait_for(predicate, timeout: float, what: str):
    """Poll until ``predicate()`` is truthy; SystemExit on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise SystemExit(f"timed out after {timeout:g}s waiting for {what}")


def restart_drill(tmp: str) -> None:
    """kill -9 mid-readout, reboot, finish record-identically."""
    store = pathlib.Path(tmp) / "drill-store"
    shard_dir = store / "shard"
    process, host, port, recovered = boot_server(
        str(store), "--workers", "1", "--max-queued", "1"
    )
    try:
        assert recovered == 0, f"fresh store recovered {recovered} jobs"
        client = ServiceClient(host, port, timeout=600.0)
        big = client.submit(DRILL_JOB)["job"]
        wait_for(
            lambda: client.status(big)["state"] == "running",
            30.0,
            "the drill job to start",
        )
        queued = client.submit(QUEUED_JOB)["job"]

        # Backpressure: the queue is at --max-queued, so a third
        # submission sheds with the retryable 429 — and the two
        # accepted jobs must still finish (proven after the restart).
        try:
            client.submit(QUEUED_JOB)
        except RejectedError as error:
            assert error.retryable and error.retry_after == 5, vars(error)
            print(f"backpressure OK: shed with retry_after={error.retry_after}")
        else:
            raise SystemExit("over-quota submission was not shed with 429")

        wait_for(
            lambda: shard_dir.is_dir() and any(shard_dir.rglob("*.cas")),
            120.0,
            "the first shard checkpoint",
        )
    finally:
        process.kill()  # SIGKILL: no goodbye, no flush, no cleanup
        process.wait(30)
    print("killed the server mid-readout (first shard checkpoint on disk)")

    process, host, port, recovered = boot_server(str(store), "--workers", "1")
    try:
        assert recovered == 2, f"expected 2 recovered jobs, got {recovered}"
        client = ServiceClient(host, port, timeout=600.0)
        for job_id in (big, queued):
            wait_for(
                lambda job_id=job_id: client.status(job_id)["state"]
                == "completed",
                300.0,
                f"recovered job {job_id} to complete",
            )
        kinds = [event["event"] for event in client.events(big)]
        assert "recovered" in kinds, f"no recovered event: {kinds}"
        served = client.artifact(big)
        validate_artifact(served)
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(30)
        except subprocess.TimeoutExpired:
            process.kill()

    direct = SweepRunner(spec_from_job(DRILL_JOB), jobs=1).run()
    assert served["records"] == direct.to_artifact()["records"], (
        "records of the killed-and-recovered job differ from a direct run"
    )
    print(
        f"restart drill OK: recovered 2 jobs, {len(served['records'])} "
        "records bit-identical to the direct run"
    )


def main() -> int:
    transcript_path = pathlib.Path("service-transcript.jsonl")
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        process, host, port, _ = boot_server(f"{tmp}/store")
        try:
            client = ServiceClient(host, port, timeout=600.0)
            assert client.ping(), "server did not answer ping"
            submitted = client.submit(SMOKE_JOB)
            print(f"submitted {submitted['job']} ({submitted['fingerprint']})")

            transcript = client.events(submitted["job"])
            transcript_path.write_text(
                "".join(json.dumps(event) + "\n" for event in transcript),
                encoding="utf-8",
            )
            kinds = [event["event"] for event in transcript]
            print(f"transcript ({len(transcript)} events): {' '.join(kinds)}")
            assert kinds[-1] == "completed", f"job ended {kinds[-1]!r}"
            assert "stage" in kinds, "no stage telemetry was streamed"

            served = client.artifact(submitted["job"])
            validate_artifact(served)
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(30)
            except subprocess.TimeoutExpired:
                process.kill()

        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "experiments",
                "--only",
                "fig1",
                "--trials",
                "1",
                "--jobs",
                "1",
                "--out",
                f"{tmp}/artifacts",
            ],
            check=True,
        )
        direct = validate_artifact_file(f"{tmp}/artifacts/fig1.json")

    assert served["records"] == direct["records"], (
        "served fig1 records differ from the direct CLI sweep"
    )
    print(
        f"service smoke OK: {len(served['records'])} records, "
        f"bit-identical to the direct run; transcript at {transcript_path}"
    )

    with tempfile.TemporaryDirectory(prefix="repro-service-drill-") as tmp:
        restart_drill(tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
