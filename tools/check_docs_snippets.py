"""Execute every fenced Python snippet in README.md and docs/*.md.

Documentation code rots silently: an API rename passes the test suite but
leaves the README quickstart broken.  This checker extracts every
```python fenced block from the top-level README and the docs/ tree and
executes it — blocks within one file share a namespace, so multi-block
tutorials can build on earlier snippets.  Non-Python fences (bash, plain
diagrams) are ignored.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs_snippets.py
"""

from __future__ import annotations

import pathlib
import re
import sys

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_snippets(markdown: str) -> list[str]:
    """All ```python fenced block bodies, in document order."""
    return [match.group(1) for match in FENCE.finditer(markdown)]


def run_file(path: pathlib.Path) -> int:
    """Execute every snippet of one markdown file; return the count."""
    snippets = python_snippets(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docs_snippet:{path.name}"}
    for index, snippet in enumerate(snippets, start=1):
        try:
            exec(compile(snippet, f"{path}:snippet{index}", "exec"), namespace)
        except Exception:
            print(f"FAILED: {path} snippet #{index}:\n{snippet}")
            raise
        print(f"ok: {path} snippet #{index}")
    return len(snippets)


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    documents = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    missing = [str(path) for path in documents[:1] if not path.exists()]
    if missing:
        print(f"missing documentation files: {missing}")
        return 1
    total = 0
    for path in documents:
        if path.exists():
            total += run_file(path)
    if total == 0:
        print("no Python snippets found — checker is miswired")
        return 1
    print(f"{total} documentation snippet(s) executed successfully")
    return 0


if __name__ == "__main__":
    sys.exit(main())
