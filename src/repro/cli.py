"""Command-line interface.

::

    python -m repro cluster  --input graph.mixed --clusters 3 [--backend ...]
    python -m repro generate --kind flow --nodes 60 --clusters 3 --output g.mixed
    python -m repro bench    --name c17 --clusters 2
    python -m repro spectrum --input graph.mixed --top 8
    python -m repro experiments --only fig2 --jobs 4 --out artifacts/
    python -m repro serve    --port 8831 --store-dir cas-store --workers 2

Graphs travel in the edge-list format of ``repro.graphs.io``.  Every
subcommand prints plain text to stdout and exits non-zero on error, so the
tool scripts cleanly.

``--backend {auto,dense,sparse,array}`` selects the linear-algebra
representation (see ``repro.linalg``): ``auto`` keeps small graphs on the
exact dense path, routes the midrange through sparse CSR + LOBPCG with a
Jacobi preconditioner, and switches large ones to sparse CSR + Lanczos,
which is what lets ``cluster --method classical`` handle 10k-node graphs.
``array`` holds matrices as array-API device arrays (CuPy/torch when
importable, numpy fallback) and routes the dense QPE/tomography hot paths
through the device.  The QPE statistics engine is chosen separately via
``--qpe-backend {analytic,circuit}``.

``experiments`` drives the unified sweep engine
(:mod:`repro.experiments.runner`): it reproduces the paper's figure/table
sweeps, optionally across a process pool (``--jobs``), and writes one
validated JSON artifact per sweep plus the rendered markdown.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import QSCConfig, QuantumSpectralClustering
from repro.core.config import SHARD_FAILURE_MODES
from repro.exceptions import ReproError
from repro.graphs import (
    cyclic_flow_sbm,
    ensure_connected,
    hermitian_laplacian,
    io as graph_io,
    load_c17,
    load_s27,
    mixed_sbm,
    random_mixed_graph,
    sparse_mixed_sbm,
)
from repro.graphs.generators import GENERATOR_VERSIONS
from repro.linalg import BACKEND_NAMES
from repro.metrics import partition_summary
from repro.pipeline import QSCPipeline, STAGE_NAMES
from repro.spectral import ClassicalSpectralClustering, lowest_eigenpairs

BENCHES = {"c17": load_c17, "s27": load_s27}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum spectral clustering of mixed graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def cluster_count(value: str):
        return "auto" if value == "auto" else int(value)

    cluster = sub.add_parser("cluster", help="cluster an edge-list graph")
    cluster.add_argument("--input", required=True, help="edge-list file")
    cluster.add_argument(
        "--clusters",
        type=cluster_count,
        required=True,
        help="cluster count, or 'auto' for quantum eigengap selection",
    )
    cluster.add_argument(
        "--method",
        choices=("quantum", "classical"),
        default="quantum",
    )
    cluster.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help=(
            "linear-algebra backend: auto (size-based), dense, sparse, "
            "or array (array-API device arrays)"
        ),
    )
    cluster.add_argument(
        "--qpe-backend",
        choices=("analytic", "circuit"),
        default="analytic",
        help="QPE statistics engine for --method quantum",
    )
    cluster.add_argument("--precision-bits", type=int, default=7)
    cluster.add_argument("--shots", type=int, default=1024)
    cluster.add_argument(
        "--readout-chunk-size",
        type=int,
        default=None,
        metavar="ROWS",
        help=(
            "rows per batched-readout block (bounds memory on large "
            "graphs; default: all rows in one block)"
        ),
    )
    cluster.add_argument(
        "--readout-shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "split the readout stage into N supervised row shards run in "
            "worker processes (results are bit-identical at any count; "
            "with --save-stages each shard checkpoints separately, so a "
            "crashed run resumes recomputing only the missing shards; "
            "default: unsharded)"
        ),
    )
    cluster.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-attempt deadline for one readout shard; a worker past it "
            "is killed and the shard retried (default: no deadline)"
        ),
    )
    cluster.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "extra attempts a failed or hung readout shard gets before "
            "the run aborts (default: 2)"
        ),
    )
    cluster.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "concurrent worker processes for sharded readout; results are "
            "identical at any value (default: one per CPU core)"
        ),
    )
    cluster.add_argument(
        "--shard-failure-mode",
        choices=SHARD_FAILURE_MODES,
        default="raise",
        help=(
            "what to do when a readout shard exhausts its retries: "
            "'raise' aborts the run (default); 'degrade' zeroes the "
            "failed shard's rows and keeps going — degraded stages are "
            "not checkpointed, so a later --resume-from readout run "
            "recomputes them completely"
        ),
    )
    cluster.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help=(
            "attach the shared content-addressed compute store rooted at "
            "DIR: spectral decompositions and stage/shard checkpoints are "
            "served from and published to it, so repeat runs (from any "
            "process) become disk hits; results are bit-identical either "
            "way (default: no shared store)"
        ),
    )
    cluster.add_argument(
        "--draw-threads",
        type=int,
        default=None,
        metavar="N",
        help=(
            "threads for the per-row readout RNG draw stages (results are "
            "bit-identical at any value; default: serial)"
        ),
    )
    cluster.add_argument("--theta", type=float, default=float(np.pi / 2))
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print per-stage wall time, data source and spectral-cache "
            "counters of the staged pipeline (quantum method only)"
        ),
    )
    cluster.add_argument(
        "--save-stages",
        metavar="DIR",
        default=None,
        help=(
            "checkpoint every pipeline stage into DIR (one <stage>.npz "
            "per stage); also the directory --resume-from loads from"
        ),
    )
    cluster.add_argument(
        "--resume-from",
        choices=STAGE_NAMES,
        default=None,
        metavar="STAGE",
        help=(
            "resume at STAGE: load every upstream stage from the "
            "--save-stages directory instead of recomputing it, and "
            f"re-run STAGE onward (stages: {', '.join(STAGE_NAMES)})"
        ),
    )

    generate = sub.add_parser("generate", help="generate a synthetic graph")
    generate.add_argument(
        "--kind", choices=("mixed", "flow", "random", "sparse"), default="mixed"
    )
    generate.add_argument("--nodes", type=int, default=60)
    generate.add_argument("--clusters", type=int, default=2)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--generator-version",
        choices=GENERATOR_VERSIONS,
        default="v1",
        help=(
            "seed contract of the SBM generators (--kind mixed/flow/"
            "sparse): v1 is the byte-stable legacy sampler; for mixed/"
            "flow v2 is the vectorized block sampler (same distribution, "
            "much faster at 1k+ nodes), for sparse v2 is the draw-exact "
            "block sampler (no duplicate-removal shortfall)"
        ),
    )
    generate.add_argument("--output", required=True)
    generate.add_argument(
        "--labels-output", help="optional file for ground-truth labels"
    )

    bench = sub.add_parser("bench", help="cluster an embedded ISCAS circuit")
    bench.add_argument("--name", choices=sorted(BENCHES), required=True)
    bench.add_argument("--clusters", type=int, default=2)
    bench.add_argument("--seed", type=int, default=0)

    spectrum = sub.add_parser(
        "spectrum", help="print the low Hermitian-Laplacian spectrum"
    )
    spectrum.add_argument("--input", required=True)
    spectrum.add_argument("--top", type=int, default=8)
    spectrum.add_argument("--theta", type=float, default=float(np.pi / 2))
    spectrum.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="linear-algebra backend for the eigensolve",
    )

    experiments = sub.add_parser(
        "experiments",
        help="run the paper's figure/table sweeps via the sweep engine",
    )
    experiments.add_argument(
        "--list",
        action="store_true",
        dest="list_specs",
        help="list the available sweeps and exit",
    )
    experiments.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help=(
            "run only the named sweep (repeatable, e.g. --only fig2 "
            "--only table1); default: all six"
        ),
    )
    experiments.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="override the per-point trial count of every selected sweep",
    )
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for trial execution (default 1 = serial; "
            "parallel output is bit-identical to serial)"
        ),
    )
    experiments.add_argument(
        "--generator-version",
        choices=GENERATOR_VERSIONS,
        default=None,
        help=(
            "graph-generator seed contract for every selected sweep "
            "(recorded in the artifacts; default: each spec's default, v1)"
        ),
    )
    experiments.add_argument(
        "--readout-shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run every quantum fit's readout stage as N supervised row "
            "shards (recorded in the artifacts; results are bit-identical "
            "to unsharded; default: unsharded)"
        ),
    )
    experiments.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "linalg backend for every selected sweep's quantum fits "
            "(recorded in the artifacts' profile; default: each spec's "
            "default, auto)"
        ),
    )
    experiments.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help=(
            "shared content-addressed store for every selected sweep: "
            "worker processes publish spectral entries to DIR and a warm "
            "re-run serves them as cross-process disk hits (recorded in "
            "the artifacts' store counters; records are bit-identical "
            "either way; default: no shared store)"
        ),
    )
    experiments.add_argument(
        "--out",
        default="artifacts",
        metavar="DIR",
        help="directory for the JSON artifacts (default: ./artifacts)",
    )

    store = sub.add_parser(
        "store",
        help="inspect the shared content-addressed compute store",
    )
    store.add_argument(
        "action",
        choices=("stats", "verify", "gc"),
        help=(
            "stats: tier occupancy per namespace; verify: integrity-check "
            "every entry (exit 1 if any is corrupt); gc: remove corrupt "
            "entries and stale temp files, then enforce the byte budget"
        ),
    )
    store.add_argument(
        "--dir", required=True, metavar="DIR", help="store root directory"
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget for gc (default: the store's configured budget)",
    )
    store.add_argument(
        "--grace-seconds",
        type=float,
        default=60.0,
        metavar="S",
        help=(
            "gc only: reap in-flight .tmp-* files older than S seconds; "
            "younger ones are presumed live writers and survive "
            "(default: 60)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the async clustering-as-a-service job server",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8831,
        help=(
            "bind port; 0 picks an ephemeral one, announced on the "
            "readiness line (default: 8831)"
        ),
    )
    serve.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help=(
            "shared content-addressed store for every served job: shard/"
            "stage checkpoints land there as they complete (crash-resume) "
            "and finished artifacts are published under the job's content "
            "fingerprint, so identical resubmissions are served without "
            "recomputing (default: no store — jobs always compute)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrently running jobs (default: 2)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-attempt deadline for one job's worker process; a worker "
            "past it is killed and the job retried (default: no deadline)"
        ),
    )
    serve.add_argument(
        "--job-retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "extra attempts a crashed or expired job worker gets before "
            "the job fails (default: 1)"
        ),
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission control: reject new submissions with 429 + "
            "Retry-After while N jobs are already queued "
            "(default: unbounded)"
        ),
    )
    serve.add_argument(
        "--max-jobs-per-tenant",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission control: one tenant may have at most N jobs "
            "queued or running; excess submissions get 429 + Retry-After "
            "(default: unbounded)"
        ),
    )
    serve.add_argument(
        "--auth-token-file",
        metavar="FILE",
        default=None,
        help=(
            "require bearer-token authentication: FILE holds one "
            "'tenant:token' pair per line ('#' comments allowed); the "
            "tenant id is derived from the presented token and scopes "
            "job listing, status, cancel and events "
            "(default: open server, single 'public' tenant)"
        ),
    )
    return parser


def _cmd_cluster(args) -> int:
    graph = graph_io.load(args.input)
    if args.method == "quantum":
        if args.resume_from is not None and args.save_stages is None:
            raise ReproError(
                "--resume-from needs --save-stages DIR (the checkpoint "
                "directory a previous run wrote)"
            )
        config = QSCConfig(
            backend=args.qpe_backend,
            linalg_backend=args.backend,
            precision_bits=args.precision_bits,
            shots=args.shots,
            readout_chunk_size=args.readout_chunk_size,
            readout_shards=args.readout_shards,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries,
            shard_workers=args.shard_workers,
            shard_failure_mode=args.shard_failure_mode,
            store_dir=args.store_dir,
            draw_threads=args.draw_threads,
            theta=args.theta,
            seed=args.seed,
        )
        pipeline = QSCPipeline(args.clusters, config)
        result = pipeline.run(
            graph,
            save_stages=args.save_stages,
            resume_from=args.resume_from,
        )
    else:
        if args.clusters == "auto":
            raise ReproError(
                "--clusters auto requires --method quantum (histogram-"
                "native selection)"
            )
        for flag, name in (
            (args.profile, "--profile"),
            (args.save_stages, "--save-stages"),
            (args.resume_from, "--resume-from"),
        ):
            if flag:
                raise ReproError(
                    f"{name} applies to the staged quantum pipeline "
                    "(--method quantum)"
                )
        result = ClassicalSpectralClustering(
            args.clusters, theta=args.theta, backend=args.backend, seed=args.seed
        ).fit(graph)
    print("labels:", " ".join(str(int(label)) for label in result.labels))
    summary = partition_summary(graph, result.labels)
    for key, value in summary.items():
        print(f"{key}: {value:.4f}")
    if args.method == "quantum" and args.profile:
        print("stage profile:")
        for row in result.profile:
            backend = (
                f"  [{row['linalg_backend']}/{row['eigensolver']}]"
                if "linalg_backend" in row
                else ""
            )
            print(
                f"  {row['stage']:9s} {row['seconds']*1e3:9.2f} ms  "
                f"{row['source']:10s} cache {row['cache_hits']}h/"
                f"{row['cache_misses']}m{backend}"
            )
            for shard in row.get("shards", ()):
                print(
                    f"    shard {shard['shard']} rows "
                    f"{shard['start']}:{shard['stop']} "
                    f"{shard['seconds']*1e3:9.2f} ms  {shard['source']:10s} "
                    f"attempts {shard['attempts']}"
                )
            if row.get("incomplete_shards"):
                print(
                    "    incomplete shards: "
                    + ", ".join(str(i) for i in row["incomplete_shards"])
                )
    return 0


def _cmd_generate(args) -> int:
    if args.kind == "random" and args.generator_version != "v1":
        # random has no versioned contract — refuse rather than silently
        # mislabel the provenance.
        raise ReproError(
            f"--generator-version applies to --kind mixed/flow/sparse only "
            f"(got --kind {args.kind})"
        )
    if args.kind == "mixed":
        graph, labels = mixed_sbm(
            args.nodes,
            args.clusters,
            seed=args.seed,
            generator_version=args.generator_version,
        )
    elif args.kind == "flow":
        graph, labels = cyclic_flow_sbm(
            args.nodes,
            args.clusters,
            seed=args.seed,
            generator_version=args.generator_version,
        )
    elif args.kind == "sparse":
        graph, labels = sparse_mixed_sbm(
            args.nodes,
            args.clusters,
            seed=args.seed,
            generator_version=args.generator_version,
        )
    else:
        graph = random_mixed_graph(args.nodes, seed=args.seed)
        labels = None
    ensure_connected(graph, seed=args.seed)
    graph_io.save(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    if labels is not None and args.labels_output:
        with open(args.labels_output, "w", encoding="utf-8") as handle:
            handle.write(" ".join(str(int(label)) for label in labels) + "\n")
        print(f"wrote labels to {args.labels_output}")
    return 0


def _cmd_bench(args) -> int:
    netlist = BENCHES[args.name]()
    graph = netlist.to_mixed_graph(net_cliques=True)
    ensure_connected(graph, seed=args.seed)
    config = QSCConfig(
        backend="circuit",
        precision_bits=5,
        shots=4096,
        theta=float(np.pi / 4),
        seed=args.seed,
    )
    result = QuantumSpectralClustering(args.clusters, config).fit(graph)
    names = graph.node_labels or [str(i) for i in range(graph.num_nodes)]
    for cluster in range(args.clusters):
        members = [names[i] for i in np.flatnonzero(result.labels == cluster)]
        print(f"partition {cluster}: {', '.join(members)}")
    summary = partition_summary(graph, result.labels)
    for key, value in summary.items():
        print(f"{key}: {value:.4f}")
    return 0


def _cmd_spectrum(args) -> int:
    graph = graph_io.load(args.input)
    laplacian = hermitian_laplacian(graph, theta=args.theta, backend=args.backend)
    top = min(args.top, graph.num_nodes)
    values, _ = lowest_eigenpairs(laplacian, top)
    for index in range(top):
        print(f"lambda_{index + 1} = {values[index]:.6f}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import SweepRunner, registry, write_artifact

    specs = registry()
    if args.list_specs:
        for name, factory in specs.items():
            spec = factory()
            axes = ", ".join(f"{axis.name}={list(axis.values)}" for axis in spec.axes)
            print(f"{name:8s} {spec.artifact:9s} {spec.description}")
            print(f"{'':8s} axes: {axes}; trials: {spec.trials}")
        return 0
    selected = args.only or list(specs)
    unknown = [name for name in selected if name not in specs]
    if unknown:
        raise ReproError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(specs)}"
        )
    for name in selected:
        factory_kwargs = {}
        if args.generator_version is not None:
            factory_kwargs["generator_version"] = args.generator_version
        if args.readout_shards is not None:
            factory_kwargs["readout_shards"] = args.readout_shards
        if args.backend is not None:
            factory_kwargs["linalg_backend"] = args.backend
        if args.store_dir is not None:
            factory_kwargs["store_dir"] = args.store_dir
        spec = specs[name](**factory_kwargs)
        if args.trials is not None:
            spec = spec.with_updates(trials=args.trials)
        result = SweepRunner(spec, jobs=args.jobs).run()
        artifact = result.to_artifact()
        path = write_artifact(result, args.out, artifact=artifact)
        cache = result.cache
        print(
            f"{name}: {len(result.records)} records in "
            f"{result.elapsed_seconds:.2f}s (jobs={result.jobs}, "
            f"cache hits={cache['hits']} misses={cache['misses']}) -> {path}"
        )
        if args.store_dir is not None:
            store = result.store
            print(
                f"{'':{len(name)}s}  store disk_hits={store['disk_hits']} "
                f"memory_hits={store['memory_hits']} "
                f"misses={store['misses']}"
            )
        if artifact["table"]:
            print(artifact["table"])
    return 0


def _cmd_store(args) -> int:
    from repro.store import ContentStore

    store = ContentStore(root=args.dir)
    if args.action == "stats":
        report = store.disk_report()
        print(f"root: {store.root}")
        print(f"entries: {report['entries']}")
        print(f"bytes: {report['bytes']}")
        for namespace in sorted(report["namespaces"]):
            row = report["namespaces"][namespace]
            print(
                f"  {namespace:9s} {row['entries']:6d} entries  "
                f"{row['bytes']:12d} bytes"
            )
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"checked: {report['checked']}  ok: {report['ok']}")
        for path in report["corrupt"]:
            print(f"corrupt: {path}")
        return 1 if report["corrupt"] else 0
    report = store.gc(
        max_bytes=args.max_bytes, tmp_grace_seconds=args.grace_seconds
    )
    print(
        f"corrupt removed: {report['corrupt_removed']}  "
        f"temp files removed: {report['temp_removed']}  "
        f"evicted: {report['evicted']}"
    )
    print(f"entries: {report['entries']}  bytes: {report['bytes']}")
    return 0


def _cmd_serve(args) -> int:
    # Imported lazily: the service layer (asyncio server machinery) is
    # only paid for by the one subcommand that runs it.
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        store_dir=args.store_dir,
        workers=args.workers,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        max_queued=args.max_queued,
        max_jobs_per_tenant=args.max_jobs_per_tenant,
        auth_token_file=args.auth_token_file,
    )


_COMMANDS = {
    "cluster": _cmd_cluster,
    "generate": _cmd_generate,
    "bench": _cmd_bench,
    "spectrum": _cmd_spectrum,
    "experiments": _cmd_experiments,
    "store": _cmd_store,
    "serve": _cmd_serve,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
