"""Quantum spectral clustering of mixed graphs (DAC 2021 reproduction).

Public API
----------
``repro.api`` is the stable facade external code should target —
``cluster()``, ``run_experiment()`` and ``connect()`` cover the common
workflows and track the versioned service surface:

>>> from repro import api  # doctest: +SKIP
>>> result = api.cluster(graph, 3)  # doctest: +SKIP

The most common building blocks are also re-exported at package level
(deep imports below these are internal and may move between releases):

>>> from repro import MixedGraph, QuantumSpectralClustering, QSCConfig
>>> from repro import ClassicalSpectralClustering, mixed_sbm

Subpackages
-----------
``repro.api``         stable facade: cluster / run_experiment / connect
``repro.quantum``     from-scratch quantum simulator substrate
``repro.graphs``      mixed graphs, Hermitian Laplacians, generators, netlists
``repro.linalg``      pluggable dense/sparse linear-algebra backends
``repro.spectral``    classical eigensolvers, embeddings, k-means
``repro.core``        the quantum pipeline (QPE filtering + q-means)
``repro.pipeline``    staged pipeline core (checkpoints, resume, telemetry)
``repro.baselines``   symmetrized / random-walk / DiSim / naive baselines
``repro.metrics``     ARI, NMI, accuracy, cut imbalance, flow ratio
``repro.experiments`` one module per paper table/figure
``repro.store``       shared content-addressed compute store
``repro.service``     the versioned clustering-as-a-service job server
"""

from repro.core import (
    QSCConfig,
    QSCResult,
    QuantumSpectralClustering,
    quantum_spectral_clustering,
)
from repro.graphs import (
    MixedGraph,
    cyclic_flow_sbm,
    hermitian_adjacency,
    hermitian_laplacian,
    load_c17,
    mixed_sbm,
    parse_bench,
    random_mixed_graph,
    synthetic_netlist,
)
from repro.linalg import (
    DenseBackend,
    SparseBackend,
    as_backend_matrix,
    resolve_backend,
)
from repro.spectral import (
    ClassicalSpectralClustering,
    classical_spectral_clustering,
)
from repro.baselines import (
    AdjacencyKMeans,
    DiSimClustering,
    RandomWalkSpectralClustering,
    SymmetrizedSpectralClustering,
)
from repro.metrics import (
    adjusted_rand_index,
    clustering_report,
    cut_imbalance,
    flow_ratio,
    matched_accuracy,
    normalized_mutual_information,
)
from repro.pipeline import QSCPipeline

__version__ = "1.0.0"

__all__ = [
    "QSCConfig",
    "QSCPipeline",
    "QSCResult",
    "QuantumSpectralClustering",
    "quantum_spectral_clustering",
    "MixedGraph",
    "cyclic_flow_sbm",
    "hermitian_adjacency",
    "hermitian_laplacian",
    "load_c17",
    "mixed_sbm",
    "parse_bench",
    "random_mixed_graph",
    "synthetic_netlist",
    "DenseBackend",
    "SparseBackend",
    "as_backend_matrix",
    "resolve_backend",
    "ClassicalSpectralClustering",
    "classical_spectral_clustering",
    "AdjacencyKMeans",
    "DiSimClustering",
    "RandomWalkSpectralClustering",
    "SymmetrizedSpectralClustering",
    "adjusted_rand_index",
    "clustering_report",
    "cut_imbalance",
    "flow_ratio",
    "matched_accuracy",
    "normalized_mutual_information",
    "__version__",
]
