"""Amplitude amplification and amplitude estimation.

The projection step of the clustering pipeline post-selects on the "low
eigenvalue" flag; the paper's complexity analysis invokes amplitude
amplification (to boost the success probability quadratically faster than
repetition) and amplitude estimation (to recover row norms).  This module
implements both primitives at circuit level:

* :func:`grover_operator` — Q = A S₀ A† S_good for a state-preparation
  circuit A and a set of good basis states;
* :func:`amplitude_amplification` — optimal-iteration amplification, with
  the exact success-probability trajectory sin²((2t+1)φ);
* :func:`amplitude_estimation` — canonical QAE: phase estimation of Q,
  readout → ã = sin²(πy/2^p);
* :func:`mle_amplitude_estimation` — maximum-likelihood AE (Suzuki et al.)
  from Grover-power measurement records, the NISQ-friendly variant that
  needs no ancilla register.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.phase_estimation import qpe_outcome_distribution
from repro.utils.rng import ensure_rng


def _validate_state(state: np.ndarray) -> np.ndarray:
    state = np.asarray(state, dtype=complex).ravel()
    norm = np.linalg.norm(state)
    if norm < 1e-12:
        raise CircuitError("zero state")
    return state / norm


def good_state_projector(dim: int, good_states) -> np.ndarray:
    """Diagonal projector onto the listed basis indices."""
    good_states = list(good_states)
    if not good_states:
        raise CircuitError("need at least one good state")
    projector = np.zeros((dim, dim), dtype=complex)
    for index in good_states:
        if not 0 <= index < dim:
            raise CircuitError(f"good state {index} out of range for dim {dim}")
        projector[index, index] = 1.0
    return projector


def grover_operator(prepared_state: np.ndarray, good_states) -> np.ndarray:
    """The amplification operator Q = −S_ψ S_good as a dense matrix.

    S_good flips the phase of good basis states; S_ψ reflects about the
    prepared state |ψ> = A|0>.
    """
    psi = _validate_state(prepared_state)
    dim = psi.size
    projector = good_state_projector(dim, good_states)
    oracle = np.eye(dim) - 2.0 * projector
    reflect = 2.0 * np.outer(psi, psi.conj()) - np.eye(dim)
    return reflect @ oracle


def success_probability(prepared_state: np.ndarray, good_states) -> float:
    """a = ||Π_good |ψ>||², the quantity amplification boosts / AE estimates."""
    psi = _validate_state(prepared_state)
    projector = good_state_projector(psi.size, good_states)
    return float(np.real(psi.conj() @ projector @ psi))


def amplitude_amplification(
    prepared_state: np.ndarray,
    good_states,
    iterations: int | None = None,
) -> tuple[np.ndarray, float, int]:
    """Apply Q^t to |ψ> with the optimal (or given) iteration count.

    Returns
    -------
    (amplified_state, success_probability, iterations):
        With the optimal t = floor(π / (4φ)) where a = sin²(φ), the final
        success probability is sin²((2t+1)φ) ≈ 1.
    """
    psi = _validate_state(prepared_state)
    a = success_probability(psi, good_states)
    if a <= 0.0:
        raise CircuitError("prepared state has no good amplitude to amplify")
    if a >= 1.0 - 1e-12:
        return psi.copy(), 1.0, 0
    phi = np.arcsin(np.sqrt(a))
    if iterations is None:
        iterations = max(int(np.floor(np.pi / (4.0 * phi))), 0)
    if iterations < 0:
        raise CircuitError("iterations must be non-negative")
    operator = grover_operator(psi, good_states)
    amplified = np.linalg.matrix_power(operator, iterations) @ psi
    final = success_probability(amplified, good_states)
    return amplified, final, iterations


def amplification_schedule(initial_probability: float, max_t: int) -> np.ndarray:
    """The closed-form trajectory sin²((2t+1)φ) for t = 0..max_t."""
    if not 0.0 < initial_probability <= 1.0:
        raise CircuitError("initial probability must be in (0, 1]")
    phi = np.arcsin(np.sqrt(initial_probability))
    t = np.arange(max_t + 1)
    return np.sin((2 * t + 1) * phi) ** 2


def amplitude_estimation(
    prepared_state: np.ndarray,
    good_states,
    precision_bits: int,
    shots: int = 0,
    seed=None,
) -> float:
    """Canonical quantum amplitude estimation.

    The Grover operator's eigenphases are ±θ/π where a = sin²(θ); QPE with
    ``precision_bits`` ancillas reads y, and ã = sin²(π y / 2^p).  With
    ``shots = 0`` the modal outcome is returned (noiseless limit);
    otherwise the readout is sampled.

    Returns the estimate ã of the success probability a.
    """
    if precision_bits < 1:
        raise CircuitError("precision_bits must be >= 1")
    a = success_probability(prepared_state, good_states)
    theta = np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    phase = theta / np.pi  # eigenphase of Q
    distribution = qpe_outcome_distribution(phase, precision_bits)
    # Q also has the conjugate eigenphase −θ/π; both halves of the input
    # state excite it with weight 1/2, and both readouts map to the same
    # estimate through sin².
    mirrored = qpe_outcome_distribution(-phase % 1.0, precision_bits)
    distribution = 0.5 * distribution + 0.5 * mirrored
    if shots == 0:
        outcome = int(distribution.argmax())
    else:
        rng = ensure_rng(seed)
        counts = rng.multinomial(shots, distribution)
        outcome = int(counts.argmax())
    return float(np.sin(np.pi * outcome / 2**precision_bits) ** 2)


def mle_amplitude_estimation(
    prepared_state: np.ndarray,
    good_states,
    powers=(0, 1, 2, 4, 8),
    shots_per_power: int = 100,
    grid_size: int = 2000,
    seed=None,
) -> float:
    """Maximum-likelihood amplitude estimation (ancilla-free).

    For each Grover power t, measuring Q^t|ψ> succeeds with probability
    sin²((2t+1)φ); the likelihood over a φ grid is maximised jointly.
    Matches the Suzuki et al. (2020) scheme and achieves near-Heisenberg
    scaling with geometric power schedules.
    """
    if shots_per_power < 1:
        raise CircuitError("shots_per_power must be >= 1")
    a = success_probability(prepared_state, good_states)
    phi_true = np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    rng = ensure_rng(seed)
    hits = []
    for t in powers:
        p_success = np.sin((2 * t + 1) * phi_true) ** 2
        hits.append(int(rng.binomial(shots_per_power, p_success)))
    grid = np.linspace(1e-6, np.pi / 2 - 1e-6, grid_size)
    log_likelihood = np.zeros_like(grid)
    for t, h in zip(powers, hits):
        p = np.sin((2 * t + 1) * grid) ** 2
        p = np.clip(p, 1e-12, 1 - 1e-12)
        log_likelihood += h * np.log(p) + (shots_per_power - h) * np.log(1 - p)
    best = grid[int(log_likelihood.argmax())]
    return float(np.sin(best) ** 2)
