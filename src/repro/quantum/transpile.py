"""Transpilation: decomposing unitaries into a CNOT + single-qubit basis.

The statevector backend happily applies raw dense unitaries, but hardware
resource estimates need counts over an elementary gate set.  This module
provides the two classical workhorses:

* :func:`two_level_decompose` — factor any d × d unitary into a product of
  two-level (Givens) rotations, the textbook first stage of exact
  synthesis; and
* :func:`transpile_counts` — end-to-end count model mapping a circuit's
  operations to {CNOT, u3} totals, using known optimal constructions for
  the common cases (1- and 2-qubit unitaries, multi-controlled gates) and
  the generic O(4^m) bound otherwise.

The decomposition is validated by reconstruction in tests, and the counts
feed the F3 resource figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CircuitError
from repro.utils.linalg import is_unitary


@dataclass(frozen=True)
class TwoLevelRotation:
    """A Givens rotation acting on basis states (i, j).

    The embedded matrix is the identity except for the 2 × 2 block
    [[a, b], [c, d]] at rows/columns (i, j).
    """

    i: int
    j: int
    block: np.ndarray

    def embed(self, dim: int) -> np.ndarray:
        """The full d × d two-level matrix."""
        matrix = np.eye(dim, dtype=complex)
        matrix[self.i, self.i] = self.block[0, 0]
        matrix[self.i, self.j] = self.block[0, 1]
        matrix[self.j, self.i] = self.block[1, 0]
        matrix[self.j, self.j] = self.block[1, 1]
        return matrix


def two_level_decompose(unitary: np.ndarray, tol: float = 1e-12):
    """Factor ``unitary`` into two-level rotations plus a diagonal phase.

    Returns
    -------
    (rotations, phases):
        ``unitary = R_1 @ R_2 @ ... @ R_k @ diag(phases)`` where each R is
        a :class:`TwoLevelRotation` (validated by reconstruction in tests).

    Notes
    -----
    Standard column-reduction: for each column c, rotations acting on rows
    (c, r > c) zero the sub-diagonal entries.  At most d(d−1)/2 rotations.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if not is_unitary(unitary, atol=1e-8):
        raise CircuitError("two_level_decompose requires a unitary matrix")
    dim = unitary.shape[0]
    work = unitary.copy()
    rotations: list[TwoLevelRotation] = []
    for col in range(dim - 1):
        for row in range(dim - 1, col, -1):
            a = work[col, col]
            b = work[row, col]
            if abs(b) <= tol:
                continue
            norm = np.sqrt(abs(a) ** 2 + abs(b) ** 2)
            # Rotation G with G @ [a, b]^T = [norm, 0]^T
            block = np.array(
                [
                    [np.conj(a) / norm, np.conj(b) / norm],
                    [b / norm, -a / norm],
                ],
                dtype=complex,
            )
            rotation = TwoLevelRotation(col, row, block)
            work = rotation.embed(dim) @ work
            # store the inverse (the factor of U itself)
            rotations.append(TwoLevelRotation(col, row, block.conj().T))
    phases = np.diag(work).copy()
    if not np.allclose(np.abs(phases), 1.0, atol=1e-8):
        raise CircuitError("decomposition failed to reach a diagonal")
    return rotations, phases


def reconstruct(rotations, phases) -> np.ndarray:
    """Multiply a two-level decomposition back together (for validation)."""
    phases = np.asarray(phases, dtype=complex)
    dim = phases.size
    matrix = np.diag(phases)
    for rotation in reversed(rotations):
        matrix = rotation.embed(dim) @ matrix
    return matrix


@dataclass(frozen=True)
class TranspileCounts:
    """Elementary-gate totals of a transpiled circuit."""

    cnot: int
    single_qubit: int

    @property
    def total(self) -> int:
        """All elementary gates."""
        return self.cnot + self.single_qubit

    def __add__(self, other: "TranspileCounts") -> "TranspileCounts":
        return TranspileCounts(
            cnot=self.cnot + other.cnot,
            single_qubit=self.single_qubit + other.single_qubit,
        )


def unitary_counts(num_qubits: int) -> TranspileCounts:
    """Worst-case exact-synthesis counts for a generic m-qubit unitary.

    Uses the known constructions: 1 qubit → one u3; 2 qubits → 3 CNOTs +
    8 u3 (Vidal–Dawson); m ≥ 3 → the quantum Shannon decomposition bound
    of (3/4)·4^m − (3/2)·2^m CNOTs.
    """
    if num_qubits < 1:
        raise CircuitError("num_qubits must be >= 1")
    if num_qubits == 1:
        return TranspileCounts(cnot=0, single_qubit=1)
    if num_qubits == 2:
        return TranspileCounts(cnot=3, single_qubit=8)
    cnots = int((3 / 4) * 4**num_qubits - (3 / 2) * 2**num_qubits)
    return TranspileCounts(cnot=cnots, single_qubit=2 * cnots)


def multi_controlled_counts(num_controls: int) -> TranspileCounts:
    """Counts for an n-controlled single-qubit gate.

    1 control → 2 CNOTs + 3 u3 (standard CU); n ≥ 2 → the linear-ancilla-
    free construction with O(n²) CNOTs (Barenco et al. bound 8n² − 24n +
    16 is loose; we use the common 16n − 24 estimate for n ≥ 3 with one
    dirty ancilla, which matches modern syntheses).
    """
    if num_controls < 1:
        raise CircuitError("num_controls must be >= 1")
    if num_controls == 1:
        return TranspileCounts(cnot=2, single_qubit=3)
    if num_controls == 2:
        return TranspileCounts(cnot=6, single_qubit=9)  # Toffoli-class
    cnots = 16 * num_controls - 24
    return TranspileCounts(cnot=cnots, single_qubit=2 * cnots)


def transpile_counts(circuit) -> TranspileCounts:
    """Elementary CNOT + u3 totals for a ``QuantumCircuit``.

    Named single-qubit gates count as one u3; SWAP as 3 CNOTs; raw
    unitaries use :func:`unitary_counts` on their width; controlled-U
    labels (emitted by QPE builders) are priced as a controlled generic
    unitary: controls contribute :func:`multi_controlled_counts` and the
    target block :func:`unitary_counts`.
    """
    total = TranspileCounts(cnot=0, single_qubit=0)
    for op in circuit.operations:
        width = len(op.qubits)
        if op.name != "unitary":
            if op.name == "swap":
                total += TranspileCounts(cnot=3, single_qubit=0)
            elif width == 1:
                total += TranspileCounts(cnot=0, single_qubit=1)
            else:
                total += unitary_counts(width)
            continue
        label = op.label or ""
        if label.startswith("c-") and width >= 2:
            total += multi_controlled_counts(1)
            total += unitary_counts(width - 1)
        elif label.startswith(("cx", "cz", "cp")):
            total += TranspileCounts(cnot=2, single_qubit=3)
        elif label == "cswap":
            total += TranspileCounts(cnot=8, single_qubit=9)
        else:
            total += unitary_counts(width)
    return total
