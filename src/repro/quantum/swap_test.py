"""Swap-test circuits for overlap and Euclidean-distance estimation.

The swap test measures |<a|b>|²: with states |a>, |b> loaded into two equal
registers and one ancilla, the probability of reading the ancilla as 0 is
(1 + |<a|b>|²)/2.  Combined with the vectors' norms this yields the squared
Euclidean distance — the quantum primitive behind q-means distance
estimation.  The circuit path here is exercised by the examples and the A3
noise ablation; the q-means module itself uses the equivalent closed-form
noise model for scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError
from repro.quantum import gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.state_prep import amplitude_encode, state_preparation_circuit
from repro.utils.rng import ensure_rng


def swap_test_circuit(state_a: np.ndarray, state_b: np.ndarray) -> QuantumCircuit:
    """Build the swap-test circuit for two classical vectors.

    Layout: qubit 0 is the ancilla; register A occupies qubits 1..m;
    register B occupies qubits m+1..2m.
    """
    a = amplitude_encode(state_a)
    b = amplitude_encode(state_b)
    if a.size != b.size:
        raise EncodingError(
            f"states must have equal padded dimension, got {a.size} and {b.size}"
        )
    m = a.size.bit_length() - 1
    qc = QuantumCircuit(1 + 2 * m, name="swap_test")
    qc.compose(state_preparation_circuit(state_a), qubits=tuple(range(1, m + 1)))
    qc.compose(
        state_preparation_circuit(state_b), qubits=tuple(range(m + 1, 2 * m + 1))
    )
    qc.h(0)
    for offset in range(m):
        qc.add_unitary(
            gates.controlled(gates.SWAP),
            (0, 1 + offset, 1 + m + offset),
            label="cswap",
        )
    qc.h(0)
    return qc


def ancilla_zero_probability(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Exact P(ancilla = 0) = (1 + |<a|b>|²)/2 via full simulation."""
    qc = swap_test_circuit(state_a, state_b)
    final = qc.statevector()
    marginal = final.marginal_probabilities([0])
    return float(marginal[0])


def estimate_overlap(
    state_a: np.ndarray, state_b: np.ndarray, shots: int, seed=None
) -> float:
    """Finite-shot estimate of |<a|b>|² from repeated swap tests."""
    if shots < 1:
        raise EncodingError(f"shots must be >= 1, got {shots}")
    p_zero = ancilla_zero_probability(state_a, state_b)
    rng = ensure_rng(seed)
    zeros = rng.binomial(shots, p_zero)
    overlap_sq = 2.0 * zeros / shots - 1.0
    return float(np.clip(overlap_sq, 0.0, 1.0))


def estimate_distance_squared(
    vec_a: np.ndarray,
    vec_b: np.ndarray,
    shots: int,
    seed=None,
) -> float:
    """Squared Euclidean distance via the swap test and known norms.

    Uses ||a − b||² = ||a||² + ||b||² − 2 Re<a, b>; with real non-negative
    overlap assumed (the q-means setting), Re<a, b> = ||a||·||b||·sqrt(|<â|b̂>|²).
    """
    vec_a = np.asarray(vec_a, dtype=float)
    vec_b = np.asarray(vec_b, dtype=float)
    norm_a = np.linalg.norm(vec_a)
    norm_b = np.linalg.norm(vec_b)
    if norm_a < 1e-14 or norm_b < 1e-14:
        return float(norm_a**2 + norm_b**2)
    overlap_sq = estimate_overlap(vec_a, vec_b, shots, seed=seed)
    inner = norm_a * norm_b * np.sqrt(overlap_sq)
    sign = 1.0 if float(vec_a @ vec_b) >= 0 else -1.0
    return float(norm_a**2 + norm_b**2 - 2.0 * sign * inner)
