"""Measurement post-processing and state tomography models.

:func:`tomography_estimate` is the finite-shot readout model used by the
end-to-end pipeline: the magnitudes of a pure state are estimated from a
computational-basis multinomial sample and the relative phases from a
simulated interference measurement whose variance follows the same 1/shots
law.  With ``shots → ∞`` the estimate converges to the true state
(property-tested), and the l2 error scales as O(sqrt(d/shots)), matching the
Kerenidis–Prakash vector-tomography guarantee the paper builds on.

:func:`tomography_estimate_batch` is the same model vectorized across many
states at once: all deterministic arithmetic (normalization, magnitudes,
phase noise application) runs as whole-matrix NumPy operations, while the
random draws are taken from one caller-supplied generator *per row*.  The
draw stage runs in row chunks through
:func:`repro.utils.rng.run_per_stream` — each row's magnitude multinomial
and phase normals are back-to-back batched calls on that row's own stream,
and chunks of independent streams can execute on a thread pool.  Because
each row consumes exactly the draws — same distributions, same arguments,
same order — that :func:`tomography_estimate` would take from the same
generator, the batched path is bit-identical to a per-row loop at the same
seeds for *any* chunk size or thread count; :func:`tomography_estimate` is
in fact a batch of one.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError
from repro.linalg.array_backend import (
    dispatched_squared_magnitudes,
    dispatched_unit_phasors,
)
from repro.utils.rng import ensure_rng, run_per_stream


def counts_to_probabilities(counts: dict[int, int], dim: int) -> np.ndarray:
    """Empirical probability vector from a counts dictionary."""
    if dim < 1:
        raise EncodingError(f"dim must be positive, got {dim}")
    total = sum(counts.values())
    if total <= 0:
        raise EncodingError("counts dictionary is empty")
    probs = np.zeros(dim, dtype=float)
    for outcome, count in counts.items():
        if not 0 <= outcome < dim:
            raise EncodingError(f"outcome {outcome} out of range for dim {dim}")
        if count < 0:
            raise EncodingError("negative count")
        probs[outcome] = count
    return probs / total


def sample_distribution(probs: np.ndarray, shots: int, seed=None) -> dict[int, int]:
    """Multinomial sample from an exact distribution, as a counts dict."""
    probs = np.asarray(probs, dtype=float)
    if shots < 0:
        raise EncodingError(f"shots must be non-negative, got {shots}")
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise EncodingError(f"probabilities sum to {total:.4g}, expected 1")
    rng = ensure_rng(seed)
    draws = rng.multinomial(shots, probs / total)
    return {index: int(count) for index, count in enumerate(draws) if count}


def tomography_estimate(
    state: np.ndarray,
    shots: int,
    seed=None,
) -> np.ndarray:
    """Finite-shot l2 tomography of a pure state.

    Parameters
    ----------
    state:
        The true normalized complex statevector (the simulator knows it; a
        real device would not).
    shots:
        Measurement budget.  Half the shots estimate magnitudes, half the
        relative phases.
    seed:
        RNG seed or generator.

    Returns
    -------
    Estimated complex unit vector.  ``shots=0`` returns the exact state
    (the noiseless limit, used by exact-mode experiments).
    """
    state = np.asarray(state, dtype=complex).ravel()
    return tomography_estimate_batch(state[None, :], shots, [ensure_rng(seed)])[0]


def tomography_estimate_batch(
    states: np.ndarray,
    shots: int,
    rngs,
    *,
    draw_threads: int | None = None,
    draw_chunk_rows: int | None = None,
) -> np.ndarray:
    """Vectorized :func:`tomography_estimate` across many states at once.

    Parameters
    ----------
    states:
        ``(rows, dim)`` complex matrix; each row is one (non-zero) state to
        tomograph.  Rows need not be normalized — each is normalized
        independently, exactly as the scalar path does.
    shots:
        Measurement budget shared by every row (0 = noiseless readout).
    rngs:
        One :class:`numpy.random.Generator` per row.  Row ``i`` draws only
        from ``rngs[i]``, in the same order as the scalar path, so a batch
        is bit-identical to looping :func:`tomography_estimate` over rows
        with the same generators.
    draw_threads:
        Thread count for the per-stream draw stage (``None``/1 = serial).
        Row streams are independent and NumPy's generators release the GIL
        while sampling, so the magnitude/phase draws of different rows
        overlap on a thread pool — with output bit-identical to the serial
        pass at any thread count.
    draw_chunk_rows:
        Rows per draw chunk (default
        :data:`repro.utils.rng.DEFAULT_DRAW_CHUNK_ROWS`); chunking never
        changes results either.

    Returns
    -------
    ``(rows, dim)`` complex matrix of estimated unit vectors.
    """
    states = np.asarray(states, dtype=complex)
    if states.ndim != 2:
        raise EncodingError(
            f"states must be a (rows, dim) matrix, got shape {states.shape}"
        )
    num_rows, dim = states.shape
    if len(rngs) != num_rows:
        raise EncodingError(
            f"need one generator per row: {num_rows} rows, {len(rngs)} rngs"
        )
    if shots < 0:
        raise EncodingError(f"shots must be non-negative, got {shots}")
    # One squared-magnitude pass serves normalization, the multinomial
    # pvals and the phase-noise scale.
    squared = dispatched_squared_magnitudes(states)
    if squared is None:
        squared = states.real**2 + states.imag**2
    squared_norms = np.sum(squared, axis=-1)
    if num_rows and squared_norms.min() < 1e-28:
        raise EncodingError("cannot tomograph the zero vector")
    if shots == 0:
        return states / np.sqrt(squared_norms)[:, None]
    magnitude_shots = max(shots // 2, 1)
    phase_shots = max(shots - magnitude_shots, 1)
    probability = squared / squared_norms[:, None]
    counts = np.empty((num_rows, dim))

    # Chunked per-stream draw pass 1: the magnitude multinomial of every
    # row, from that row's own generator.  Chunks touch disjoint rows, so
    # neither chunk size nor thread count can change any stream's draws.
    def draw_magnitudes(start: int, stop: int) -> None:
        for row in range(start, stop):
            counts[row] = rngs[row].multinomial(magnitude_shots, probability[row])

    run_per_stream(
        num_rows,
        draw_magnitudes,
        threads=draw_threads,
        chunk_rows=draw_chunk_rows,
    )
    magnitudes = np.sqrt(counts / magnitude_shots)
    # Relative-phase estimation: each component's phase is measured through
    # interference against a reference component; the phase error of
    # component s scales as 1/sqrt(phase_shots * p_s) — low-mass components
    # carry proportionally noisier phases, exactly as on hardware.  Only
    # *observed* components (non-zero magnitude count) need a phase: the
    # others enter the estimate with magnitude exactly zero, so their
    # phase draws and trigonometry are skipped.  True phases are read off
    # the raw states (phase is scale-invariant).
    observed = counts != 0
    observed_per_row = np.count_nonzero(observed, axis=-1)
    phase_sigma = np.minimum(
        1.0
        / np.sqrt(phase_shots * np.clip(probability[observed], 1e-12, None)),
        np.pi,
    )
    noise = np.empty(phase_sigma.size)
    offsets = np.concatenate([[0], np.cumsum(observed_per_row)])

    # Chunked per-stream draw pass 2: each row's phase normals, drawn
    # after its multinomial exactly as the scalar path orders them; rows
    # write disjoint slices of the flattened noise vector.
    def draw_phases(start: int, stop: int) -> None:
        for row in range(start, stop):
            low, high = offsets[row], offsets[row + 1]
            noise[low:high] = rngs[row].normal(0.0, phase_sigma[low:high])

    run_per_stream(
        num_rows,
        draw_phases,
        threads=draw_threads,
        chunk_rows=draw_chunk_rows,
    )
    phases = np.arctan2(states.imag[observed], states.real[observed]) + noise
    values = magnitudes[observed]
    estimates = np.zeros((num_rows, dim), dtype=complex)
    phasors = dispatched_unit_phasors(phases)
    if phasors is not None:
        estimates[observed] = values * phasors
    else:
        estimates.real[observed] = values * np.cos(phases)
        estimates.imag[observed] = values * np.sin(phases)
    # ||estimate||² = Σ counts/magnitude_shots = 1 up to rounding (the
    # multinomial distributes every shot), so the renormalization below is
    # a guard against accumulated rounding; the basis-state fallback can
    # only trigger for degenerate inputs.
    estimate_norms = np.sqrt(np.sum(magnitudes**2, axis=-1))
    degenerate = estimate_norms < 1e-14
    if degenerate.any():
        for row in np.flatnonzero(degenerate):
            estimates[row] = 0.0
            estimates[row, int(np.argmax(squared[row]))] = 1.0
        estimate_norms[degenerate] = 1.0
    return estimates / estimate_norms[:, None]


def expectation_from_counts(counts: dict[int, int], values: np.ndarray) -> float:
    """Empirical expectation of a diagonal observable from counts."""
    values = np.asarray(values, dtype=float)
    total = sum(counts.values())
    if total <= 0:
        raise EncodingError("counts dictionary is empty")
    acc = 0.0
    for outcome, count in counts.items():
        if not 0 <= outcome < values.size:
            raise EncodingError(f"outcome {outcome} out of range")
        acc += values[outcome] * count
    return acc / total
