"""Measurement post-processing and state tomography models.

:func:`tomography_estimate` is the finite-shot readout model used by the
end-to-end pipeline: the magnitudes of a pure state are estimated from a
computational-basis multinomial sample and the relative phases from a
simulated interference measurement whose variance follows the same 1/shots
law.  With ``shots → ∞`` the estimate converges to the true state
(property-tested), and the l2 error scales as O(sqrt(d/shots)), matching the
Kerenidis–Prakash vector-tomography guarantee the paper builds on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError
from repro.utils.rng import ensure_rng


def counts_to_probabilities(counts: dict[int, int], dim: int) -> np.ndarray:
    """Empirical probability vector from a counts dictionary."""
    if dim < 1:
        raise EncodingError(f"dim must be positive, got {dim}")
    total = sum(counts.values())
    if total <= 0:
        raise EncodingError("counts dictionary is empty")
    probs = np.zeros(dim, dtype=float)
    for outcome, count in counts.items():
        if not 0 <= outcome < dim:
            raise EncodingError(f"outcome {outcome} out of range for dim {dim}")
        if count < 0:
            raise EncodingError("negative count")
        probs[outcome] = count
    return probs / total


def sample_distribution(probs: np.ndarray, shots: int, seed=None) -> dict[int, int]:
    """Multinomial sample from an exact distribution, as a counts dict."""
    probs = np.asarray(probs, dtype=float)
    if shots < 0:
        raise EncodingError(f"shots must be non-negative, got {shots}")
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise EncodingError(f"probabilities sum to {total:.4g}, expected 1")
    rng = ensure_rng(seed)
    draws = rng.multinomial(shots, probs / total)
    return {index: int(count) for index, count in enumerate(draws) if count}


def tomography_estimate(
    state: np.ndarray,
    shots: int,
    seed=None,
) -> np.ndarray:
    """Finite-shot l2 tomography of a pure state.

    Parameters
    ----------
    state:
        The true normalized complex statevector (the simulator knows it; a
        real device would not).
    shots:
        Measurement budget.  Half the shots estimate magnitudes, half the
        relative phases.
    seed:
        RNG seed or generator.

    Returns
    -------
    Estimated complex unit vector.  ``shots=0`` returns the exact state
    (the noiseless limit, used by exact-mode experiments).
    """
    state = np.asarray(state, dtype=complex).ravel()
    norm = np.linalg.norm(state)
    if norm < 1e-14:
        raise EncodingError("cannot tomograph the zero vector")
    state = state / norm
    if shots < 0:
        raise EncodingError(f"shots must be non-negative, got {shots}")
    if shots == 0:
        return state.copy()
    rng = ensure_rng(seed)
    magnitude_shots = max(shots // 2, 1)
    phase_shots = max(shots - magnitude_shots, 1)
    counts = rng.multinomial(magnitude_shots, np.abs(state) ** 2)
    magnitudes = np.sqrt(counts / magnitude_shots)
    # Relative-phase estimation: each component's phase is measured through
    # interference against a reference component; the phase error of
    # component s scales as 1/sqrt(phase_shots * p_s) — low-mass components
    # carry proportionally noisier phases, exactly as on hardware.
    true_phases = np.angle(state)
    probability_mass = np.clip(np.abs(state) ** 2, 1e-12, None)
    phase_sigma = 1.0 / np.sqrt(phase_shots * probability_mass)
    noisy_phases = true_phases + rng.normal(0.0, np.minimum(phase_sigma, np.pi), state.size)
    estimate = magnitudes * np.exp(1j * noisy_phases)
    estimate_norm = np.linalg.norm(estimate)
    if estimate_norm < 1e-14:
        # Every shot landed outside the support (possible for tiny budgets);
        # fall back to the maximum-likelihood single-basis state.
        fallback = np.zeros_like(state)
        fallback[int(np.argmax(np.abs(state)))] = 1.0
        return fallback
    return estimate / estimate_norm


def expectation_from_counts(counts: dict[int, int], values: np.ndarray) -> float:
    """Empirical expectation of a diagonal observable from counts."""
    values = np.asarray(values, dtype=float)
    total = sum(counts.values())
    if total <= 0:
        raise EncodingError("counts dictionary is empty")
    acc = 0.0
    for outcome, count in counts.items():
        if not 0 <= outcome < values.size:
            raise EncodingError(f"outcome {outcome} out of range")
        acc += values[outcome] * count
    return acc / total
