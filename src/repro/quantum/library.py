"""Reusable circuit constructions: QFT, superposition layers, basis prep.

These are the building blocks the phase-estimation module assembles.  All
constructions follow the big-endian qubit convention of the package: qubit 0
is the most significant bit of the basis index.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.circuit import QuantumCircuit


def qft_circuit(num_qubits: int, swap: bool = True) -> QuantumCircuit:
    """The quantum Fourier transform on ``num_qubits`` qubits.

    With ``swap=True`` the output bit order matches the textbook DFT matrix
    ``F[j, k] = exp(2πi jk / 2^m) / sqrt(2^m)``.

    Parameters
    ----------
    num_qubits:
        Register width m.
    swap:
        Whether to append the final qubit-reversal swaps.
    """
    qc = QuantumCircuit(num_qubits, name=f"qft{num_qubits}")
    for target in range(num_qubits):
        qc.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=1):
            qc.cp(np.pi / (2**offset), control, target)
    if swap:
        for low in range(num_qubits // 2):
            qc.swap(low, num_qubits - 1 - low)
    return qc


def inverse_qft_circuit(num_qubits: int, swap: bool = True) -> QuantumCircuit:
    """Adjoint of :func:`qft_circuit`."""
    inv = qft_circuit(num_qubits, swap=swap).inverse()
    inv.name = f"iqft{num_qubits}"
    return inv


def qft_matrix(num_qubits: int) -> np.ndarray:
    """Reference DFT matrix for validating :func:`qft_circuit`."""
    dim = 2**num_qubits
    omega = np.exp(2j * np.pi / dim)
    j, k = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
    return omega ** (j * k) / np.sqrt(dim)


def hadamard_layer(num_qubits: int, qubits=None) -> QuantumCircuit:
    """H on every listed qubit (default: all) — prepares uniform superposition."""
    qc = QuantumCircuit(num_qubits, name="h_layer")
    for q in range(num_qubits) if qubits is None else qubits:
        qc.h(q)
    return qc


def basis_preparation(num_qubits: int, index: int) -> QuantumCircuit:
    """X gates preparing the computational basis state ``|index>``."""
    if not 0 <= index < 2**num_qubits:
        raise CircuitError(f"basis index {index} out of range for {num_qubits} qubits")
    qc = QuantumCircuit(num_qubits, name=f"prep|{index}>")
    for qubit in range(num_qubits):
        if (index >> (num_qubits - 1 - qubit)) & 1:
            qc.x(qubit)
    return qc
