"""Quantum resource accounting for the runtime-scaling experiment (F3).

A statevector simulator cannot measure quantum wall-clock, so — exactly as
the original evaluation does — the runtime figure compares *step-count
proxies*: the number of elementary operations each algorithm would execute.
This module centralises those counts so the F3 harness and the tests agree
on one model.

Quantum cost model for the mixed-graph pipeline on an n-node graph
(m = ceil(log2 n) system qubits, p ancilla bits, k clusters, s shots):

* state preparation of one node index: O(m) X gates (basis state);
* one QPE execution: p Hadamards + (2^p − 1) controlled-U applications +
  O(p²) gates of inverse QFT;
* each controlled-U costs ``trotter_steps · num_pauli_terms`` two-qubit-
  equivalent gates — for graph Laplacians the Pauli term count scales with
  the edge count, which is O(n·davg), giving the near-linear envelope the
  paper reports;
* per node the routine repeats ``shots`` times for tomography.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import CircuitError
from repro.utils.linalg import next_power_of_two


@dataclass(frozen=True)
class QPEResources:
    """Elementary-operation counts of one phase-estimation execution."""

    system_qubits: int
    ancilla_qubits: int
    controlled_u_applications: int
    elementary_gates: int

    @property
    def total_qubits(self) -> int:
        """Width of the full register."""
        return self.system_qubits + self.ancilla_qubits


def qpe_resources(
    num_nodes: int,
    precision: int,
    pauli_terms: int,
    trotter_steps: int = 1,
) -> QPEResources:
    """Gate/qubit counts for one QPE run on an n-node graph Hamiltonian.

    Parameters
    ----------
    num_nodes:
        Graph size n; the system register has ceil(log2 n) qubits.
    precision:
        Ancilla bits p.
    pauli_terms:
        Number of Pauli terms in the Hamiltonian decomposition (edge-count
        proxy when the decomposition is not materialised).
    trotter_steps:
        Trotter slices per unit evolution.
    """
    if num_nodes < 2:
        raise CircuitError(f"need at least two nodes, got {num_nodes}")
    if precision < 1:
        raise CircuitError(f"precision must be >= 1, got {precision}")
    if pauli_terms < 1 or trotter_steps < 1:
        raise CircuitError("pauli_terms and trotter_steps must be >= 1")
    system_qubits = next_power_of_two(num_nodes).bit_length() - 1
    controlled_u = 2**precision - 1
    gates_per_u = pauli_terms * trotter_steps
    iqft_gates = precision * (precision + 1) // 2 + precision // 2
    elementary = (
        precision  # Hadamard fan-out
        + system_qubits  # basis-state preparation bound
        + controlled_u * gates_per_u
        + iqft_gates
    )
    return QPEResources(
        system_qubits=system_qubits,
        ancilla_qubits=precision,
        controlled_u_applications=controlled_u,
        elementary_gates=elementary,
    )


def quantum_pipeline_step_count(
    num_nodes: int,
    num_edges: int,
    num_clusters: int,
    precision: int,
    shots: int,
    trotter_steps: int = 1,
    qmeans_iterations: int = 10,
) -> float:
    """Total step-count proxy of the end-to-end quantum pipeline.

    Counts ``n · shots`` QPE executions (row extraction with tomography)
    plus the q-means iterations, whose per-iteration cost is
    O(n · k · polylog) distance estimations.  The Hamiltonian's Pauli-term
    count is proxied by the edge count (each edge contributes O(1) terms).
    """
    per_qpe = qpe_resources(
        num_nodes,
        precision,
        pauli_terms=max(num_edges, 1),
        trotter_steps=trotter_steps,
    ).elementary_gates
    row_extraction = float(num_nodes) * max(shots, 1) * per_qpe
    qmeans = (
        qmeans_iterations
        * num_nodes
        * num_clusters
        * max(math.log2(max(num_nodes, 2)), 1.0)
    )
    return row_extraction + qmeans


def classical_pipeline_step_count(num_nodes: int, num_clusters: int,
                                  kmeans_iterations: int = 10) -> float:
    """Step-count proxy of classical spectral clustering: O(n³) eigensolve
    plus O(iters · n · k²) Lloyd refinement."""
    if num_nodes < 2:
        raise CircuitError(f"need at least two nodes, got {num_nodes}")
    eigensolve = float(num_nodes) ** 3
    lloyd = float(kmeans_iterations) * num_nodes * num_clusters**2
    return eigensolve + lloyd
