"""Hamiltonian simulation: exact evolution and Trotter product formulas.

Two paths produce the unitary U = exp(i H t) needed by phase estimation:

``exact_evolution``
    Eigendecompose H once and exponentiate the spectrum.  This stands in for
    the fault-tolerant Hamiltonian-simulation oracle assumed by the paper
    (see the substitution table in DESIGN.md).

``trotter_evolution``
    First- or second-order (Suzuki) product formula over the Pauli
    decomposition of H.  This is the gate-level-honest path whose error is
    an explicit ablation (experiment A1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.pauli import PauliTerm, pauli_decompose
from repro.utils.linalg import is_hermitian


@dataclass(frozen=True)
class SpectralDecomposition:
    """Cached eigendecomposition H = V diag(w) V†."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    @classmethod
    def of(cls, hamiltonian: np.ndarray) -> "SpectralDecomposition":
        """Eigendecompose a Hermitian matrix (validated)."""
        hamiltonian = np.asarray(hamiltonian, dtype=complex)
        if not is_hermitian(hamiltonian, atol=1e-8):
            raise CircuitError("Hamiltonian must be Hermitian")
        eigenvalues, eigenvectors = np.linalg.eigh(hamiltonian)
        return cls(eigenvalues=eigenvalues, eigenvectors=eigenvectors)

    def evolution(self, time: float) -> np.ndarray:
        """U = exp(i H t) from the cached spectrum."""
        phases = np.exp(1j * self.eigenvalues * time)
        return (self.eigenvectors * phases) @ self.eigenvectors.conj().T


def exact_evolution(hamiltonian: np.ndarray, time: float) -> np.ndarray:
    """U = exp(i H t) via eigendecomposition (one-shot convenience)."""
    return SpectralDecomposition.of(hamiltonian).evolution(time)


def _term_evolution(term: PauliTerm, time: float) -> np.ndarray:
    """exp(i c t P) for one Pauli term, using P² = I:

    exp(i a P) = cos(a) I + i sin(a) P.
    """
    angle = term.coefficient * time
    matrix = term.matrix()
    dim = matrix.shape[0]
    return np.cos(angle) * np.eye(dim) + 1j * np.sin(angle) * matrix


def trotter_evolution(
    hamiltonian: np.ndarray,
    time: float,
    steps: int = 8,
    order: int = 1,
    terms: list[PauliTerm] | None = None,
) -> np.ndarray:
    """Approximate exp(i H t) with a product formula.

    Parameters
    ----------
    hamiltonian:
        Hermitian matrix of power-of-two dimension.
    time:
        Evolution time t.
    steps:
        Number of Trotter slices r; error is O(t²/r) at order 1 and
        O(t³/r²) at order 2.
    order:
        1 for Lie-Trotter, 2 for the symmetric Suzuki formula.
    terms:
        Pre-computed Pauli decomposition (recomputed when omitted).
    """
    if steps < 1:
        raise CircuitError(f"steps must be >= 1, got {steps}")
    if order not in (1, 2):
        raise CircuitError(f"only orders 1 and 2 are supported, got {order}")
    hamiltonian = np.asarray(hamiltonian, dtype=complex)
    if terms is None:
        terms = pauli_decompose(hamiltonian)
    dim = hamiltonian.shape[0]
    dt = time / steps
    if order == 1:
        slice_unitaries = [_term_evolution(term, dt) for term in terms]
    else:
        halves = [_term_evolution(term, dt / 2) for term in terms]
        slice_unitaries = halves + halves[::-1]
    one_slice = np.eye(dim, dtype=complex)
    for unitary in slice_unitaries:
        one_slice = unitary @ one_slice
    return np.linalg.matrix_power(one_slice, steps)


def trotter_error(
    hamiltonian: np.ndarray, time: float, steps: int, order: int = 1
) -> float:
    """Spectral-norm error ||Trotter − exact|| for the ablation study."""
    exact = exact_evolution(hamiltonian, time)
    approx = trotter_evolution(hamiltonian, time, steps=steps, order=order)
    return float(np.linalg.norm(exact - approx, ord=2))
