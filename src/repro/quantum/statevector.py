"""Dense statevector simulation backend.

The :class:`Statevector` class stores the full 2^m amplitude vector and
applies k-qubit gate matrices by reshaping to a rank-m tensor and contracting
with :func:`numpy.einsum`-free axis moves — O(2^m · 2^k) per gate, which is
the standard cost for dense simulation.

Qubit 0 is the most significant bit of the basis index (big-endian), matching
``repro.quantum.gates``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError, QubitError
from repro.utils.rng import ensure_rng

_NORM_ATOL = 1e-9


class Statevector:
    """A normalized pure state on ``num_qubits`` qubits.

    Parameters
    ----------
    data:
        Either an integer qubit count (state initialised to ``|0...0>``) or
        an amplitude vector of length ``2**m``; the vector is copied and
        validated for normalization.

    Examples
    --------
    >>> sv = Statevector(2)
    >>> sv.apply_gate(gates.H, [0])
    >>> sv.probabilities().round(3)
    array([0.5, 0. , 0.5, 0. ])
    """

    def __init__(self, data):
        if isinstance(data, (int, np.integer)):
            if data < 1:
                raise CircuitError(f"need at least one qubit, got {data}")
            self._num_qubits = int(data)
            self._amplitudes = np.zeros(2**self._num_qubits, dtype=complex)
            self._amplitudes[0] = 1.0
            return
        amplitudes = np.asarray(data, dtype=complex).ravel().copy()
        dim = amplitudes.size
        if dim < 2 or dim & (dim - 1):
            raise CircuitError(f"amplitude vector length {dim} is not a power of two")
        norm = np.linalg.norm(amplitudes)
        if abs(norm - 1.0) > 1e-6:
            raise CircuitError(f"statevector is not normalized (norm={norm:.3g})")
        self._amplitudes = amplitudes / norm
        self._num_qubits = dim.bit_length() - 1

    # -- basic accessors ---------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension 2**num_qubits."""
        return self._amplitudes.size

    @property
    def amplitudes(self) -> np.ndarray:
        """A copy of the amplitude vector (basis index big-endian in qubit 0)."""
        return self._amplitudes.copy()

    def copy(self) -> "Statevector":
        """Deep copy of this state."""
        clone = Statevector(self._num_qubits)
        clone._amplitudes = self._amplitudes.copy()
        return clone

    def norm(self) -> float:
        """l2 norm of the amplitudes (should always be 1 within tolerance)."""
        return float(np.linalg.norm(self._amplitudes))

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities over all 2**m basis states."""
        return np.abs(self._amplitudes) ** 2

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2 — overlap with another state of equal size."""
        if other.num_qubits != self._num_qubits:
            raise CircuitError("fidelity requires equal qubit counts")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    # -- gate application --------------------------------------------------

    def _validate_qubits(self, qubits) -> tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not 0 <= q < self._num_qubits:
                raise QubitError(
                    f"qubit {q} out of range for {self._num_qubits}-qubit state"
                )
        if len(set(qubits)) != len(qubits):
            raise QubitError(f"duplicate qubits in {qubits}")
        return qubits

    def apply_gate(self, matrix: np.ndarray, qubits) -> None:
        """Apply a 2^k x 2^k unitary ``matrix`` to the listed ``qubits``.

        ``qubits[0]`` corresponds to the most significant bit of the gate
        matrix index, consistent with the global big-endian convention.
        """
        qubits = self._validate_qubits(qubits)
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2**k, 2**k):
            raise CircuitError(
                f"gate on {k} qubit(s) must be {2**k}x{2**k}, got {matrix.shape}"
            )
        m = self._num_qubits
        tensor = self._amplitudes.reshape((2,) * m)
        # Move the targeted axes to the front, contract, and move them back.
        tensor = np.moveaxis(tensor, qubits, range(k))
        tensor = tensor.reshape(2**k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape((2,) * m)
        tensor = np.moveaxis(tensor, range(k), qubits)
        self._amplitudes = np.ascontiguousarray(tensor).ravel()

    def apply_unitary(self, matrix: np.ndarray) -> None:
        """Apply a full-register unitary (dimension must match exactly)."""
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (self.dim, self.dim):
            raise CircuitError(
                f"full unitary must be {self.dim}x{self.dim}, got {matrix.shape}"
            )
        self._amplitudes = matrix @ self._amplitudes

    # -- measurement -------------------------------------------------------

    def measure_qubits(self, qubits, seed=None) -> tuple[int, "Statevector"]:
        """Projectively measure ``qubits``; return (outcome, collapsed state).

        The outcome integer packs the measured bits big-endian in the order
        the qubits were given.  The returned state is renormalized.
        """
        qubits = self._validate_qubits(qubits)
        rng = ensure_rng(seed)
        marginal = self.marginal_probabilities(qubits)
        outcome = int(rng.choice(marginal.size, p=marginal))
        collapsed = self._project(qubits, outcome)
        return outcome, collapsed

    def marginal_probabilities(self, qubits) -> np.ndarray:
        """Exact marginal distribution of the listed qubits."""
        qubits = self._validate_qubits(qubits)
        m = self._num_qubits
        probs = self.probabilities().reshape((2,) * m)
        keep = list(qubits)
        drop = [axis for axis in range(m) if axis not in keep]
        marginal = probs.sum(axis=tuple(drop)) if drop else probs
        if len(keep) > 1:
            # ``sum`` leaves kept axes in ascending qubit order; permute them
            # back to the order the caller requested.  The rank of each qubit
            # within ``keep`` is exactly its axis position after the sum.
            marginal = np.transpose(marginal, axes=np.argsort(np.argsort(keep)))
        flat = marginal.ravel()
        total = flat.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise CircuitError(f"marginal does not sum to 1 (got {total:.3g})")
        return flat / total

    def _project(self, qubits, outcome: int) -> "Statevector":
        m = self._num_qubits
        tensor = self._amplitudes.reshape((2,) * m).copy()
        bits = [(outcome >> (len(qubits) - 1 - i)) & 1 for i in range(len(qubits))]
        index = [slice(None)] * m
        for qubit, bit in zip(qubits, bits):
            mask_index = list(index)
            mask_index[qubit] = 1 - bit
            tensor[tuple(mask_index)] = 0.0
        flat = tensor.ravel()
        norm = np.linalg.norm(flat)
        if norm < 1e-12:
            raise CircuitError("projection onto a zero-probability outcome")
        return Statevector(flat / norm)

    def sample_counts(self, shots: int, qubits=None, seed=None) -> dict[int, int]:
        """Sample ``shots`` measurement outcomes without collapsing the state.

        Returns a dict mapping outcome integers to counts.  With ``qubits``
        omitted the full register is measured.
        """
        if shots < 0:
            raise CircuitError(f"shots must be non-negative, got {shots}")
        rng = ensure_rng(seed)
        if qubits is None:
            probs = self.probabilities()
        else:
            probs = self.marginal_probabilities(qubits)
        draws = rng.multinomial(shots, probs)
        return {index: int(count) for index, count in enumerate(draws) if count}

    def expectation(self, observable: np.ndarray) -> float:
        """Real expectation value <psi|O|psi> of a Hermitian observable."""
        observable = np.asarray(observable, dtype=complex)
        if observable.shape != (self.dim, self.dim):
            raise CircuitError("observable dimension mismatch")
        value = np.vdot(self._amplitudes, observable @ self._amplitudes)
        return float(value.real)


def basis_state(num_qubits: int, index: int) -> Statevector:
    """The computational basis state ``|index>`` on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    if not 0 <= index < dim:
        raise CircuitError(f"basis index {index} out of range for dim {dim}")
    amplitudes = np.zeros(dim, dtype=complex)
    amplitudes[index] = 1.0
    return Statevector(amplitudes)


def uniform_superposition(num_qubits: int) -> Statevector:
    """The state H^{⊗m}|0> = uniform superposition over all basis states."""
    dim = 2**num_qubits
    return Statevector(np.full(dim, 1.0 / np.sqrt(dim), dtype=complex))
