"""Standard quantum gate matrices.

Every function returns a fresh ``numpy.ndarray`` of complex128 so callers
can mutate results safely.  Single-qubit constants are exposed both as
module-level matrices (``X``, ``H`` ...) and through :func:`gate_matrix`,
which resolves a gate by name with optional parameters — the circuit IR uses
the latter.

Qubit-ordering convention (used consistently across the package):
qubit 0 is the **most significant** bit of the computational basis index,
matching the big-endian convention of most textbooks, so the basis state
``|q0 q1 ... q_{m-1}>`` has index ``q0·2^{m-1} + ... + q_{m-1}``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError

SQRT2_INV = 1.0 / np.sqrt(2.0)

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[SQRT2_INV, SQRT2_INV], [SQRT2_INV, -SQRT2_INV]], dtype=complex)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
TDG = np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex)

SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis: exp(-i θ X / 2)."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis: exp(-i θ Y / 2)."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis: exp(-i θ Z / 2)."""
    phase = np.exp(-1j * theta / 2)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=complex)


def phase(lam: float) -> np.ndarray:
    """Phase gate diag(1, e^{iλ}) — ``P(λ)`` in Qiskit nomenclature."""
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary with three Euler angles."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def global_phase(gamma: float) -> np.ndarray:
    """Single-qubit identity times e^{iγ} (bookkeeping for controlled phases)."""
    return np.exp(1j * gamma) * np.eye(2, dtype=complex)


def controlled(unitary: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Embed ``unitary`` as a multi-controlled gate matrix.

    The controls occupy the most significant qubits; the target block sits in
    the bottom-right corner of the enlarged matrix, which matches the
    big-endian qubit ordering used by the simulator.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if num_controls < 1:
        raise CircuitError(f"num_controls must be >= 1, got {num_controls}")
    dim = unitary.shape[0]
    full = np.eye(dim * (2**num_controls), dtype=complex)
    full[-dim:, -dim:] = unitary
    return full


_FIXED_GATES = {
    "i": I2,
    "id": I2,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "swap": SWAP,
}

_PARAMETRIC_GATES = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "p": phase,
    "phase": phase,
    "u3": u3,
    "gphase": global_phase,
}


def gate_matrix(name: str, params: tuple = ()) -> np.ndarray:
    """Resolve a gate name (case-insensitive) to its matrix.

    Parameters
    ----------
    name:
        A fixed gate (``"x"``, ``"h"``, ``"swap"`` ...) or a parametric one
        (``"rx"``, ``"p"``, ``"u3"`` ...).
    params:
        Parameters for parametric gates; must be empty for fixed gates.
    """
    key = name.lower()
    if key in _FIXED_GATES:
        if params:
            raise CircuitError(f"gate {name!r} takes no parameters")
        return _FIXED_GATES[key].copy()
    if key in _PARAMETRIC_GATES:
        return _PARAMETRIC_GATES[key](*params)
    raise CircuitError(f"unknown gate {name!r}")


def known_gate_names() -> tuple[str, ...]:
    """All gate names :func:`gate_matrix` accepts (for documentation/tests)."""
    return tuple(sorted(set(_FIXED_GATES) | set(_PARAMETRIC_GATES)))
