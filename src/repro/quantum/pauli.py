"""Pauli-string algebra and Pauli decomposition of Hermitian matrices.

A Pauli string is a label like ``"XIZ"`` denoting the Kronecker product
X ⊗ I ⊗ Z (leftmost letter acts on qubit 0, the most significant qubit).
Any Hermitian matrix on m qubits expands uniquely in this basis with real
coefficients:

    H = Σ_s  c_s · P_s,     c_s = Tr(P_s H) / 2^m.

The decomposition is what feeds Trotterized Hamiltonian simulation for the
gate-level realism path of the QPE engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum import gates

_PAULI_MATRICES = {
    "I": gates.I2,
    "X": gates.X,
    "Y": gates.Y,
    "Z": gates.Z,
}

PAULI_LETTERS = "IXYZ"


@dataclass(frozen=True)
class PauliTerm:
    """One weighted Pauli string, e.g. ``0.5 * XIZ``."""

    label: str
    coefficient: float

    def __post_init__(self):
        if not self.label or any(c not in _PAULI_MATRICES for c in self.label):
            raise CircuitError(f"invalid Pauli label {self.label!r}")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the string acts on."""
        return len(self.label)

    def matrix(self) -> np.ndarray:
        """Dense matrix of the *unweighted* Pauli string."""
        return pauli_matrix(self.label)

    def weighted_matrix(self) -> np.ndarray:
        """Dense matrix including the coefficient."""
        return self.coefficient * self.matrix()


def pauli_matrix(label: str) -> np.ndarray:
    """Kronecker product of single-qubit Paulis named by ``label``."""
    if not label:
        raise CircuitError("empty Pauli label")
    try:
        factors = [_PAULI_MATRICES[c] for c in label]
    except KeyError as exc:
        raise CircuitError(f"invalid Pauli letter in {label!r}") from exc
    return reduce(np.kron, factors)


def all_pauli_labels(num_qubits: int):
    """Yield all 4^m Pauli labels on ``num_qubits`` qubits in lexicographic order."""
    if num_qubits < 1:
        raise CircuitError(f"need at least one qubit, got {num_qubits}")

    def extend(prefix: str, remaining: int):
        if remaining == 0:
            yield prefix
            return
        for letter in PAULI_LETTERS:
            yield from extend(prefix + letter, remaining - 1)

    yield from extend("", num_qubits)


def pauli_decompose(matrix: np.ndarray, tol: float = 1e-12) -> list[PauliTerm]:
    """Expand a Hermitian matrix in the Pauli basis.

    Parameters
    ----------
    matrix:
        Hermitian matrix of dimension 2^m.
    tol:
        Coefficients with absolute value <= ``tol`` are dropped.

    Returns
    -------
    list of :class:`PauliTerm` whose weighted sum reconstructs ``matrix``.

    Notes
    -----
    Runs in O(8^m) time — intended for the small-m Trotter path (m <= 6),
    not for the analytic backend which never decomposes.
    """
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise CircuitError("pauli_decompose requires a square matrix")
    if dim & (dim - 1) or dim < 2:
        raise CircuitError(f"dimension {dim} is not a power of two")
    if not np.allclose(matrix, matrix.conj().T, atol=1e-9):
        raise CircuitError("pauli_decompose requires a Hermitian matrix")
    num_qubits = dim.bit_length() - 1
    terms = []
    for label in all_pauli_labels(num_qubits):
        coefficient = np.trace(pauli_matrix(label) @ matrix).real / dim
        if abs(coefficient) > tol:
            terms.append(PauliTerm(label, float(coefficient)))
    return terms


def pauli_reconstruct(terms, num_qubits: int) -> np.ndarray:
    """Sum of weighted Pauli terms — the inverse of :func:`pauli_decompose`."""
    dim = 2**num_qubits
    total = np.zeros((dim, dim), dtype=complex)
    for term in terms:
        if term.num_qubits != num_qubits:
            raise CircuitError(
                f"term {term.label!r} acts on {term.num_qubits} qubits, "
                f"expected {num_qubits}"
            )
        total += term.weighted_matrix()
    return total
