"""A minimal but complete quantum-circuit intermediate representation.

:class:`QuantumCircuit` stores a list of :class:`Operation` records.  Each
operation is either a *named gate* (resolved through
``repro.quantum.gates.gate_matrix`` at simulation time) or a *raw unitary*
(an explicit matrix, used for oracle-style gates such as ``exp(i L t)``).
Circuits compose, invert, and control generically, which is everything the
QPE construction needs.

The class deliberately has no symbolic parameters or classical registers:
measurement lives in the simulator (``Statevector``) and in
``repro.quantum.measurement``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import CircuitError, QubitError
from repro.quantum import gates
from repro.quantum.statevector import Statevector


@dataclass(frozen=True)
class Operation:
    """One gate application inside a circuit.

    Attributes
    ----------
    name:
        Gate name for named gates, or ``"unitary"`` for raw matrices.
    qubits:
        Target qubits, most significant first (big-endian).
    params:
        Parameters for parametric named gates.
    matrix:
        Explicit unitary for raw-matrix operations (``None`` otherwise).
    label:
        Optional human-readable tag shown by ``QuantumCircuit.draw``.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple = ()
    matrix: np.ndarray | None = field(default=None, compare=False)
    label: str = ""

    def resolve_matrix(self) -> np.ndarray:
        """The concrete unitary implementing this operation."""
        if self.matrix is not None:
            return self.matrix
        return gates.gate_matrix(self.name, self.params)

    def inverse(self) -> "Operation":
        """The adjoint operation (named gates become raw inverses)."""
        matrix = self.resolve_matrix().conj().T
        return Operation(
            name=f"{self.name}_dg" if self.name != "unitary" else "unitary",
            qubits=self.qubits,
            matrix=matrix,
            label=f"{self.label}†" if self.label else "",
        )


class QuantumCircuit:
    """An ordered list of gate operations on ``num_qubits`` qubits.

    Examples
    --------
    Build a Bell pair:

    >>> qc = QuantumCircuit(2)
    >>> qc.h(0).cx(0, 1)
    >>> qc.statevector().probabilities().round(3)
    array([0.5, 0. , 0. , 0.5])
    """

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise CircuitError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._operations: list[Operation] = []

    # -- bookkeeping ---------------------------------------------------------

    @property
    def operations(self) -> tuple[Operation, ...]:
        """Immutable view of the operation list."""
        return tuple(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def _check_qubits(self, qubits) -> tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise QubitError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        if len(set(qubits)) != len(qubits):
            raise QubitError(f"duplicate qubits in {qubits}")
        return qubits

    def append(self, operation: Operation) -> "QuantumCircuit":
        """Append a pre-built operation (qubits are validated)."""
        self._check_qubits(operation.qubits)
        self._operations.append(operation)
        return self

    def add_gate(self, name: str, qubits, params: tuple = ()) -> "QuantumCircuit":
        """Append a named gate; shape is validated eagerly."""
        qubits = self._check_qubits(qubits)
        matrix = gates.gate_matrix(name, params)
        if matrix.shape != (2 ** len(qubits),) * 2:
            raise CircuitError(
                f"gate {name!r} has dimension {matrix.shape[0]}, "
                f"but {len(qubits)} qubit(s) were given"
            )
        self._operations.append(Operation(name=name, qubits=qubits, params=params))
        return self

    def add_unitary(self, matrix: np.ndarray, qubits, label="U") -> "QuantumCircuit":
        """Append an explicit unitary matrix acting on ``qubits``."""
        qubits = self._check_qubits(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (2 ** len(qubits),) * 2:
            raise CircuitError(
                f"unitary shape {matrix.shape} does not fit {len(qubits)} qubit(s)"
            )
        self._operations.append(
            Operation(name="unitary", qubits=qubits, matrix=matrix, label=label)
        )
        return self

    # -- fluent gate helpers ---------------------------------------------------

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.add_gate("h", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.add_gate("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.add_gate("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.add_gate("z", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.add_gate("s", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self.add_gate("t", (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """X rotation."""
        return self.add_gate("rx", (qubit,), (theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Y rotation."""
        return self.add_gate("ry", (qubit,), (theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Z rotation."""
        return self.add_gate("rz", (qubit,), (theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate diag(1, e^{iλ})."""
        return self.add_gate("p", (qubit,), (lam,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP two qubits."""
        return self.add_gate("swap", (a, b))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT)."""
        return self.add_unitary(gates.controlled(gates.X), (control, target), "cx")

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.add_unitary(gates.controlled(gates.Z), (control, target), "cz")

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase gate."""
        return self.add_unitary(
            gates.controlled(gates.phase(lam)), (control, target), f"cp({lam:.3g})"
        )

    def cu(self, matrix: np.ndarray, control: int, targets, label="cU"):
        """Controlled application of an arbitrary unitary ``matrix``."""
        targets = tuple(targets)
        return self.add_unitary(
            gates.controlled(np.asarray(matrix, dtype=complex)),
            (control, *targets),
            label,
        )

    # -- circuit algebra -------------------------------------------------------

    def compose(self, other: "QuantumCircuit", qubits=None) -> "QuantumCircuit":
        """Append ``other``'s operations, optionally remapped onto ``qubits``.

        ``qubits[i]`` receives what ``other`` applied to its qubit ``i``.
        """
        if qubits is None:
            if other.num_qubits != self.num_qubits:
                raise CircuitError(
                    "compose without a qubit map requires equal register sizes"
                )
            mapping = tuple(range(self.num_qubits))
        else:
            mapping = self._check_qubits(qubits)
            if len(mapping) != other.num_qubits:
                raise CircuitError(
                    f"qubit map has {len(mapping)} entries for a "
                    f"{other.num_qubits}-qubit circuit"
                )
        for op in other.operations:
            remapped = tuple(mapping[q] for q in op.qubits)
            self._operations.append(
                Operation(
                    name=op.name,
                    qubits=remapped,
                    params=op.params,
                    matrix=op.matrix,
                    label=op.label,
                )
            )
        return self

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (reversed order, each gate inverted)."""
        inv = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for op in reversed(self._operations):
            inv.append(op.inverse())
        return inv

    def controlled(self, label: str | None = None) -> "QuantumCircuit":
        """A new circuit with one extra control qubit (index 0) gating all ops.

        Every operation becomes its singly-controlled version; the original
        qubits shift up by one.
        """
        ctrl = QuantumCircuit(self.num_qubits + 1, name=label or f"c-{self.name}")
        for op in self._operations:
            matrix = gates.controlled(op.resolve_matrix())
            shifted = (0, *(q + 1 for q in op.qubits))
            ctrl.add_unitary(matrix, shifted, label=f"c-{op.label or op.name}")
        return ctrl

    def power(self, exponent: int) -> "QuantumCircuit":
        """Repeat this circuit ``exponent`` times (exponent >= 0)."""
        if exponent < 0:
            raise CircuitError("use inverse() for negative powers")
        powered = QuantumCircuit(self.num_qubits, name=f"{self.name}^{exponent}")
        for _ in range(exponent):
            powered.compose(self)
        return powered

    # -- evaluation --------------------------------------------------------

    def run(self, state: Statevector | None = None) -> Statevector:
        """Apply the circuit to ``state`` (default ``|0...0>``); returns new state."""
        if state is None:
            state = Statevector(self.num_qubits)
        else:
            if state.num_qubits != self.num_qubits:
                raise CircuitError(
                    f"state has {state.num_qubits} qubits, circuit needs "
                    f"{self.num_qubits}"
                )
            state = state.copy()
        for op in self._operations:
            state.apply_gate(op.resolve_matrix(), op.qubits)
        return state

    def statevector(self) -> Statevector:
        """The state this circuit prepares from ``|0...0>``."""
        return self.run()

    def to_matrix(self) -> np.ndarray:
        """The full 2^m x 2^m unitary of the circuit (exponential in m)."""
        dim = 2**self.num_qubits
        result = np.eye(dim, dtype=complex)
        state = Statevector(self.num_qubits)
        for column in range(dim):
            amplitudes = np.zeros(dim, dtype=complex)
            amplitudes[column] = 1.0
            state._amplitudes = amplitudes
            out = state.copy()
            for op in self._operations:
                out.apply_gate(op.resolve_matrix(), op.qubits)
            result[:, column] = out._amplitudes
        return result

    def gate_counts(self) -> dict[str, int]:
        """Histogram of operation names (raw unitaries keyed by label)."""
        counts: dict[str, int] = {}
        for op in self._operations:
            key = op.label or op.name
            counts[key] = counts.get(key, 0) + 1
        return counts

    def draw(self) -> str:
        """A plain-text one-op-per-line rendering of the circuit."""
        lines = [f"{self.name} ({self.num_qubits} qubits, {len(self)} ops)"]
        for i, op in enumerate(self._operations):
            tag = op.label or op.name
            params = f" params={op.params}" if op.params else ""
            lines.append(f"  {i:4d}: {tag:<16} q={list(op.qubits)}{params}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"ops={len(self)})"
        )
