"""Amplitude encoding: preparing |x> = Σ_j x_j |j> / ||x|| as a circuit.

Implements the Möttönen-style recursive construction from uniformly
controlled Y-rotations (magnitudes) followed by controlled phase rotations
(complex arguments).  For the simulator we realise each uniformly controlled
rotation as an explicit block-diagonal unitary — the gate count bookkeeping
for resource estimation still follows the decomposed counts (2^m − 1
rotations per layer), reported by :func:`state_prep_resources`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError
from repro.quantum.circuit import QuantumCircuit
from repro.utils.linalg import next_power_of_two


def pad_to_power_of_two(vector: np.ndarray) -> np.ndarray:
    """Zero-pad a vector to the next power-of-two length (copies)."""
    vector = np.asarray(vector, dtype=complex).ravel()
    if vector.size == 0:
        raise EncodingError("cannot encode an empty vector")
    target = next_power_of_two(max(vector.size, 2))
    padded = np.zeros(target, dtype=complex)
    padded[: vector.size] = vector
    return padded


def amplitude_encode(vector: np.ndarray) -> np.ndarray:
    """Normalize (and pad) a classical vector into a statevector array."""
    padded = pad_to_power_of_two(vector)
    norm = np.linalg.norm(padded)
    if norm < 1e-14:
        raise EncodingError("cannot encode the zero vector")
    return padded / norm


def _rotation_tree_angles(magnitudes: np.ndarray) -> list[np.ndarray]:
    """Y-rotation angles for each level of the binary amplitude tree.

    Level l holds 2^l angles; angle θ splits the probability mass of a node
    between its two children via cos(θ/2), sin(θ/2).
    """
    probs = magnitudes**2
    levels: list[np.ndarray] = []
    current = probs
    stack: list[np.ndarray] = []
    while current.size > 1:
        pairs = current.reshape(-1, 2)
        parents = pairs.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(
                parents > 0, pairs[:, 1] / np.where(parents > 0, parents, 1), 0.0
            )
        angles = 2.0 * np.arcsin(np.sqrt(np.clip(ratio, 0.0, 1.0)))
        stack.append(angles)
        current = parents
    for angles in reversed(stack):
        levels.append(angles)
    return levels


def state_preparation_circuit(vector: np.ndarray) -> QuantumCircuit:
    """A circuit mapping |0...0> to the amplitude encoding of ``vector``.

    Parameters
    ----------
    vector:
        Real or complex vector; it is padded to a power of two and
        normalized.

    Returns
    -------
    QuantumCircuit on ``log2(len(padded))`` qubits.

    Notes
    -----
    Uniformly controlled rotations are emitted as explicit block-diagonal
    unitaries on the qubit prefix, one per tree level, plus one diagonal
    phase layer.  ``circuit.statevector()`` reproduces the encoding to
    machine precision (property-tested).
    """
    amplitudes = amplitude_encode(vector)
    num_qubits = amplitudes.size.bit_length() - 1
    qc = QuantumCircuit(num_qubits, name="amplitude_encode")
    magnitudes = np.abs(amplitudes)
    levels = _rotation_tree_angles(magnitudes)
    for level, angles in enumerate(levels):
        # Uniformly controlled RY on qubit ``level`` controlled by qubits
        # 0..level-1: block-diagonal matrix with one RY block per control
        # pattern.
        blocks = []
        for theta in angles:
            c, s = np.cos(theta / 2), np.sin(theta / 2)
            blocks.append(np.array([[c, -s], [s, c]], dtype=complex))
        dim = 2 ** (level + 1)
        ucry = np.zeros((dim, dim), dtype=complex)
        for i, block in enumerate(blocks):
            ucry[2 * i : 2 * i + 2, 2 * i : 2 * i + 2] = block
        qc.add_unitary(ucry, tuple(range(level + 1)), label=f"ucry[{level}]")
    phases = np.angle(amplitudes)
    if np.any(np.abs(phases) > 1e-12):
        qc.add_unitary(
            np.diag(np.exp(1j * phases)), tuple(range(num_qubits)), label="phase_layer"
        )
    return qc


def state_prep_resources(dimension: int) -> dict[str, int]:
    """Decomposed gate counts for amplitude encoding a ``dimension`` vector.

    Following Möttönen et al.: 2^m − 1 multiplexed RY rotations for the
    magnitude tree, each costing 2^l CNOTs + 2^l RYs at level l, plus one
    final diagonal phase layer of at most 2^m − 1 RZ rotations.
    """
    dim = next_power_of_two(max(int(dimension), 2))
    num_qubits = dim.bit_length() - 1
    cnots = sum(2**level for level in range(1, num_qubits))
    rotations = sum(2**level for level in range(num_qubits)) + (dim - 1)
    return {
        "qubits": num_qubits,
        "cnot": cnots,
        "rotation": rotations,
        "depth_estimate": 2 * dim,
    }
