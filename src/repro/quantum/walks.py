"""Continuous-time quantum walks on mixed graphs (chiral walks).

A continuous-time quantum walk evolves node amplitudes under U(t) =
exp(−iHt).  A classical symmetric adjacency gives time-reversal-symmetric
transport; the *Hermitian* adjacency of a mixed graph breaks that symmetry
— the complex arc phases bias transport along arc directions ("chiral
quantum walks", Zimborás et al. 2013).  This is the same mathematical fact
the clustering paper exploits (direction lives in phases a Hamiltonian can
carry), demonstrated dynamically.

Used by the ``flow_clustering`` narrative and exercised as a library
feature with its own tests; :func:`directional_transport_bias` gives the
scalar the chirality demo quotes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.hermitian import DEFAULT_THETA, hermitian_adjacency
from repro.graphs.mixed_graph import MixedGraph
from repro.quantum.hamiltonian import SpectralDecomposition


class QuantumWalk:
    """Continuous-time quantum walk driven by the Hermitian adjacency.

    Parameters
    ----------
    graph:
        The mixed graph to walk on.
    theta:
        Arc phase; θ = π/2 maximizes chirality, θ → 0 restores the
        symmetric walk.
    use_laplacian:
        Drive with L = D − H instead of H (both are common conventions;
        transport bias appears either way).
    """

    def __init__(
        self,
        graph: MixedGraph,
        theta: float = DEFAULT_THETA,
        use_laplacian: bool = False,
    ):
        self.graph = graph
        self.theta = float(theta)
        adjacency = hermitian_adjacency(graph, theta)
        if use_laplacian:
            hamiltonian = np.diag(graph.degrees()).astype(complex) - adjacency
        else:
            hamiltonian = adjacency
        self._decomposition = SpectralDecomposition.of(hamiltonian)
        self.num_nodes = graph.num_nodes

    def evolve(self, initial: np.ndarray, time: float) -> np.ndarray:
        """Amplitudes after walking for ``time`` from ``initial``."""
        initial = np.asarray(initial, dtype=complex).ravel()
        if initial.size != self.num_nodes:
            raise GraphError(
                f"initial state has {initial.size} amplitudes for "
                f"{self.num_nodes} nodes"
            )
        norm = np.linalg.norm(initial)
        if norm < 1e-14:
            raise GraphError("initial state has zero norm")
        unitary = self._decomposition.evolution(-time)  # exp(-iHt)
        return unitary @ (initial / norm)

    def transport_probability(self, source: int, target: int, time: float) -> float:
        """|<target| e^{−iHt} |source>|²."""
        if not (0 <= source < self.num_nodes and 0 <= target < self.num_nodes):
            raise GraphError("source/target out of range")
        initial = np.zeros(self.num_nodes)
        initial[source] = 1.0
        final = self.evolve(initial, time)
        return float(abs(final[target]) ** 2)

    def probability_profile(self, source: int, time: float) -> np.ndarray:
        """Occupation probabilities over all nodes at ``time``."""
        initial = np.zeros(self.num_nodes)
        initial[source] = 1.0
        return np.abs(self.evolve(initial, time)) ** 2

    def mixing_profile(self, source: int, times) -> np.ndarray:
        """Stacked probability profiles for a time grid (rows = times)."""
        return np.vstack([self.probability_profile(source, float(t)) for t in times])


def directional_transport_bias(
    graph: MixedGraph,
    source: int,
    forward: int,
    backward: int,
    time: float,
    theta: float = DEFAULT_THETA,
) -> float:
    """P(source→forward) − P(source→backward) at one walk time.

    Chirality is a *gauge-flux* effect: on a directed n-cycle the bias is
    non-zero exactly when the accumulated phase n·θ ∉ {0, π} (mod 2π) —
    e.g. strongly non-zero for n = 3 at θ = π/2, and identically zero for
    n = 4 or 8 where the flux cancels.  Undirected graphs are always
    unbiased by time-reversal symmetry.  (All three regimes are
    property-tested.)  The sign depends on the e^{−iHt} / +i-phase
    conventions; the physically meaningful statement is |bias| > 0.
    """
    walk = QuantumWalk(graph, theta=theta)
    return walk.transport_probability(
        source, forward, time
    ) - walk.transport_probability(source, backward, time)


def directed_cycle(num_nodes: int) -> MixedGraph:
    """A directed n-cycle 0 → 1 → ... → n−1 → 0 (chirality test fixture)."""
    if num_nodes < 3:
        raise GraphError("a directed cycle needs at least 3 nodes")
    graph = MixedGraph(num_nodes)
    for node in range(num_nodes):
        graph.add_arc(node, (node + 1) % num_nodes)
    return graph
