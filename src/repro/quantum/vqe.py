"""Variational quantum eigensolver (VQE) for Laplacian ground states.

QPE needs deep coherent circuits; the NISQ-era alternative the paper's
outlook discusses is variational: a shallow parameterized ansatz is
optimized to minimize <ψ(θ)|𝓛|ψ(θ)>, whose minimum is the lowest
Laplacian eigenvector.  With *deflation* (penalizing overlap with already-
found states, "variational quantum deflation", Higgott et al. 2019) the k
lowest eigenvectors emerge one by one — an alternative front end for the
clustering pipeline at circuit depths NISQ devices can run.

The ansatz is the standard hardware-efficient layout: layers of per-qubit
RY/RZ rotations separated by a linear CNOT entangling chain.  Gradients
use the parameter-shift rule (exact for these generators), and the
optimizer is plain Adam.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError
from repro.quantum.circuit import QuantumCircuit
from repro.utils.linalg import is_hermitian
from repro.utils.rng import ensure_rng


def hardware_efficient_ansatz(
    num_qubits: int, parameters: np.ndarray, layers: int
) -> QuantumCircuit:
    """Build the ansatz circuit for a parameter vector.

    Each layer holds 2·m angles (RY then RZ per qubit) followed by a CNOT
    chain; a final rotation layer closes the circuit.  Total parameter
    count: 2·m·(layers + 1).
    """
    expected = 2 * num_qubits * (layers + 1)
    parameters = np.asarray(parameters, dtype=float).ravel()
    if parameters.size != expected:
        raise ConvergenceError(
            f"ansatz needs {expected} parameters, got {parameters.size}"
        )
    qc = QuantumCircuit(num_qubits, name=f"hea{layers}")
    index = 0
    for layer in range(layers + 1):
        for qubit in range(num_qubits):
            qc.ry(parameters[index], qubit)
            qc.rz(parameters[index + 1], qubit)
            index += 2
        if layer < layers:
            for qubit in range(num_qubits - 1):
                qc.cx(qubit, qubit + 1)
    return qc


def ansatz_state(num_qubits: int, parameters: np.ndarray, layers: int):
    """The statevector |ψ(θ)> the ansatz prepares."""
    return hardware_efficient_ansatz(
        num_qubits, parameters, layers
    ).statevector().amplitudes


@dataclass(frozen=True)
class VQEResult:
    """Converged variational eigenpair(s).

    Attributes
    ----------
    eigenvalues:
        Variational eigenvalue estimates, ascending, length k.
    eigenvectors:
        Column-stacked variational states.
    energy_history:
        Objective trajectory of the *last* deflation stage (diagnostics).
    iterations:
        Total optimizer steps across stages.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    energy_history: np.ndarray
    iterations: int


class VQESolver:
    """Variational solver for the k lowest eigenpairs of a Hermitian matrix.

    Parameters
    ----------
    layers:
        Entangling layers of the hardware-efficient ansatz.
    max_iterations:
        Adam steps per deflation stage.
    learning_rate:
        Adam step size.
    deflation_weight:
        Penalty β multiplying overlaps with previously found states; must
        exceed the spectral spread for correct ordering (auto-scaled from
        the matrix norm when left at ``None``).
    tolerance:
        Early-stop threshold on the energy improvement over a 25-step
        window.
    seed:
        Parameter-initialization seed.
    """

    def __init__(
        self,
        layers: int = 3,
        max_iterations: int = 400,
        learning_rate: float = 0.1,
        deflation_weight: float | None = None,
        tolerance: float = 1e-7,
        seed=None,
    ):
        if layers < 1 or max_iterations < 1:
            raise ConvergenceError("layers and max_iterations must be >= 1")
        self.layers = layers
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.deflation_weight = deflation_weight
        self.tolerance = tolerance
        self.seed = seed

    # -- objective ---------------------------------------------------------

    def _energy(self, matrix, parameters, num_qubits, found):
        state = ansatz_state(num_qubits, parameters, self.layers)
        energy = float(np.real(state.conj() @ matrix @ state))
        penalty = 0.0
        for vector, beta in found:
            penalty += beta * float(abs(np.vdot(vector, state)) ** 2)
        return energy + penalty

    def _gradient(self, matrix, parameters, num_qubits, found):
        """Parameter-shift gradient (exact for RY/RZ generators)."""
        gradient = np.zeros_like(parameters)
        shift = np.pi / 2
        for i in range(parameters.size):
            plus = parameters.copy()
            plus[i] += shift
            minus = parameters.copy()
            minus[i] -= shift
            gradient[i] = 0.5 * (
                self._energy(matrix, plus, num_qubits, found)
                - self._energy(matrix, minus, num_qubits, found)
            )
        return gradient

    # -- driver --------------------------------------------------------------

    def solve(self, matrix: np.ndarray, k: int = 1) -> VQEResult:
        """Find the k lowest eigenpairs by deflated VQE."""
        matrix = np.asarray(matrix, dtype=complex)
        if not is_hermitian(matrix, atol=1e-8):
            raise ConvergenceError("VQE requires a Hermitian matrix")
        dim = matrix.shape[0]
        if dim & (dim - 1):
            raise ConvergenceError("dimension must be a power of two")
        num_qubits = dim.bit_length() - 1
        if not 1 <= k <= dim:
            raise ConvergenceError(f"k must be in [1, {dim}], got {k}")
        rng = ensure_rng(self.seed)
        spread = float(np.linalg.norm(matrix, ord=2))
        beta = (
            self.deflation_weight
            if self.deflation_weight is not None
            else 4.0 * max(spread, 1.0)
        )
        found: list[tuple[np.ndarray, float]] = []
        eigenvalues = []
        vectors = []
        history = np.array([])
        total_steps = 0
        num_parameters = 2 * num_qubits * (self.layers + 1)
        for _ in range(k):
            parameters = rng.uniform(-np.pi, np.pi, num_parameters)
            moment1 = np.zeros(num_parameters)
            moment2 = np.zeros(num_parameters)
            stage_history = []
            best_energy = np.inf
            best_parameters = parameters.copy()
            for step in range(1, self.max_iterations + 1):
                total_steps += 1
                gradient = self._gradient(matrix, parameters, num_qubits, found)
                moment1 = 0.9 * moment1 + 0.1 * gradient
                moment2 = 0.999 * moment2 + 0.001 * gradient**2
                m_hat = moment1 / (1 - 0.9**step)
                v_hat = moment2 / (1 - 0.999**step)
                parameters = parameters - self.learning_rate * m_hat / (
                    np.sqrt(v_hat) + 1e-8
                )
                energy = self._energy(matrix, parameters, num_qubits, found)
                stage_history.append(energy)
                if energy < best_energy:
                    best_energy = energy
                    best_parameters = parameters.copy()
                if step > 25 and abs(stage_history[-25] - energy) < self.tolerance:
                    break
            state = ansatz_state(num_qubits, best_parameters, self.layers)
            value = float(np.real(state.conj() @ matrix @ state))
            eigenvalues.append(value)
            vectors.append(state)
            found.append((state, beta))
            history = np.asarray(stage_history)
        order = np.argsort(eigenvalues)
        return VQEResult(
            eigenvalues=np.array(eigenvalues)[order],
            eigenvectors=np.column_stack([vectors[i] for i in order]),
            energy_history=history,
            iterations=total_steps,
        )
