"""Quantum phase estimation (QPE).

Provides both:

* :func:`qpe_circuit` — the textbook circuit (Hadamard fan-out, controlled
  powers of U, inverse QFT) executed on the statevector simulator, and
* :func:`qpe_outcome_distribution` — the exact closed-form ancilla outcome
  distribution for a single eigenphase,

      Pr[y | φ] = sin²(2^p π Δ_y) / (4^p sin²(π Δ_y)),  Δ_y = φ − y/2^p,

  which the scalable ``analytic`` backend samples directly (see DESIGN.md,
  substitution table).  Property tests assert the two agree.
* :func:`qpe_outcome_distributions` — the batched form: the full
  (phases × outcomes) response matrix in one broadcast pass, which is how
  the analytic backend's kernel cache builds its entries; the scalar
  function is a batch of one and bit-identical to its batched row.

Register layout of the circuit: ancilla (counting) qubits are 0..p−1 with
qubit 0 the most significant readout bit; system qubits follow at p..p+m−1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CircuitError
from repro.linalg.array_backend import dispatched_outcome_distributions
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.library import inverse_qft_circuit
from repro.quantum.statevector import Statevector


def controlled_power_unitaries(unitary: np.ndarray, precision: int) -> list:
    """Pre-compute U^(2^j) for j = 0..p−1 by repeated squaring."""
    unitary = np.asarray(unitary, dtype=complex)
    powers = [unitary]
    for _ in range(precision - 1):
        powers.append(powers[-1] @ powers[-1])
    return powers


def qpe_circuit(
    unitary: np.ndarray,
    precision: int,
    state_prep: QuantumCircuit | None = None,
) -> QuantumCircuit:
    """Build the QPE circuit for ``unitary`` with ``precision`` ancilla bits.

    Parameters
    ----------
    unitary:
        2^m x 2^m unitary whose eigenphases are estimated.
    precision:
        Number of ancilla (readout) qubits p.
    state_prep:
        Optional m-qubit circuit preparing the system register; composed at
        the front so ``qpe_circuit(...).run()`` is self-contained.

    Returns
    -------
    QuantumCircuit on p + m qubits.  Measuring qubits 0..p−1 (big-endian)
    yields y with y/2^p ≈ eigenphase of the system component.
    """
    unitary = np.asarray(unitary, dtype=complex)
    dim = unitary.shape[0]
    if dim < 2 or dim & (dim - 1):
        raise CircuitError(f"unitary dimension {dim} is not a power of two")
    if precision < 1:
        raise CircuitError(f"precision must be >= 1, got {precision}")
    num_system = dim.bit_length() - 1
    total = precision + num_system
    qc = QuantumCircuit(total, name=f"qpe(p={precision}, m={num_system})")
    system_qubits = tuple(range(precision, total))
    if state_prep is not None:
        if state_prep.num_qubits != num_system:
            raise CircuitError(
                f"state_prep acts on {state_prep.num_qubits} qubits, "
                f"system register has {num_system}"
            )
        qc.compose(state_prep, qubits=system_qubits)
    for ancilla in range(precision):
        qc.h(ancilla)
    powers = controlled_power_unitaries(unitary, precision)
    for ancilla in range(precision):
        # Ancilla 0 is the most significant readout bit and therefore
        # controls the largest power U^(2^{p-1}).
        exponent_index = precision - 1 - ancilla
        qc.cu(
            powers[exponent_index],
            ancilla,
            system_qubits,
            label=f"c-U^{2**exponent_index}",
        )
    qc.compose(inverse_qft_circuit(precision), qubits=tuple(range(precision)))
    return qc


def qpe_outcome_distribution(phase: float, precision: int) -> np.ndarray:
    """Exact QPE readout distribution for one eigenphase.

    Parameters
    ----------
    phase:
        Eigenphase φ ∈ [0, 1) with U|u> = e^{2πiφ}|u>.
    precision:
        Ancilla bits p.

    Returns
    -------
    Length-2^p probability vector over readouts y.

    Notes
    -----
    A batch of one: :func:`qpe_outcome_distributions` computes the same
    closed form for a whole spectrum at once, and every arithmetic step is
    elementwise, so this row is bit-identical whether computed alone or as
    part of a batch (pinned in ``tests/quantum``).
    """
    return qpe_outcome_distributions([phase], precision)[0]


def qpe_outcome_distributions(phases, precision: int) -> np.ndarray:
    """Exact QPE readout distributions for many eigenphases in one pass.

    Parameters
    ----------
    phases:
        Array-like of eigenphases φ_j ∈ [0, 1) (values outside wrap mod 1).
    precision:
        Ancilla bits p.

    Returns
    -------
    ``(len(phases), 2^p)`` matrix whose row ``j`` is the Dirichlet-kernel
    readout distribution of phase ``j`` — the full (eigenvalues × outcomes)
    QPE response matrix the analytic backend's kernel cache stores.  The
    whole matrix is built by broadcast arithmetic; there is no per-phase
    Python loop.
    """
    if precision < 1:
        raise CircuitError(f"precision must be >= 1, got {precision}")
    size = 2**precision
    phases = np.atleast_1d(np.asarray(phases, dtype=float)) % 1.0
    if phases.ndim != 1:
        raise CircuitError(
            f"phases must be a scalar or 1-D array, got shape {phases.shape}"
        )
    dispatched = dispatched_outcome_distributions(phases, precision)
    if dispatched is not None:
        return dispatched
    y = np.arange(size)
    delta = phases[:, None] - y / size
    sin_delta = np.sin(np.pi * delta)
    numerator = np.sin(np.pi * size * delta) ** 2
    denominator = (size * sin_delta) ** 2
    near_zero = np.isclose(sin_delta, 0.0, atol=1e-12)
    # limit of the Dirichlet kernel at Δ → integer is exactly 1; the
    # denominator is patched before dividing only to avoid the 0/0 warning
    probs = np.where(near_zero, 1.0, numerator / np.where(near_zero, 1.0, denominator))
    totals = probs.sum(axis=1)
    off = ~np.isclose(totals, 1.0, atol=1e-8)
    if off.any():
        probs[off] = probs[off] / totals[off, None]
    return probs


@dataclass(frozen=True)
class QPEResult:
    """Joint readout of a QPE execution over an arbitrary input state.

    Attributes
    ----------
    precision:
        Ancilla bits p.
    outcome_probabilities:
        Length-2^p marginal distribution of the ancilla register.
    conditional_states:
        Mapping readout y -> normalized system statevector conditioned on
        reading y (only outcomes with non-negligible probability appear).
    """

    precision: int
    outcome_probabilities: np.ndarray
    conditional_states: dict

    def phase_estimate(self, outcome: int) -> float:
        """Convert a readout integer to an eigenphase estimate y / 2^p."""
        return outcome / 2**self.precision


def run_qpe(
    unitary: np.ndarray,
    precision: int,
    input_state: np.ndarray,
    min_probability: float = 1e-12,
) -> QPEResult:
    """Execute QPE on ``input_state`` and return exact joint statistics.

    The final statevector is reshaped into (ancilla, system) blocks; the
    ancilla marginal and each conditional system state are computed exactly,
    with no sampling — sampling is layered on top by the caller.
    """
    unitary = np.asarray(unitary, dtype=complex)
    dim = unitary.shape[0]
    input_state = np.asarray(input_state, dtype=complex).ravel()
    if input_state.size != dim:
        raise CircuitError(
            f"input state has dimension {input_state.size}, unitary needs {dim}"
        )
    norm = np.linalg.norm(input_state)
    if norm < 1e-12:
        raise CircuitError("input state has zero norm")
    num_system = dim.bit_length() - 1
    qc = qpe_circuit(unitary, precision)
    total_dim = 2 ** (precision + num_system)
    joint = np.zeros(total_dim, dtype=complex)
    # Ancillas are the most significant qubits, so |0...0>_anc ⊗ |ψ>_sys
    # occupies the first 2^m amplitudes.
    joint[:dim] = input_state / norm
    final = qc.run(Statevector(joint))
    table = final.amplitudes.reshape(2**precision, dim)
    outcome_probabilities = (np.abs(table) ** 2).sum(axis=1)
    conditional_states = {}
    for outcome, probability in enumerate(outcome_probabilities):
        if probability > min_probability:
            conditional_states[outcome] = table[outcome] / np.sqrt(probability)
    return QPEResult(
        precision=precision,
        outcome_probabilities=outcome_probabilities,
        conditional_states=conditional_states,
    )
