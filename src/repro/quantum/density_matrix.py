"""Density-matrix simulation: exact mixed-state evolution and noise.

The Monte-Carlo trajectory sampler in ``repro.quantum.noise`` converges to
the true channel only in expectation; this module evolves the 4^m-entry
density matrix exactly, which both (a) validates the trajectory sampler in
tests and (b) lets the noise ablation quote exact readout distributions at
small sizes.

Channels are represented by Kraus operator lists {K_i} with
Σ K_i† K_i = I, applied as ρ → Σ K_i ρ K_i†.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError, QubitError
from repro.quantum import gates
from repro.utils.linalg import is_hermitian


class DensityMatrix:
    """A mixed state on ``num_qubits`` qubits.

    Parameters
    ----------
    data:
        An integer qubit count (state initialised to |0...0><0...0|), a
        statevector (pure-state promotion), or a full density matrix.
    """

    def __init__(self, data):
        if isinstance(data, (int, np.integer)):
            if data < 1:
                raise CircuitError(f"need at least one qubit, got {data}")
            dim = 2 ** int(data)
            self._matrix = np.zeros((dim, dim), dtype=complex)
            self._matrix[0, 0] = 1.0
            self._num_qubits = int(data)
            return
        array = np.asarray(data, dtype=complex)
        if array.ndim == 1:
            norm = np.linalg.norm(array)
            if norm < 1e-12:
                raise CircuitError("cannot promote the zero vector")
            pure = array / norm
            array = np.outer(pure, pure.conj())
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise CircuitError("density matrix must be square")
        dim = array.shape[0]
        if dim < 2 or dim & (dim - 1):
            raise CircuitError(f"dimension {dim} is not a power of two")
        trace = np.trace(array).real
        if abs(trace - 1.0) > 1e-6:
            raise CircuitError(f"density matrix has trace {trace:.4g}, expected 1")
        if not is_hermitian(array, atol=1e-8):
            raise CircuitError("density matrix must be Hermitian")
        self._matrix = array.copy()
        self._num_qubits = dim.bit_length() - 1

    # -- accessors -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Register width."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the density matrix."""
        return self._matrix.copy()

    def trace(self) -> float:
        """Tr ρ (1 within tolerance for valid states)."""
        return float(np.trace(self._matrix).real)

    def purity(self) -> float:
        """Tr ρ² — 1 for pure states, 1/2^m for the maximally mixed state."""
        return float(np.trace(self._matrix @ self._matrix).real)

    def probabilities(self) -> np.ndarray:
        """Computational-basis measurement distribution (the diagonal)."""
        return np.clip(np.diag(self._matrix).real, 0.0, None)

    def expectation(self, observable: np.ndarray) -> float:
        """Tr(ρ O) for a Hermitian observable."""
        observable = np.asarray(observable, dtype=complex)
        if observable.shape != self._matrix.shape:
            raise CircuitError("observable dimension mismatch")
        return float(np.trace(self._matrix @ observable).real)

    def fidelity_with_pure(self, statevector: np.ndarray) -> float:
        """<ψ|ρ|ψ> against a pure reference state."""
        psi = np.asarray(statevector, dtype=complex).ravel()
        if psi.size != self.dim:
            raise CircuitError("statevector dimension mismatch")
        psi = psi / np.linalg.norm(psi)
        return float(np.real(psi.conj() @ self._matrix @ psi))

    # -- evolution -----------------------------------------------------------

    def _embed(self, operator: np.ndarray, qubits) -> np.ndarray:
        """Lift a k-qubit operator to the full register (big-endian)."""
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not 0 <= q < self._num_qubits:
                raise QubitError(f"qubit {q} out of range")
        if len(set(qubits)) != len(qubits):
            raise QubitError(f"duplicate qubits in {qubits}")
        k = len(qubits)
        if operator.shape != (2**k, 2**k):
            raise CircuitError(f"operator on {k} qubit(s) must be {2**k}x{2**k}")
        m = self._num_qubits
        full = np.zeros((self.dim, self.dim), dtype=complex)
        # Build by permuting a kron product: operator ⊗ I, then reorder axes.
        rest = [q for q in range(m) if q not in qubits]
        order = list(qubits) + rest
        kron = np.kron(operator, np.eye(2 ** (m - k)))
        tensor = kron.reshape((2,) * (2 * m))
        # axes 0..m-1 are output in `order` ordering; move to natural order
        inverse = np.argsort(order)
        tensor = np.transpose(tensor, axes=list(inverse) + [m + i for i in inverse])
        full = tensor.reshape(self.dim, self.dim)
        return full

    def apply_unitary(self, unitary: np.ndarray, qubits=None) -> None:
        """ρ → U ρ U† with ``unitary`` on ``qubits`` (or the full register)."""
        unitary = np.asarray(unitary, dtype=complex)
        if qubits is not None:
            unitary = self._embed(unitary, qubits)
        if unitary.shape != self._matrix.shape:
            raise CircuitError("unitary dimension mismatch")
        self._matrix = unitary @ self._matrix @ unitary.conj().T

    def apply_kraus(self, kraus_operators, qubits=None) -> None:
        """ρ → Σ K_i ρ K_i† (operators validated to be trace-preserving)."""
        operators = [np.asarray(k, dtype=complex) for k in kraus_operators]
        if not operators:
            raise CircuitError("empty Kraus operator list")
        dim = operators[0].shape[0]
        completeness = sum(k.conj().T @ k for k in operators)
        if not np.allclose(completeness, np.eye(dim), atol=1e-8):
            raise CircuitError("Kraus operators do not satisfy Σ K†K = I")
        if qubits is not None:
            operators = [self._embed(k, qubits) for k in operators]
        self._matrix = sum(k @ self._matrix @ k.conj().T for k in operators)

    def run_circuit(self, circuit) -> None:
        """Apply every operation of a ``QuantumCircuit`` (no noise)."""
        if circuit.num_qubits != self._num_qubits:
            raise CircuitError("circuit register size mismatch")
        for op in circuit.operations:
            self.apply_unitary(op.resolve_matrix(), op.qubits)

    def marginal_probabilities(self, qubits) -> np.ndarray:
        """Exact marginal readout distribution of the listed qubits."""
        qubits = tuple(int(q) for q in qubits)
        m = self._num_qubits
        probs = self.probabilities().reshape((2,) * m)
        drop = tuple(axis for axis in range(m) if axis not in qubits)
        marginal = probs.sum(axis=drop) if drop else probs
        if len(qubits) > 1:
            marginal = np.transpose(marginal, axes=np.argsort(np.argsort(qubits)))
        flat = marginal.ravel()
        return flat / flat.sum()


# -- standard channels --------------------------------------------------------


def depolarizing_kraus(rate: float) -> list[np.ndarray]:
    """Single-qubit depolarizing channel with error probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise CircuitError(f"rate must be in [0, 1], got {rate}")
    return [
        np.sqrt(1.0 - rate) * gates.I2,
        np.sqrt(rate / 3.0) * gates.X,
        np.sqrt(rate / 3.0) * gates.Y,
        np.sqrt(rate / 3.0) * gates.Z,
    ]


def bitflip_kraus(rate: float) -> list[np.ndarray]:
    """Single-qubit bit-flip channel."""
    if not 0.0 <= rate <= 1.0:
        raise CircuitError(f"rate must be in [0, 1], got {rate}")
    return [np.sqrt(1.0 - rate) * gates.I2, np.sqrt(rate) * gates.X]


def phase_damping_kraus(rate: float) -> list[np.ndarray]:
    """Single-qubit phase-damping (pure dephasing) channel."""
    if not 0.0 <= rate <= 1.0:
        raise CircuitError(f"rate must be in [0, 1], got {rate}")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - rate)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, np.sqrt(rate)]], dtype=complex)
    return [k0, k1]


def amplitude_damping_kraus(rate: float) -> list[np.ndarray]:
    """Single-qubit amplitude-damping (T1 relaxation) channel."""
    if not 0.0 <= rate <= 1.0:
        raise CircuitError(f"rate must be in [0, 1], got {rate}")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - rate)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(rate)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def noisy_circuit_density(circuit, depolarizing_rate: float) -> DensityMatrix:
    """Run a circuit with exact per-gate depolarizing noise on touched qubits.

    The exact counterpart of ``repro.quantum.noise.noisy_run`` — trajectory
    averages converge to this (validated in tests).
    """
    rho = DensityMatrix(circuit.num_qubits)
    kraus = depolarizing_kraus(depolarizing_rate)
    for op in circuit.operations:
        rho.apply_unitary(op.resolve_matrix(), op.qubits)
        if depolarizing_rate > 0:
            for qubit in op.qubits:
                rho.apply_kraus(kraus, [qubit])
    return rho
