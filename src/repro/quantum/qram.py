"""QRAM data-structure model (Kerenidis–Prakash binary trees).

Quantum machine-learning papers assume "quantum access" to classical data:
the ability to prepare |i>|x_i> or amplitude-encoded rows in polylog time.
The standard realization is the KP-tree: a binary tree over each vector
whose internal nodes store subtree probability masses, enabling a cascade
of controlled rotations (one per level) to prepare the amplitude encoding.

This module implements the classical data structure faithfully — build
cost, update cost, and the rotation-angle queries the quantum circuit
would make — and exposes the cost model used in runtime discussions.
Building it costs O(d log d) per vector; each *query* touches O(log d)
nodes, which is the claimed polylog data-access time.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError
from repro.utils.linalg import next_power_of_two


class KPTree:
    """Kerenidis–Prakash tree over one real or complex vector.

    Parameters
    ----------
    vector:
        The data vector; padded internally to a power-of-two length.

    Notes
    -----
    Level l of the tree has 2^l nodes; node (l, j) stores the probability
    mass of components [j·2^{m−l}, (j+1)·2^{m−l}).  Leaves additionally
    store the complex sign/phase of each component.
    """

    def __init__(self, vector):
        vector = np.asarray(vector, dtype=complex).ravel()
        if vector.size == 0:
            raise EncodingError("cannot index an empty vector")
        self._original_size = vector.size
        dim = next_power_of_two(max(vector.size, 2))
        padded = np.zeros(dim, dtype=complex)
        padded[: vector.size] = vector
        self._norm = float(np.linalg.norm(padded))
        if self._norm < 1e-14:
            raise EncodingError("cannot index the zero vector")
        self._depth = dim.bit_length() - 1
        self._phases = np.angle(padded)
        # levels[l] holds 2^l masses; levels[depth] are leaf masses
        self._levels: list[np.ndarray] = []
        masses = np.abs(padded) ** 2
        stack = [masses]
        current = masses
        while current.size > 1:
            current = current.reshape(-1, 2).sum(axis=1)
            stack.append(current)
        self._levels = list(reversed(stack))

    @property
    def depth(self) -> int:
        """Tree depth m = log2(padded dimension)."""
        return self._depth

    @property
    def dim(self) -> int:
        """Padded dimension."""
        return 2**self._depth

    @property
    def norm(self) -> float:
        """l2 norm of the indexed vector (stored at the root)."""
        return self._norm

    def node_mass(self, level: int, index: int) -> float:
        """Probability mass stored at tree node (level, index)."""
        if not 0 <= level <= self._depth:
            raise EncodingError(f"level {level} out of range")
        masses = self._levels[level]
        if not 0 <= index < masses.size:
            raise EncodingError(f"index {index} out of range at level {level}")
        return float(masses[index])

    def rotation_angle(self, level: int, index: int) -> float:
        """RY angle θ the state-prep circuit applies at node (level, index).

        cos²(θ/2) routes amplitude to the left child; the controlled-RY
        cascade over all levels prepares the amplitude encoding exactly
        (verified against ``state_preparation_circuit`` in tests).
        """
        if not 0 <= level < self._depth:
            raise EncodingError(f"internal level {level} out of range")
        parent = self.node_mass(level, index)
        if parent <= 0.0:
            return 0.0
        right = self.node_mass(level + 1, 2 * index + 1)
        ratio = np.clip(right / parent, 0.0, 1.0)
        return float(2.0 * np.arcsin(np.sqrt(ratio)))

    def leaf_phase(self, index: int) -> float:
        """Complex phase of component ``index`` (applied after the cascade)."""
        if not 0 <= index < self.dim:
            raise EncodingError(f"leaf {index} out of range")
        return float(self._phases[index])

    def amplitude_encoding(self) -> np.ndarray:
        """The state the rotation cascade prepares (for validation)."""
        amplitudes = np.sqrt(self._levels[self._depth]) * np.exp(1j * self._phases)
        return amplitudes / np.linalg.norm(amplitudes)

    def update(self, index: int, value: complex) -> int:
        """Point-update component ``index``; returns nodes touched (O(log d))."""
        if not 0 <= index < self._original_size:
            raise EncodingError(f"index {index} out of range")
        new_mass = abs(value) ** 2
        self._phases[index] = np.angle(value)
        delta = new_mass - self._levels[self._depth][index]
        touched = 0
        node = index
        for level in range(self._depth, -1, -1):
            self._levels[level][node] += delta
            node //= 2
            touched += 1
        self._norm = float(np.sqrt(max(self._levels[0][0], 0.0)))
        return touched

    def query_path(self, index: int) -> list[tuple[int, int]]:
        """The (level, node) path a quantum query traverses to leaf ``index``."""
        if not 0 <= index < self.dim:
            raise EncodingError(f"leaf {index} out of range")
        path = []
        for level in range(self._depth + 1):
            path.append((level, index >> (self._depth - level)))
        return path


class QRAM:
    """Row-addressable store of KP-trees for a data matrix.

    Models the "quantum access to a matrix" primitive: row norms are all
    available (Definition-1 style), and each row can be prepared by a
    O(log d)-depth rotation cascade.
    """

    def __init__(self, matrix):
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise EncodingError("QRAM requires a non-empty 2-D matrix")
        self._trees = [KPTree(row) for row in matrix]
        self._num_rows, self._num_cols = matrix.shape

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) of the stored matrix."""
        return (self._num_rows, self._num_cols)

    def row_tree(self, row: int) -> KPTree:
        """The KP-tree of one row."""
        if not 0 <= row < self._num_rows:
            raise EncodingError(f"row {row} out of range")
        return self._trees[row]

    def row_norms(self) -> np.ndarray:
        """All row norms (the second mapping of quantum access)."""
        return np.array([tree.norm for tree in self._trees])

    def build_cost(self) -> int:
        """Total classical preprocessing cost in node writes, O(n·d)."""
        return sum(2 * tree.dim - 1 for tree in self._trees)

    def query_cost(self) -> int:
        """Nodes touched per quantum row query — O(log d)."""
        return self._trees[0].depth + 1 if self._trees else 0
