"""Simple noise channels for the NISQ-robustness ablation (experiment A3).

Full density-matrix simulation would square the memory cost, so noise is
applied in the standard Monte-Carlo (quantum-trajectory) style directly on
statevectors: each channel draws a random Kraus branch per application.
Averaged over trajectories this reproduces the channel exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum import gates
from repro.quantum.statevector import Statevector
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class NoiseModel:
    """Gate and readout error rates.

    Attributes
    ----------
    depolarizing_rate:
        Per-gate probability of applying a uniformly random Pauli to each
        qubit the gate touched.
    readout_error:
        Per-bit probability of flipping a measured bit.
    """

    depolarizing_rate: float = 0.0
    readout_error: float = 0.0

    def __post_init__(self):
        for name in ("depolarizing_rate", "readout_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CircuitError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_noiseless(self) -> bool:
        """True when both error rates are zero."""
        return self.depolarizing_rate == 0.0 and self.readout_error == 0.0


_PAULIS = (gates.X, gates.Y, gates.Z)


def apply_depolarizing(
    state: Statevector, qubits, rate: float, rng: np.random.Generator
) -> None:
    """Monte-Carlo depolarizing noise on each listed qubit (in place)."""
    if rate <= 0.0:
        return
    for qubit in qubits:
        if rng.random() < rate:
            pauli = _PAULIS[rng.integers(3)]
            state.apply_gate(pauli, [qubit])


def noisy_run(circuit, noise: NoiseModel, seed=None) -> Statevector:
    """Run a circuit inserting depolarizing noise after every operation."""
    rng = ensure_rng(seed)
    state = Statevector(circuit.num_qubits)
    for op in circuit.operations:
        state.apply_gate(op.resolve_matrix(), op.qubits)
        apply_depolarizing(state, op.qubits, noise.depolarizing_rate, rng)
    return state


def flip_readout_bits(
    outcome: int, num_bits: int, error_rate: float, rng: np.random.Generator
) -> int:
    """Apply independent bit-flip readout errors to a measured integer."""
    if error_rate <= 0.0:
        return outcome
    flipped = outcome
    for bit in range(num_bits):
        if rng.random() < error_rate:
            flipped ^= 1 << bit
    return flipped


def noisy_sample_counts(
    circuit,
    shots: int,
    noise: NoiseModel,
    qubits=None,
    seed=None,
) -> dict[int, int]:
    """Sample measurement counts under gate and readout noise.

    Each shot runs its own noisy trajectory, so correlations between gate
    errors and outcomes are captured faithfully (at O(shots · circuit) cost —
    keep circuits small, which experiment A3 does).
    """
    if shots < 0:
        raise CircuitError(f"shots must be non-negative, got {shots}")
    rng = ensure_rng(seed)
    counts: dict[int, int] = {}
    measure_qubits = (
        list(range(circuit.num_qubits)) if qubits is None else list(qubits)
    )
    num_bits = len(measure_qubits)
    for _ in range(shots):
        state = noisy_run(circuit, noise, seed=rng)
        outcome, _ = state.measure_qubits(measure_qubits, seed=rng)
        outcome = flip_readout_bits(outcome, num_bits, noise.readout_error, rng)
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts
