"""From-scratch quantum-computing substrate.

Statevector simulation, a circuit IR, gate library, QFT, Pauli algebra,
Hamiltonian simulation, phase estimation, amplitude-encoding state
preparation, measurement/tomography models, swap tests, noise channels and
resource accounting — everything the mixed-graph quantum spectral
clustering pipeline needs, with no external quantum SDK.
"""

from repro.quantum.circuit import Operation, QuantumCircuit
from repro.quantum.statevector import (
    Statevector,
    basis_state,
    uniform_superposition,
)
from repro.quantum.library import (
    qft_circuit,
    inverse_qft_circuit,
    qft_matrix,
    hadamard_layer,
    basis_preparation,
)
from repro.quantum.pauli import (
    PauliTerm,
    pauli_matrix,
    pauli_decompose,
    pauli_reconstruct,
    all_pauli_labels,
)
from repro.quantum.hamiltonian import (
    SpectralDecomposition,
    exact_evolution,
    trotter_evolution,
    trotter_error,
)
from repro.quantum.phase_estimation import (
    QPEResult,
    qpe_circuit,
    qpe_outcome_distribution,
    qpe_outcome_distributions,
    run_qpe,
)
from repro.quantum.state_prep import (
    amplitude_encode,
    state_preparation_circuit,
    state_prep_resources,
)
from repro.quantum.measurement import (
    counts_to_probabilities,
    sample_distribution,
    tomography_estimate,
    tomography_estimate_batch,
    expectation_from_counts,
)
from repro.quantum.swap_test import (
    swap_test_circuit,
    estimate_overlap,
    estimate_distance_squared,
)
from repro.quantum.noise import NoiseModel, noisy_run, noisy_sample_counts
from repro.quantum.density_matrix import (
    DensityMatrix,
    amplitude_damping_kraus,
    bitflip_kraus,
    depolarizing_kraus,
    noisy_circuit_density,
    phase_damping_kraus,
)
from repro.quantum.amplitude import (
    amplitude_amplification,
    amplitude_estimation,
    amplification_schedule,
    grover_operator,
    mle_amplitude_estimation,
    success_probability,
)
from repro.quantum.transpile import (
    TranspileCounts,
    multi_controlled_counts,
    transpile_counts,
    two_level_decompose,
    unitary_counts,
)
from repro.quantum.qram import KPTree, QRAM
from repro.quantum.walks import (
    QuantumWalk,
    directed_cycle,
    directional_transport_bias,
)
from repro.quantum.vqe import (
    VQEResult,
    VQESolver,
    ansatz_state,
    hardware_efficient_ansatz,
)
from repro.quantum.resources import (
    QPEResources,
    qpe_resources,
    quantum_pipeline_step_count,
    classical_pipeline_step_count,
)

__all__ = [
    "Operation",
    "QuantumCircuit",
    "Statevector",
    "basis_state",
    "uniform_superposition",
    "qft_circuit",
    "inverse_qft_circuit",
    "qft_matrix",
    "hadamard_layer",
    "basis_preparation",
    "PauliTerm",
    "pauli_matrix",
    "pauli_decompose",
    "pauli_reconstruct",
    "all_pauli_labels",
    "SpectralDecomposition",
    "exact_evolution",
    "trotter_evolution",
    "trotter_error",
    "QPEResult",
    "qpe_circuit",
    "qpe_outcome_distribution",
    "qpe_outcome_distributions",
    "run_qpe",
    "amplitude_encode",
    "state_preparation_circuit",
    "state_prep_resources",
    "counts_to_probabilities",
    "sample_distribution",
    "tomography_estimate",
    "tomography_estimate_batch",
    "expectation_from_counts",
    "swap_test_circuit",
    "estimate_overlap",
    "estimate_distance_squared",
    "NoiseModel",
    "noisy_run",
    "noisy_sample_counts",
    "DensityMatrix",
    "amplitude_damping_kraus",
    "bitflip_kraus",
    "depolarizing_kraus",
    "noisy_circuit_density",
    "phase_damping_kraus",
    "amplitude_amplification",
    "amplitude_estimation",
    "amplification_schedule",
    "grover_operator",
    "mle_amplitude_estimation",
    "success_probability",
    "TranspileCounts",
    "multi_controlled_counts",
    "transpile_counts",
    "two_level_decompose",
    "unitary_counts",
    "KPTree",
    "QRAM",
    "QPEResources",
    "qpe_resources",
    "quantum_pipeline_step_count",
    "classical_pipeline_step_count",
    "VQEResult",
    "VQESolver",
    "ansatz_state",
    "hardware_efficient_ansatz",
    "QuantumWalk",
    "directed_cycle",
    "directional_transport_bias",
]
