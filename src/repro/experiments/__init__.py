"""Experiment harness: one module per reconstructed table/figure.

==========  =============================================================
Experiment  Module
==========  =============================================================
T1          ``repro.experiments.table1_msbm``
T2          ``repro.experiments.table2_netlist``
F1          ``repro.experiments.fig1_direction_sweep``
F2          ``repro.experiments.fig2_precision_sweep``
F3          ``repro.experiments.fig3_runtime_scaling``
F4          ``repro.experiments.fig4_shots_sweep``
A1–A6       ``repro.experiments.ablations``
==========  =============================================================

Every figure/table module declares its sweep as a
:class:`~repro.experiments.runner.SweepSpec` (the ``spec()`` factory) and
executes it through :class:`~repro.experiments.runner.SweepRunner` — the
unified engine providing process-parallel trials (``jobs``), the spectral
cache and uniform JSON artifacts (see ``docs/experiments.md``).  Each
module keeps ``run(...)`` (structured records, legacy-compatible seeds), a
renderer (``table``/``series``), and ``main()`` which prints the markdown
quoted in EXPERIMENTS.md.  The matching pytest-benchmark targets live in
``benchmarks/``; the CLI front end is ``python -m repro experiments``.
"""

from repro.experiments import (
    ablations,
    common,
    fig1_direction_sweep,
    fig2_precision_sweep,
    fig3_runtime_scaling,
    fig4_shots_sweep,
    runner,
    table1_msbm,
    table2_netlist,
)
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.experiments.runner import (
    SweepAxis,
    SweepRunner,
    SweepSpec,
    get_spec,
    registry,
    validate_artifact,
    write_artifact,
)

__all__ = [
    "ablations",
    "common",
    "fig1_direction_sweep",
    "fig2_precision_sweep",
    "fig3_runtime_scaling",
    "fig4_shots_sweep",
    "runner",
    "table1_msbm",
    "table2_netlist",
    "TrialRecord",
    "aggregate",
    "evaluate_methods",
    "render_markdown_table",
    "standard_methods",
    "SweepAxis",
    "SweepRunner",
    "SweepSpec",
    "get_spec",
    "registry",
    "validate_artifact",
    "write_artifact",
]
