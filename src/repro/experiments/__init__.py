"""Experiment harness: one module per reconstructed table/figure.

==========  =============================================================
Experiment  Module
==========  =============================================================
T1          ``repro.experiments.table1_msbm``
T2          ``repro.experiments.table2_netlist``
F1          ``repro.experiments.fig1_direction_sweep``
F2          ``repro.experiments.fig2_precision_sweep``
F3          ``repro.experiments.fig3_runtime_scaling``
F4          ``repro.experiments.fig4_shots_sweep``
A1–A3       ``repro.experiments.ablations``
==========  =============================================================

Each module has ``run(...)`` (structured records), a renderer
(``table``/``series``), and ``main()`` which prints the markdown quoted in
EXPERIMENTS.md.  The matching pytest-benchmark targets live in
``benchmarks/``.
"""

from repro.experiments import (
    ablations,
    common,
    fig1_direction_sweep,
    fig2_precision_sweep,
    fig3_runtime_scaling,
    fig4_shots_sweep,
    table1_msbm,
    table2_netlist,
)
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)

__all__ = [
    "ablations",
    "common",
    "fig1_direction_sweep",
    "fig2_precision_sweep",
    "fig3_runtime_scaling",
    "fig4_shots_sweep",
    "table1_msbm",
    "table2_netlist",
    "TrialRecord",
    "aggregate",
    "evaluate_methods",
    "render_markdown_table",
    "standard_methods",
]
