"""Experiment F2 — reproduces **Figure 2** of the paper: QPE precision
versus quantization error, bulk leakage and end-to-end accuracy.

Swept knobs: the QPE ancilla count ``p`` (the only axis) over per-trial
seeds; fixed knobs: graph size, cluster count, tomography shots and the
optional small-n circuit-backend cross-check.  The sweep runs through
:class:`repro.experiments.runner.SweepRunner` (``spec()`` builds the
declarative description; ``run()`` is the serial-compatible wrapper) and
reports three quantities per point:

* ``eig_rmse`` — RMS eigenvalue quantization error, which halves per added
  bit (the ε_λ precision parameter of the theory);
* ``bulk_leakage`` — mean filter-acceptance probability of *bulk* (above
  the spectral gap) eigencomponents: the amplitude contamination of the
  cluster subspace, which falls with p as the QPE kernel sharpens;
* ``ari`` — end-to-end clustering quality.

Expected shape: error and leakage decay geometrically in p; ARI is already
near-perfect once leakage is below ~10% — the algorithm only needs the
filter to *separate* low from bulk, not to resolve eigenvalues finely (an
explicit robustness finding recorded in EXPERIMENTS.md).  A circuit-backend
cross-check runs at small n for gate-level confirmation.

Each trial fits the staged pipeline (:class:`repro.pipeline.QSCPipeline`)
and runs the filter diagnostics directly on the fit's retained stage state
— the same Laplacian-stage backend the fit used, so no second
eigendecomposition, kernel build or even cache lookup happens (before the
staged core the diagnostics refit against the spectral cache; reusing the
checkpointed stage is free *and* exact by construction).
"""

from __future__ import annotations

import numpy as np

from repro.core import QSCConfig
from repro.core.projection import accepted_outcomes
from repro.experiments.common import TrialRecord, aggregate, render_markdown_table
from repro.experiments.runner import SweepAxis, SweepRunner, SweepSpec
from repro.graphs import ensure_connected, mixed_sbm
from repro.metrics import adjusted_rand_index, matched_accuracy
from repro.pipeline import QSCPipeline

DEFAULT_PRECISIONS = (1, 2, 3, 4, 5, 6, 7, 8)
DEFAULT_TRIALS = 5
DEFAULT_BASE_SEED = 700
# Mixed-SBM edge densities of the F2 trial graphs (shared with the bench,
# which rebuilds the sweep's Laplacians for its spectral-path measurement).
SBM_P_INTRA = 0.4
SBM_P_INTER = 0.05


def _filter_diagnostics(backend, num_clusters, threshold):
    """(eig_rmse, bulk_leakage) of the eigenvalue filter of ``backend``.

    ``backend`` is the fit's own analytic QPE backend, taken straight from
    the pipeline's ``laplacian`` stage state — identical numbers to a
    rebuilt diagnostics backend (the cache made them bit-equal before),
    with zero spectral work.
    """
    accepted = accepted_outcomes(
        threshold, backend.precision_bits, backend.lambda_scale
    )
    acceptance = backend.component_acceptance(accepted)
    true_values = backend.eigenvalues
    # "low" = the k smallest true eigenvalues of the padded spectrum
    order = np.argsort(true_values)
    bulk = order[num_clusters:]
    rmse = float(np.sqrt(np.mean(backend.quantization_errors() ** 2)))
    leakage = float(acceptance[bulk].mean())
    return rmse, leakage


def _trial_seed(point, trial, base_seed) -> int:
    """The historical F2 per-trial seed formula (records stay identical)."""
    return base_seed + 31 * trial + point["p"]


def _trial(
    point,
    trial,
    seed,
    rng,
    num_nodes,
    num_clusters,
    shots,
    include_circuit,
    circuit_num_nodes,
    generator_version="v1",
    readout_shards=None,
    store_dir=None,
    linalg_backend="auto",
) -> list[TrialRecord]:
    """One F2 trial: analytic fit + filter diagnostics (+ circuit check)."""
    precision = point["p"]
    records = []
    graph, truth = mixed_sbm(
        num_nodes,
        num_clusters,
        p_intra=SBM_P_INTRA,
        p_inter=SBM_P_INTER,
        seed=seed,
        generator_version=generator_version,
    )
    ensure_connected(graph, seed=seed)
    config = QSCConfig(
        precision_bits=precision,
        shots=shots,
        seed=seed,
        generator_version=generator_version,
        readout_shards=readout_shards,
        store_dir=store_dir,
        linalg_backend=linalg_backend,
    )
    pipeline = QSCPipeline(num_clusters, config)
    result = pipeline.run(graph)
    rmse, leakage = _filter_diagnostics(
        pipeline.state["backend"], num_clusters, result.threshold
    )
    records.append(
        TrialRecord(
            experiment="F2",
            method="quantum-analytic",
            parameters={"p": precision},
            seed=seed,
            ari=adjusted_rand_index(truth, result.labels),
            accuracy=matched_accuracy(truth, result.labels),
            extra={"eig_rmse": rmse, "bulk_leakage": leakage},
        )
    )
    if include_circuit and precision <= 6:
        small_graph, small_truth = mixed_sbm(
            circuit_num_nodes,
            num_clusters,
            p_intra=0.7,
            p_inter=0.05,
            seed=seed,
            generator_version=generator_version,
        )
        ensure_connected(small_graph, seed=seed)
        circuit_config = QSCConfig(
            backend="circuit",
            precision_bits=precision,
            shots=shots,
            seed=seed,
            generator_version=generator_version,
            readout_shards=readout_shards,
            store_dir=store_dir,
            linalg_backend=linalg_backend,
        )
        circuit_pipeline = QSCPipeline(num_clusters, circuit_config)
        circuit_labels = circuit_pipeline.run(small_graph).labels
        records.append(
            TrialRecord(
                experiment="F2",
                method="quantum-circuit",
                parameters={"p": precision},
                seed=seed,
                ari=adjusted_rand_index(small_truth, circuit_labels),
                accuracy=matched_accuracy(small_truth, circuit_labels),
            )
        )
    return records


def spec(
    precisions=DEFAULT_PRECISIONS,
    num_nodes: int = 48,
    num_clusters: int = 2,
    trials: int = DEFAULT_TRIALS,
    shots: int = 1024,
    base_seed: int = DEFAULT_BASE_SEED,
    include_circuit: bool = False,
    circuit_num_nodes: int = 12,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
) -> SweepSpec:
    """The declarative F2 sweep (same knobs as :func:`run`)."""
    return SweepSpec(
        name="fig2",
        artifact="Figure 2",
        description="QPE precision sweep: quantization error, bulk leakage, ARI",
        axes=(SweepAxis("p", tuple(precisions)),),
        trial=_trial,
        seed=_trial_seed,
        base_seed=base_seed,
        trials=trials,
        fixed={
            "num_nodes": num_nodes,
            "num_clusters": num_clusters,
            "shots": shots,
            "include_circuit": include_circuit,
            "circuit_num_nodes": circuit_num_nodes,
            "generator_version": generator_version,
            "readout_shards": readout_shards,
            "store_dir": store_dir,
            "linalg_backend": linalg_backend,
        },
        render=series,
    )


def run(
    precisions=DEFAULT_PRECISIONS,
    num_nodes: int = 48,
    num_clusters: int = 2,
    trials: int = DEFAULT_TRIALS,
    shots: int = 1024,
    base_seed: int = DEFAULT_BASE_SEED,
    include_circuit: bool = False,
    circuit_num_nodes: int = 12,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
    jobs: int = 1,
) -> list[TrialRecord]:
    """Run the F2 precision sweep through the sweep engine."""
    return (
        SweepRunner(
            spec(
                precisions=precisions,
                num_nodes=num_nodes,
                num_clusters=num_clusters,
                trials=trials,
                shots=shots,
                base_seed=base_seed,
                include_circuit=include_circuit,
                circuit_num_nodes=circuit_num_nodes,
                generator_version=generator_version,
                readout_shards=readout_shards,
                store_dir=store_dir,
                linalg_backend=linalg_backend,
            ),
            jobs=jobs,
        )
        .run()
        .records
    )


def series(records: list[TrialRecord]) -> str:
    """Markdown rendering of the F2 curves (error, leakage, ARI vs p)."""
    rows = aggregate(records, ("p",))
    diagnostics: dict[tuple, list] = {}
    for record in records:
        if "eig_rmse" in record.extra:
            key = (record.method, record.parameters["p"])
            diagnostics.setdefault(key, []).append(record.extra)
    for row in rows:
        bucket = diagnostics.get((row["method"], row["p"]))
        if bucket:
            row["eig_rmse"] = float(np.mean([d["eig_rmse"] for d in bucket]))
            row["bulk_leakage"] = float(np.mean([d["bulk_leakage"] for d in bucket]))
    return render_markdown_table(
        rows,
        ["p", "method", "trials", "ari_mean", "ari_std", "eig_rmse", "bulk_leakage"],
    )


def main() -> str:
    """Run with defaults (including circuit cross-check) and print."""
    output = series(run(include_circuit=True))
    print(output)
    return output


if __name__ == "__main__":
    main()
