"""Experiment T1 — reproduces **Table 1** of the paper: clustering
accuracy on mixed stochastic block models.

Swept knobs: graph size ``n`` and cluster count ``k`` (two axes, n
outermost) over per-trial seeds; fixed knobs: QPE precision and shots.
The sweep runs through :class:`repro.experiments.runner.SweepRunner` and
evaluates the full six-method comparison panel per trial.

The headline comparison table: quantum spectral clustering versus the exact
classical Hermitian pipeline and the direction-blind / directed baselines,
over graph sizes and cluster counts, averaged over seeds.

Expected shape (see EXPERIMENTS.md): quantum ≈ classical Hermitian, both
near-perfect; symmetrized competitive only because mixed SBMs also carry a
density signal; the gap widens in experiment F1 where density is removed.
"""

from __future__ import annotations

from repro.core import QSCConfig
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.experiments.runner import SweepAxis, SweepRunner, SweepSpec
from repro.graphs import ensure_connected, mixed_sbm

DEFAULT_SIZES = (32, 64, 128)
DEFAULT_CLUSTERS = (2, 3)
DEFAULT_TRIALS = 5
DEFAULT_BASE_SEED = 100


def _trial_seed(point, trial, base_seed) -> int:
    """The historical T1 per-trial seed formula (records stay identical)."""
    return base_seed + 7919 * trial + point["n"] + point["k"]


def _trial(
    point,
    trial,
    seed,
    rng,
    precision_bits,
    shots,
    generator_version="v1",
    readout_shards=None,
    store_dir=None,
    linalg_backend="auto",
) -> list[TrialRecord]:
    """One T1 trial: the full method panel on one mixed SBM instance."""
    num_nodes, num_clusters = point["n"], point["k"]
    graph, truth = mixed_sbm(
        num_nodes,
        num_clusters,
        p_intra=0.4,
        p_inter=0.05,
        seed=seed,
        generator_version=generator_version,
    )
    ensure_connected(graph, seed=seed)
    config = QSCConfig(
        precision_bits=precision_bits,
        shots=shots,
        seed=seed,
        generator_version=generator_version,
        readout_shards=readout_shards,
        store_dir=store_dir,
        linalg_backend=linalg_backend,
    )
    methods = standard_methods(num_clusters, seed, config)
    return evaluate_methods(
        "T1",
        methods,
        graph,
        truth,
        {"n": num_nodes, "k": num_clusters},
        seed,
    )


def spec(
    sizes=DEFAULT_SIZES,
    cluster_counts=DEFAULT_CLUSTERS,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 1024,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
) -> SweepSpec:
    """The declarative T1 sweep (same knobs as :func:`run`)."""
    return SweepSpec(
        name="table1",
        artifact="Table 1",
        description="Mixed-SBM comparison table over sizes and cluster counts",
        axes=(
            SweepAxis("n", tuple(sizes)),
            SweepAxis("k", tuple(cluster_counts)),
        ),
        trial=_trial,
        seed=_trial_seed,
        base_seed=base_seed,
        trials=trials,
        fixed={
            "precision_bits": precision_bits,
            "shots": shots,
            "generator_version": generator_version,
            "readout_shards": readout_shards,
            "store_dir": store_dir,
            "linalg_backend": linalg_backend,
        },
        render=table,
    )


def run(
    sizes=DEFAULT_SIZES,
    cluster_counts=DEFAULT_CLUSTERS,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 1024,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
    jobs: int = 1,
) -> list[TrialRecord]:
    """Run the T1 sweep and return one record per (method, instance)."""
    return (
        SweepRunner(
            spec(
                sizes=sizes,
                cluster_counts=cluster_counts,
                trials=trials,
                precision_bits=precision_bits,
                shots=shots,
                base_seed=base_seed,
                generator_version=generator_version,
                readout_shards=readout_shards,
                store_dir=store_dir,
                linalg_backend=linalg_backend,
            ),
            jobs=jobs,
        )
        .run()
        .records
    )


def table(records: list[TrialRecord]) -> str:
    """Markdown rendering of the T1 table."""
    rows = aggregate(records, ("n", "k"))
    return render_markdown_table(
        rows,
        ["n", "k", "method", "trials", "ari_mean", "ari_std", "acc_mean"],
    )


def main() -> str:
    """Run with default parameters and return the rendered table."""
    output = table(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
