"""Experiment T1 — clustering accuracy on mixed stochastic block models.

The headline comparison table: quantum spectral clustering versus the exact
classical Hermitian pipeline and the direction-blind / directed baselines,
over graph sizes and cluster counts, averaged over seeds.

Expected shape (see EXPERIMENTS.md): quantum ≈ classical Hermitian, both
near-perfect; symmetrized competitive only because mixed SBMs also carry a
density signal; the gap widens in experiment F1 where density is removed.
"""

from __future__ import annotations

from repro.core import QSCConfig
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.graphs import ensure_connected, mixed_sbm

DEFAULT_SIZES = (32, 64, 128)
DEFAULT_CLUSTERS = (2, 3)
DEFAULT_TRIALS = 5


def run(
    sizes=DEFAULT_SIZES,
    cluster_counts=DEFAULT_CLUSTERS,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 1024,
    base_seed: int = 100,
) -> list[TrialRecord]:
    """Run the T1 sweep and return one record per (method, instance)."""
    records = []
    for num_nodes in sizes:
        for num_clusters in cluster_counts:
            for trial in range(trials):
                seed = base_seed + 7919 * trial + num_nodes + num_clusters
                graph, truth = mixed_sbm(
                    num_nodes,
                    num_clusters,
                    p_intra=0.4,
                    p_inter=0.05,
                    seed=seed,
                )
                ensure_connected(graph, seed=seed)
                config = QSCConfig(
                    precision_bits=precision_bits, shots=shots, seed=seed
                )
                methods = standard_methods(num_clusters, seed, config)
                records.extend(
                    evaluate_methods(
                        "T1",
                        methods,
                        graph,
                        truth,
                        {"n": num_nodes, "k": num_clusters},
                        seed,
                    )
                )
    return records


def table(records: list[TrialRecord]) -> str:
    """Markdown rendering of the T1 table."""
    rows = aggregate(records, ("n", "k"))
    return render_markdown_table(
        rows,
        ["n", "k", "method", "trials", "ari_mean", "ari_std", "acc_mean"],
    )


def main() -> str:
    """Run with default parameters and return the rendered table."""
    output = table(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
