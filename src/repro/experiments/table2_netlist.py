"""Experiment T2 — reproduces **Table 2** of the paper: netlist module
partitioning (the DAC workload).

Swept knobs: the module count of the synthetic netlists (the only axis)
over per-trial seeds; fixed knobs: gates per module, QPE precision, shots
and the netlist arc phase θ = π/4.  The sweep runs through
:class:`repro.experiments.runner.SweepRunner` and evaluates the full
six-method comparison panel per trial; :func:`c17_partition` adds the
embedded ISCAS-85 c17 circuit as a no-ground-truth sanity target.

Synthetic hierarchical netlists with known module structure, converted to
mixed graphs with clique-expanded nets, plus the embedded ISCAS-85 c17
circuit as a no-ground-truth sanity target (we report its cut metrics).

Expected shape: Hermitian methods (quantum and classical, θ = π/4) recover
module structure well ahead of direction-blind baselines; cut imbalance of
the found partitions is high because inter-module nets all flow forward.
"""

from __future__ import annotations

import numpy as np

from repro.core import QSCConfig
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.experiments.runner import SweepAxis, SweepRunner, SweepSpec
from repro.graphs import ensure_connected, load_c17, synthetic_netlist
from repro.metrics import partition_summary

NETLIST_THETA = float(np.pi / 4)
DEFAULT_MODULES = (2, 3, 4)
DEFAULT_TRIALS = 5
DEFAULT_BASE_SEED = 300


def _trial_seed(point, trial, base_seed) -> int:
    """The historical T2 per-trial seed formula (records stay identical)."""
    return base_seed + 104729 * trial + point["modules"]


def _trial(
    point,
    trial,
    seed,
    rng,
    gates_per_module,
    precision_bits,
    shots,
    generator_version="v1",
    readout_shards=None,
    store_dir=None,
    linalg_backend="auto",
) -> list[TrialRecord]:
    """One T2 trial: the method panel on one synthetic netlist instance."""
    num_modules = point["modules"]
    netlist = synthetic_netlist(
        num_modules,
        gates_per_module,
        internal_fanin=3,
        cross_module_nets=2,
        feedback_registers=3,
        seed=seed,
    )
    graph = netlist.to_mixed_graph(net_cliques=True)
    ensure_connected(graph, seed=seed)
    truth = netlist.module_labels()
    config = QSCConfig(
        precision_bits=precision_bits,
        shots=shots,
        theta=NETLIST_THETA,
        seed=seed,
        readout_shards=readout_shards,
        store_dir=store_dir,
        linalg_backend=linalg_backend,
    )
    methods = standard_methods(num_modules, seed, config, theta=NETLIST_THETA)
    return evaluate_methods(
        "T2",
        methods,
        graph,
        truth,
        {"modules": num_modules, "n": graph.num_nodes},
        seed,
    )


def spec(
    module_counts=DEFAULT_MODULES,
    gates_per_module: int = 14,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 2048,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
) -> SweepSpec:
    """The declarative T2 sweep (same knobs as :func:`run`).

    T2's graphs come from deterministic synthetic netlists, not the SBM
    generators, so ``generator_version`` changes nothing here; it is
    accepted (and recorded in the artifact) so every sweep in the registry
    carries the same provenance field.
    """
    return SweepSpec(
        name="table2",
        artifact="Table 2",
        description="Synthetic-netlist partitioning table over module counts",
        axes=(SweepAxis("modules", tuple(module_counts)),),
        trial=_trial,
        seed=_trial_seed,
        base_seed=base_seed,
        trials=trials,
        fixed={
            "gates_per_module": gates_per_module,
            "precision_bits": precision_bits,
            "shots": shots,
            "generator_version": generator_version,
            "readout_shards": readout_shards,
            "store_dir": store_dir,
            "linalg_backend": linalg_backend,
        },
        render=table,
    )


def run(
    module_counts=DEFAULT_MODULES,
    gates_per_module: int = 14,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 2048,
    base_seed: int = DEFAULT_BASE_SEED,
    jobs: int = 1,
) -> list[TrialRecord]:
    """Run the T2 sweep over module counts and seeds."""
    return (
        SweepRunner(
            spec(
                module_counts=module_counts,
                gates_per_module=gates_per_module,
                trials=trials,
                precision_bits=precision_bits,
                shots=shots,
                base_seed=base_seed,
            ),
            jobs=jobs,
        )
        .run()
        .records
    )


def c17_partition(num_clusters: int = 2, seed: int = 0) -> dict:
    """Cluster the embedded c17 benchmark and report its cut metrics."""
    graph = load_c17().to_mixed_graph(net_cliques=True)
    ensure_connected(graph, seed=seed)
    from repro.core import QuantumSpectralClustering

    config = QSCConfig(
        backend="circuit",
        precision_bits=5,
        shots=4096,
        theta=NETLIST_THETA,
        seed=seed,
    )
    result = QuantumSpectralClustering(num_clusters, config).fit(graph)
    summary = partition_summary(graph, result.labels)
    summary["num_nodes"] = graph.num_nodes
    return summary


def table(records: list[TrialRecord]) -> str:
    """Markdown rendering of the T2 table."""
    rows = aggregate(records, ("modules",))
    return render_markdown_table(
        rows, ["modules", "method", "trials", "ari_mean", "ari_std", "acc_mean"]
    )


def main() -> str:
    """Run with defaults, print the table plus the c17 summary."""
    output = table(run())
    print(output)
    summary = c17_partition()
    line = "c17 (circuit backend): " + ", ".join(
        f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
        for key, value in summary.items()
    )
    print(line)
    return output + "\n" + line


if __name__ == "__main__":
    main()
