"""Experiment T2 — netlist module partitioning (the DAC workload).

Synthetic hierarchical netlists with known module structure, converted to
mixed graphs with clique-expanded nets, plus the embedded ISCAS-85 c17
circuit as a no-ground-truth sanity target (we report its cut metrics).

Expected shape: Hermitian methods (quantum and classical, θ = π/4) recover
module structure well ahead of direction-blind baselines; cut imbalance of
the found partitions is high because inter-module nets all flow forward.
"""

from __future__ import annotations

import numpy as np

from repro.core import QSCConfig
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.graphs import ensure_connected, load_c17, synthetic_netlist
from repro.metrics import partition_summary

NETLIST_THETA = float(np.pi / 4)
DEFAULT_MODULES = (2, 3, 4)
DEFAULT_TRIALS = 5


def run(
    module_counts=DEFAULT_MODULES,
    gates_per_module: int = 14,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 2048,
    base_seed: int = 300,
) -> list[TrialRecord]:
    """Run the T2 sweep over module counts and seeds."""
    records = []
    for num_modules in module_counts:
        for trial in range(trials):
            seed = base_seed + 104729 * trial + num_modules
            netlist = synthetic_netlist(
                num_modules,
                gates_per_module,
                internal_fanin=3,
                cross_module_nets=2,
                feedback_registers=3,
                seed=seed,
            )
            graph = netlist.to_mixed_graph(net_cliques=True)
            ensure_connected(graph, seed=seed)
            truth = netlist.module_labels()
            config = QSCConfig(
                precision_bits=precision_bits,
                shots=shots,
                theta=NETLIST_THETA,
                seed=seed,
            )
            methods = standard_methods(
                num_modules, seed, config, theta=NETLIST_THETA
            )
            records.extend(
                evaluate_methods(
                    "T2",
                    methods,
                    graph,
                    truth,
                    {"modules": num_modules, "n": graph.num_nodes},
                    seed,
                )
            )
    return records


def c17_partition(num_clusters: int = 2, seed: int = 0) -> dict:
    """Cluster the embedded c17 benchmark and report its cut metrics."""
    graph = load_c17().to_mixed_graph(net_cliques=True)
    ensure_connected(graph, seed=seed)
    from repro.core import QuantumSpectralClustering

    config = QSCConfig(
        backend="circuit",
        precision_bits=5,
        shots=4096,
        theta=NETLIST_THETA,
        seed=seed,
    )
    result = QuantumSpectralClustering(num_clusters, config).fit(graph)
    summary = partition_summary(graph, result.labels)
    summary["num_nodes"] = graph.num_nodes
    return summary


def table(records: list[TrialRecord]) -> str:
    """Markdown rendering of the T2 table."""
    rows = aggregate(records, ("modules",))
    return render_markdown_table(
        rows, ["modules", "method", "trials", "ari_mean", "ari_std", "acc_mean"]
    )


def main() -> str:
    """Run with defaults, print the table plus the c17 summary."""
    output = table(run())
    print(output)
    summary = c17_partition()
    line = "c17 (circuit backend): " + ", ".join(
        f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
        for key, value in summary.items()
    )
    print(line)
    return output + "\n" + line


if __name__ == "__main__":
    main()
