"""The unified experiment sweep engine.

Every paper artifact (fig1–fig4, table1–table2) used to reproduce itself
with a bespoke serial double loop that rebuilt the graph and re-ran the
full eigendecomposition per trial.  This module replaces those loops with
one declarative subsystem:

* :class:`SweepSpec` — a frozen description of a sweep: named axes, a
  per-trial function, the experiment's (legacy-compatible) seed derivation
  and fixed parameters.  Each experiment module exposes a ``spec(...)``
  factory building its own.
* :class:`SweepRunner` — executes a spec's cartesian task grid either
  serially or across a process pool (``jobs > 1``).  Per-task RNG streams
  are spawned up front with :func:`repro.utils.rng.spawn_rngs` and results
  are reassembled in task order, so serial and parallel runs are
  bit-identical at a fixed seed.  Workers share the process-local spectral
  cache of :mod:`repro.core.qpe_engine`; hit/miss deltas are aggregated
  into the result.
* :func:`write_artifact` / :func:`validate_artifact` — every sweep can be
  serialized to one JSON artifact of schema :data:`ARTIFACT_SCHEMA`, which
  the ``repro experiments`` CLI emits and CI validates.  Since the staged
  pipeline core (:mod:`repro.pipeline`) the artifact carries an additive
  ``profile`` field: per-stage wall seconds and computed/loaded execution
  counts aggregated across every trial, bracketed per task exactly like
  the spectral-cache counters.

Determinism contract: a task's trial seed depends only on (point, trial,
base_seed) via the spec's ``seed`` function, and its RNG stream only on
(base_seed, task index) — never on scheduling.  Experiment modules keep
their historical integer-seed formulas, so sweeps produce the same records
they did under the hand-rolled loops.
"""

from __future__ import annotations

import inspect
import itertools
import json
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.qpe_engine import spectral_cache_stats
from repro.exceptions import ClusteringError, ExperimentError
from repro.experiments.common import TrialRecord
from repro.pipeline.telemetry import (
    ANNOTATION_KEYS as _PROFILE_ANNOTATIONS,
    SHARD_TOTAL_KEYS as _SHARD_PROFILE_KEYS,
    TOTAL_KEYS as _PROFILE_KEYS,
    merge_totals,
    stage_totals,
    totals_delta,
)
from repro.store import COUNTER_KEYS as _STORE_COUNTERS, store_counters
from repro.utils.rng import spawn_rngs

#: Version tag of the JSON artifact layout written by :func:`write_artifact`.
ARTIFACT_SCHEMA = "repro.sweep/1"

_CACHE_COUNTERS = ("hits", "misses", "evictions")


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a name and the tuple of values it takes."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.name:
            raise ExperimentError("axis name must be non-empty")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ExperimentError(f"axis {self.name!r} has no values")


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a point on the axis grid and a trial index."""

    index: int
    point: dict
    trial: int
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one experiment sweep.

    Attributes
    ----------
    name:
        Registry key and artifact file stem (e.g. ``"fig2"``).
    artifact:
        The paper artifact this sweep reproduces (e.g. ``"Figure 2"``).
    description:
        One-line summary shown by ``repro experiments --list``.
    axes:
        Swept parameters; the task grid is their cartesian product in axis
        order (first axis outermost), matching the historical loop nesting.
    trial:
        ``trial(point, trial_index, seed, rng, **fixed) -> list[TrialRecord]``.
        Must be a module-level function so tasks can cross process
        boundaries.  ``rng`` is the task's spawned stream; the refactored
        paper experiments ignore it and derive everything from the integer
        ``seed`` to stay record-identical with their pre-runner outputs.
    seed:
        ``seed(point, trial_index, base_seed) -> int`` — the experiment's
        per-trial seed derivation (each module keeps its legacy formula).
    base_seed:
        Master seed: feeds ``seed`` and the spawned per-task RNG streams.
    trials:
        Trials per grid point.
    fixed:
        Non-swept keyword parameters forwarded to every ``trial`` call.
    render:
        Optional ``render(records) -> str`` producing the markdown
        table/series quoted in the docs; stored in the JSON artifact.
    """

    name: str
    artifact: str
    description: str
    axes: tuple[SweepAxis, ...]
    trial: Callable
    seed: Callable
    base_seed: int
    trials: int = 1
    fixed: dict = field(default_factory=dict)
    render: Callable | None = None

    def __post_init__(self):
        if self.trials < 1:
            raise ExperimentError(f"trials must be >= 1, got {self.trials}")
        if not self.axes:
            raise ExperimentError(f"sweep {self.name!r} has no axes")

    def points(self) -> list[dict]:
        """The axis grid: one dict per point, first axis outermost."""
        names = [axis.name for axis in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(axis.values for axis in self.axes))
        ]

    def tasks(self) -> list[SweepTask]:
        """The full task list in deterministic execution order."""
        tasks = []
        for point in self.points():
            for trial in range(self.trials):
                tasks.append(
                    SweepTask(
                        index=len(tasks),
                        point=point,
                        trial=trial,
                        seed=int(self.seed(point, trial, self.base_seed)),
                    )
                )
        return tasks

    def with_updates(self, **kwargs) -> "SweepSpec":
        """A modified copy — how the CLI applies ``--trials`` overrides."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep execution produced.

    ``records`` is the flat list of :class:`TrialRecord` rows in task
    order — independent of ``jobs``, bit-identical between serial and
    parallel runs.  ``cache`` holds the spectral-cache hit/miss/eviction
    deltas accumulated across all worker processes; ``profile`` holds the
    per-stage pipeline telemetry deltas (seconds, computed/loaded counts
    per stage of :data:`repro.pipeline.STAGE_NAMES`) aggregated the same
    way.
    """

    spec: SweepSpec
    records: list
    jobs: int
    elapsed_seconds: float
    cache: dict
    profile: dict = field(default_factory=dict)
    #: Content-store counter deltas (memory/disk hits, misses, evictions)
    #: aggregated across all worker processes, same bracketing as ``cache``.
    #: All zeros when no sweep touched the store.
    store: dict = field(default_factory=dict)

    def rendered(self) -> str | None:
        """The spec's markdown rendering of the records (if it has one)."""
        if self.spec.render is None:
            return None
        return self.spec.render(self.records)

    def to_artifact(self) -> dict:
        """The JSON-serializable artifact dictionary (validated schema)."""
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "name": self.spec.name,
            "artifact": self.spec.artifact,
            "description": self.spec.description,
            "spec": {
                "axes": {
                    axis.name: [_jsonable(v) for v in axis.values]
                    for axis in self.spec.axes
                },
                "trials": self.spec.trials,
                "base_seed": self.spec.base_seed,
                "fixed": _jsonable(dict(self.spec.fixed)),
            },
            "jobs": self.jobs,
            "elapsed_seconds": float(self.elapsed_seconds),
            "cache": {k: int(self.cache.get(k, 0)) for k in _CACHE_COUNTERS},
            # Additive field: cross-process content-store traffic.  A warm
            # ``--store-dir`` re-run shows nonzero ``disk_hits`` here — the
            # counter the CI smoke and the trajectory gate assert on.
            "store": {k: int(self.store.get(k, 0)) for k in _STORE_COUNTERS},
            "profile": {
                stage: {
                    "seconds": float(entry.get("seconds", 0.0)),
                    "computed": int(entry.get("computed", 0)),
                    "loaded": int(entry.get("loaded", 0)),
                    # Shard counters exist only for stages that ran sharded
                    # (``readout_shards``); unsharded profiles keep the
                    # classic three-key shape.
                    **{
                        key: int(entry[key])
                        for key in _SHARD_PROFILE_KEYS
                        if key in entry
                    },
                    # Backend annotations exist only for stages that
                    # resolved the linalg contract (laplacian/threshold) —
                    # served jobs can then report which backend ran.
                    **{
                        key: str(entry[key])
                        for key in _PROFILE_ANNOTATIONS
                        if key in entry
                    },
                }
                for stage, entry in self.profile.items()
            },
            "records": [_record_dict(record) for record in self.records],
            "table": self.rendered(),
        }
        validate_artifact(artifact)
        return artifact


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    return value


def _record_dict(record: TrialRecord) -> dict:
    """One artifact row for a :class:`TrialRecord`."""
    return {
        "experiment": record.experiment,
        "method": record.method,
        "parameters": _jsonable(record.parameters),
        "seed": int(record.seed),
        "ari": None if record.ari is None else float(record.ari),
        "accuracy": None if record.accuracy is None else float(record.accuracy),
        "extra": _jsonable(record.extra),
    }


# -- execution ------------------------------------------------------------


def _execute_task(spec: SweepSpec, task: SweepTask, rng) -> tuple:
    """Run one task; returns (index, records, cache/store/profile deltas).

    Module-level so process-pool workers can unpickle it.  The spectral
    cache delta, the content-store counter delta and the per-stage
    pipeline telemetry delta are measured *inside* the executing process,
    bracketing the trial call, so the accounting is exact regardless of
    multiprocessing start method (fork workers inherit nonzero counters,
    spawn workers start at zero — a delta is correct either way).
    """
    before = spectral_cache_stats()
    store_before = store_counters()
    stages_before = stage_totals()
    records = list(spec.trial(task.point, task.trial, task.seed, rng, **spec.fixed))
    after = spectral_cache_stats()
    store_after = store_counters()
    stages_after = stage_totals()
    for record in records:
        if not isinstance(record, TrialRecord):
            raise ExperimentError(
                f"sweep {spec.name!r} trial returned {type(record).__name__}, "
                "expected TrialRecord"
            )
    delta = {key: after.get(key, 0) - before.get(key, 0) for key in _CACHE_COUNTERS}
    store_delta = {
        key: store_after.get(key, 0) - store_before.get(key, 0)
        for key in _STORE_COUNTERS
    }
    return (
        task.index,
        records,
        delta,
        store_delta,
        totals_delta(stages_before, stages_after),
    )


class SweepRunner:
    """Executes a :class:`SweepSpec` serially or across a process pool.

    Parameters
    ----------
    spec:
        The sweep to run.
    jobs:
        Worker process count.  ``1`` (default) runs in-process; ``N > 1``
        fans tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
        Output is bit-identical either way: seeds and RNG streams are fixed
        per task before any scheduling happens, and records are reassembled
        in task order.
    """

    def __init__(self, spec: SweepSpec, jobs: int = 1):
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.jobs = int(jobs)

    def run(self) -> SweepResult:
        """Execute every task of the spec and assemble the result."""
        tasks = self.spec.tasks()
        # One independent, deterministic RNG stream per task, spawned from
        # the spec's base seed — identical whether consumed here or in a
        # worker process, which is what makes --jobs reproducible.
        rngs = spawn_rngs(self.spec.base_seed, len(tasks))
        start = time.perf_counter()
        if self.jobs == 1 or len(tasks) <= 1:
            outcomes = [
                _execute_task(self.spec, task, rng)
                for task, rng in zip(tasks, rngs)
            ]
        else:
            # One future per task (not ``pool.map``) so a worker process
            # dying mid-task — OOM kill, segfault, os._exit — surfaces as
            # a ClusteringError naming the first affected task instead of
            # a raw BrokenProcessPool traceback.  Results are still
            # collected in task order, so the output stays bit-identical.
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    pool.submit(_execute_task, self.spec, task, rng)
                    for task, rng in zip(tasks, rngs)
                ]
                outcomes = []
                for task, future in zip(tasks, futures):
                    try:
                        outcomes.append(future.result())
                    except BrokenProcessPool as exc:
                        raise ClusteringError(
                            f"sweep {self.spec.name!r} task {task.index} "
                            f"(point={task.point}, trial={task.trial}): worker "
                            "process died mid-task (killed, out of memory, or "
                            "hard-exited) and took the pool down with it"
                        ) from exc
        elapsed = time.perf_counter() - start
        by_index: dict[int, list] = {}
        cache = {key: 0 for key in _CACHE_COUNTERS}
        store = {key: 0 for key in _STORE_COUNTERS}
        profile: dict = {}
        for index, records, delta, store_delta, stage_delta in outcomes:
            by_index[index] = records
            for key in _CACHE_COUNTERS:
                cache[key] += delta[key]
            for key in _STORE_COUNTERS:
                store[key] += store_delta[key]
            merge_totals(profile, stage_delta)
        records = [record for index in sorted(by_index) for record in by_index[index]]
        return SweepResult(
            spec=self.spec,
            records=records,
            jobs=self.jobs,
            elapsed_seconds=elapsed,
            cache=cache,
            profile=profile,
            store=store,
        )


# -- JSON artifacts -------------------------------------------------------


def validate_artifact(artifact: dict) -> dict:
    """Check an artifact dictionary against :data:`ARTIFACT_SCHEMA`.

    Raises :class:`~repro.exceptions.ExperimentError` describing the first
    violation; returns the artifact unchanged when valid.  This is the
    contract the CI ``experiments-smoke`` step enforces.
    """
    if not isinstance(artifact, dict):
        raise ExperimentError("artifact must be a JSON object")
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        raise ExperimentError(
            f"artifact schema must be {ARTIFACT_SCHEMA!r}, "
            f"got {artifact.get('schema')!r}"
        )
    for key, kind in (
        ("name", str),
        ("artifact", str),
        ("description", str),
        ("spec", dict),
        ("jobs", int),
        ("elapsed_seconds", (int, float)),
        ("cache", dict),
        ("records", list),
    ):
        if not isinstance(artifact.get(key), kind):
            raise ExperimentError(f"artifact field {key!r} missing or mistyped")
    spec = artifact["spec"]
    for key, kind in (
        ("axes", dict),
        ("trials", int),
        ("base_seed", int),
        ("fixed", dict),
    ):
        if not isinstance(spec.get(key), kind):
            raise ExperimentError(f"artifact spec field {key!r} missing or mistyped")
    if not spec["axes"]:
        raise ExperimentError("artifact spec has no axes")
    for counter in _CACHE_COUNTERS:
        if not isinstance(artifact["cache"].get(counter), int):
            raise ExperimentError(f"artifact cache counter {counter!r} missing")
    store = artifact.get("store")
    if store is not None:
        # Additive field (schema unchanged): content-store counter deltas.
        # Artifacts written before the shared store stay valid; when the
        # field is present every counter must be an integer so the CI
        # warm-store assertion cannot silently read garbage.
        if not isinstance(store, dict):
            raise ExperimentError("artifact store must be an object")
        for counter in _STORE_COUNTERS:
            if not isinstance(store.get(counter), int):
                raise ExperimentError(
                    f"artifact store counter {counter!r} missing or mistyped"
                )
    profile = artifact.get("profile")
    if profile is not None:
        # Additive field (schema unchanged): per-stage pipeline telemetry.
        # Older artifacts without it stay valid; when present the layout
        # is checked so the CI profile upload cannot silently degrade.
        if not isinstance(profile, dict):
            raise ExperimentError("artifact profile must be an object")
        for stage, entry in profile.items():
            if not isinstance(entry, dict):
                raise ExperimentError(f"profile stage {stage!r} is not an object")
            for key in _PROFILE_KEYS:
                value = entry.get(key)
                kind = (int, float) if key == "seconds" else int
                if not isinstance(value, kind):
                    raise ExperimentError(
                        f"profile stage {stage!r} field {key!r} missing or mistyped"
                    )
            for key in _SHARD_PROFILE_KEYS:
                # Optional (sharded runs only), but integer when present.
                if key in entry and not isinstance(entry[key], int):
                    raise ExperimentError(
                        f"profile stage {stage!r} shard counter {key!r} mistyped"
                    )
            for key in _PROFILE_ANNOTATIONS:
                # Optional (linalg-resolving stages only), strings when
                # present.
                if key in entry and not isinstance(entry[key], str):
                    raise ExperimentError(
                        f"profile stage {stage!r} annotation {key!r} mistyped"
                    )
    provenance = artifact.get("provenance")
    if provenance is not None:
        # Additive field (schema unchanged): who/what produced this
        # artifact — the service stamps the job fingerprint, experiment
        # and protocol version here (never the tenant: artifacts are
        # content-addressed and shared across tenants).  Scalar values
        # only, so the block stays JSON-round-trippable and diffable.
        if not isinstance(provenance, dict):
            raise ExperimentError("artifact provenance must be an object")
        for key, value in provenance.items():
            if not isinstance(key, str):
                raise ExperimentError("artifact provenance keys must be strings")
            if value is not None and not isinstance(value, (str, int, float, bool)):
                raise ExperimentError(
                    f"artifact provenance field {key!r} must be a scalar or null"
                )
    if not artifact["records"]:
        raise ExperimentError("artifact has no records")
    for position, record in enumerate(artifact["records"]):
        if not isinstance(record, dict):
            raise ExperimentError(f"record #{position} is not an object")
        for key, kind in (
            ("experiment", str),
            ("method", str),
            ("parameters", dict),
            ("seed", int),
            ("extra", dict),
        ):
            if not isinstance(record.get(key), kind):
                raise ExperimentError(
                    f"record #{position} field {key!r} missing or mistyped"
                )
        for key in ("ari", "accuracy"):
            value = record.get(key)
            if value is not None and not isinstance(value, (int, float)):
                raise ExperimentError(
                    f"record #{position} field {key!r} must be a number or null"
                )
    table = artifact.get("table")
    if table is not None and not isinstance(table, str):
        raise ExperimentError("artifact table must be a string or null")
    return artifact


def stamp_provenance(artifact: dict, **fields) -> dict:
    """Merge scalar ``fields`` into the artifact's ``provenance`` block.

    The block is additive (see :func:`validate_artifact`); stamping an
    artifact never touches ``records`` or any other field, so two
    artifacts with different provenance can still be record-identical —
    the property the service's restart tests assert.  Returns the same
    artifact, validated.
    """
    provenance = dict(artifact.get("provenance") or {})
    provenance.update(fields)
    artifact["provenance"] = provenance
    return validate_artifact(artifact)


def validate_artifact_file(path) -> dict:
    """Load a JSON artifact from ``path`` and validate it."""
    with open(path, encoding="utf-8") as handle:
        return validate_artifact(json.load(handle))


def write_artifact(
    result: SweepResult, out_dir, artifact: dict | None = None
) -> pathlib.Path:
    """Serialize a sweep result to ``<out_dir>/<spec.name>.json``.

    The directory is created if needed; the artifact is validated before
    anything touches disk.  Pass ``artifact`` to reuse a dictionary you
    already obtained from :meth:`SweepResult.to_artifact` (rendering the
    table can be the expensive part of large sweeps); it is re-validated
    here either way.
    """
    if artifact is None:
        artifact = result.to_artifact()
    else:
        validate_artifact(artifact)
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.spec.name}.json"
    path.write_text(
        json.dumps(artifact, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return path


# -- registry -------------------------------------------------------------


def registry() -> dict:
    """Name → ``spec(**overrides)`` factory for every paper artifact sweep.

    Built lazily because the experiment modules import this module for
    :class:`SweepSpec`; importing them at module load would be circular.
    """
    from repro.experiments import (
        fig1_direction_sweep,
        fig2_precision_sweep,
        fig3_runtime_scaling,
        fig4_shots_sweep,
        table1_msbm,
        table2_netlist,
    )

    return {
        "fig1": fig1_direction_sweep.spec,
        "fig2": fig2_precision_sweep.spec,
        "fig3": fig3_runtime_scaling.spec,
        "fig4": fig4_shots_sweep.spec,
        "table1": table1_msbm.spec,
        "table2": table2_netlist.spec,
    }


def get_spec(name: str, **overrides) -> SweepSpec:
    """Build the named sweep's spec, forwarding factory overrides."""
    specs = registry()
    if name not in specs:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(specs))}"
        )
    return specs[name](**overrides)


# -- job specs (clustering-as-a-service submissions) ----------------------

#: Top-level keys a submitted job object may carry.
JOB_KEYS = ("experiment", "trials", "overrides")


def normalize_job(job: dict) -> dict:
    """Validate a submitted job object and return its canonical form.

    A job is the service-layer unit of work: a JSON object naming a
    registered experiment plus optional ``trials`` and spec-factory
    ``overrides``.  The canonical form — experiment name, explicit trial
    count, overrides with sorted keys — is what the job fingerprint (and
    therefore the store's job-artifact key) is computed from, so two
    submissions that mean the same sweep normalize identically.

    Raises :class:`~repro.exceptions.ExperimentError` on unknown
    experiments, unknown override names, or malformed values.
    """
    if not isinstance(job, dict):
        raise ExperimentError(
            f"job must be an object, got {type(job).__name__}"
        )
    unknown = sorted(set(job) - set(JOB_KEYS))
    if unknown:
        raise ExperimentError(
            f"unknown job field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(JOB_KEYS)}"
        )
    specs = registry()
    experiment = job.get("experiment")
    if experiment not in specs:
        raise ExperimentError(
            f"unknown experiment {experiment!r}; known: {', '.join(sorted(specs))}"
        )
    trials = job.get("trials", 1)
    if not isinstance(trials, int) or isinstance(trials, bool) or trials < 1:
        raise ExperimentError(f"job trials must be a positive integer, got {trials!r}")
    overrides = job.get("overrides", {})
    if not isinstance(overrides, dict):
        raise ExperimentError(
            f"job overrides must be an object, got {type(overrides).__name__}"
        )
    allowed = set(inspect.signature(specs[experiment]).parameters)
    bad = sorted(set(overrides) - allowed)
    if bad:
        raise ExperimentError(
            f"experiment {experiment!r} does not accept override(s) "
            f"{', '.join(map(repr, bad))}; allowed: {', '.join(sorted(allowed))}"
        )
    return {
        "experiment": experiment,
        "trials": trials,
        "overrides": {key: overrides[key] for key in sorted(overrides)},
    }


def job_fingerprint(job: dict) -> str:
    """Content fingerprint of a job's canonical form (blake2b hex).

    Two submissions describing the same sweep share a fingerprint, which
    is how the service resolves repeat submissions straight from the
    content store's job-artifact namespace.
    """
    import hashlib

    canonical = json.dumps(_jsonable(normalize_job(job)), sort_keys=True)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def spec_from_job(job: dict, store_dir=None) -> SweepSpec:
    """Build the :class:`SweepSpec` a submitted job object describes.

    ``store_dir`` is the *server's* shared content store; it is injected
    into the factory call when the factory supports it and the job did
    not pin its own, so every served job checkpoints into (and resumes
    from) the same store.  The injection deliberately happens after
    normalization — it never changes the job's fingerprint.
    """
    job = normalize_job(job)
    factory = registry()[job["experiment"]]
    kwargs = dict(job["overrides"])
    if (
        store_dir is not None
        and "store_dir" not in kwargs
        and "store_dir" in inspect.signature(factory).parameters
    ):
        kwargs["store_dir"] = str(store_dir)
    spec = factory(**kwargs)
    if job["trials"] != spec.trials:
        spec = spec.with_updates(trials=job["trials"])
    return spec
