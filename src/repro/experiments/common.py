"""Shared experiment-harness utilities.

Every experiment module produces a list of :class:`TrialRecord` rows (its
sweep is declared as a :class:`~repro.experiments.runner.SweepSpec` and
executed by :class:`~repro.experiments.runner.SweepRunner`); the helpers
here aggregate those rows over seeds and render the same markdown tables
EXPERIMENTS.md quotes.  A *method* is any object with a ``fit(graph)``
returning something with a ``labels`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    AdjacencyKMeans,
    DiSimClustering,
    RandomWalkSpectralClustering,
    SymmetrizedSpectralClustering,
)
from repro.core import QSCConfig, QuantumSpectralClustering
from repro.exceptions import ExperimentError
from repro.metrics import adjusted_rand_index, matched_accuracy
from repro.spectral import ClassicalSpectralClustering


@dataclass(frozen=True)
class TrialRecord:
    """One (method, graph-instance) evaluation.

    Attributes
    ----------
    experiment:
        Experiment id (e.g. ``"T1"``).
    method:
        Method tag.
    parameters:
        The sweep coordinates of this trial (n, k, strength, ...).
    seed:
        Trial seed.
    ari / accuracy:
        Clustering quality against ground truth; ``None`` for sweeps with
        no ground-truth labels (e.g. the F3 runtime profile, whose
        measurements live entirely in ``extra``).
    extra:
        Free-form additional measurements.
    """

    experiment: str
    method: str
    parameters: dict
    seed: int
    ari: float | None = None
    accuracy: float | None = None
    extra: dict = field(default_factory=dict)


def standard_methods(num_clusters: int, seed, quantum_config: QSCConfig | None = None,
                     theta: float | None = None) -> dict:
    """The method panel used by the comparison tables.

    Returns a mapping tag -> estimator.  The quantum entry uses the given
    config (analytic backend by default so the panel scales).
    """
    config = quantum_config or QSCConfig(seed=seed)
    if theta is not None:
        config = config.with_updates(theta=theta)
    classical_kwargs = {} if theta is None else {"theta": theta}
    return {
        "quantum": QuantumSpectralClustering(num_clusters, config),
        "classical": ClassicalSpectralClustering(
            num_clusters, seed=seed, **classical_kwargs
        ),
        "symmetrized": SymmetrizedSpectralClustering(num_clusters, seed=seed),
        "random-walk": RandomWalkSpectralClustering(num_clusters, seed=seed),
        "disim": DiSimClustering(num_clusters, seed=seed),
        "adjacency": AdjacencyKMeans(num_clusters, seed=seed),
    }


def evaluate_methods(
    experiment: str,
    methods: dict,
    graph,
    truth,
    parameters: dict,
    seed: int,
) -> list[TrialRecord]:
    """Run every method on one graph instance and score against truth."""
    records = []
    for tag, estimator in methods.items():
        labels = estimator.fit(graph).labels
        records.append(
            TrialRecord(
                experiment=experiment,
                method=tag,
                parameters=dict(parameters),
                seed=seed,
                ari=adjusted_rand_index(truth, labels),
                accuracy=matched_accuracy(truth, labels),
            )
        )
    return records


def aggregate(records: list[TrialRecord], group_keys: tuple[str, ...]):
    """Mean ± std of ARI/accuracy grouped by (method, *group_keys*).

    Returns a list of dictionaries sorted by group then method, ready for
    :func:`render_markdown_table`.
    """
    if not records:
        raise ExperimentError("no records to aggregate")
    groups: dict[tuple, list[TrialRecord]] = {}
    for record in records:
        key = (record.method,) + tuple(record.parameters[k] for k in group_keys)
        groups.setdefault(key, []).append(record)
    rows = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        bucket = groups[key]
        aris = np.array([r.ari for r in bucket])
        accs = np.array([r.accuracy for r in bucket])
        row = {"method": key[0]}
        row.update(dict(zip(group_keys, key[1:])))
        row.update(
            {
                "trials": len(bucket),
                "ari_mean": float(aris.mean()),
                "ari_std": float(aris.std()),
                "acc_mean": float(accs.mean()),
                "acc_std": float(accs.std()),
            }
        )
        rows.append(row)
    return rows


def render_markdown_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render aggregated rows as a GitHub-markdown table."""
    if not rows:
        raise ExperimentError("no rows to render")
    columns = columns or list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    lines = [header, rule]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.3f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
