"""Experiment F3 — runtime scaling: quantum step proxy vs classical O(n³).

For a sweep of graph sizes, measures the classical eigensolvers (dense
LAPACK and our Lanczos) and evaluates the modeled quantum step count (see
``repro.quantum.resources``).  The quantities of interest are the *fitted
growth exponents*: ≈3 for dense classical clustering, ≈1 for the
edge-dominated quantum proxy on sparse graphs — reproducing the paper's
"linear versus cubic" figure.
"""

from __future__ import annotations

from dataclasses import asdict


from repro.core.runtime_model import RuntimeSample, fitted_exponent, profile_graph
from repro.graphs import ensure_connected, mixed_sbm

DEFAULT_SIZES = (64, 128, 256, 512, 1024)


def run(
    sizes=DEFAULT_SIZES,
    num_clusters: int = 2,
    average_degree: float = 8.0,
    precision_bits: int = 6,
    shots: int = 256,
    base_seed: int = 900,
) -> list[RuntimeSample]:
    """Profile one sparse mixed SBM per size (constant average degree)."""
    samples = []
    for num_nodes in sizes:
        # keep the average degree constant so edges grow linearly with n
        p_intra = min(1.0, 2.0 * average_degree / num_nodes)
        graph, _ = mixed_sbm(
            num_nodes,
            num_clusters,
            p_intra=p_intra,
            p_inter=p_intra / 8.0,
            seed=base_seed + num_nodes,
        )
        ensure_connected(graph, seed=base_seed)
        samples.append(
            profile_graph(
                graph,
                num_clusters,
                precision_bits=precision_bits,
                shots=shots,
            )
        )
    return samples


def exponents(samples: list[RuntimeSample]) -> dict[str, float]:
    """Fitted log-log growth exponents of each runtime series."""
    sizes = [s.num_nodes for s in samples]
    return {
        "quantum_steps": fitted_exponent(sizes, [s.quantum_steps for s in samples]),
        "classical_steps": fitted_exponent(
            sizes, [s.classical_steps for s in samples]
        ),
        "dense_seconds": fitted_exponent(
            sizes, [s.dense_seconds for s in samples]
        ),
    }


def series(samples: list[RuntimeSample]) -> str:
    """Markdown rendering of the F3 scaling rows plus fitted exponents."""
    lines = [
        "| n | edges | quantum_steps | classical_steps | dense_s | lanczos_s |",
        "|---|---|---|---|---|---|",
    ]
    for sample in samples:
        row = asdict(sample)
        lines.append(
            "| {num_nodes} | {num_edges} | {quantum_steps:.3e} | "
            "{classical_steps:.3e} | {dense_seconds:.4f} | "
            "{lanczos_seconds:.4f} |".format(**row)
        )
    fits = exponents(samples)
    lines.append("")
    lines.append(
        "fitted exponents: "
        + ", ".join(f"{key}≈n^{value:.2f}" for key, value in fits.items())
    )
    return "\n".join(lines)


def main() -> str:
    """Run with defaults and return the rendered series."""
    output = series(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
