"""Experiment F3 — reproduces **Figure 3** of the paper: runtime scaling
of the quantum step proxy versus classical O(n³).

Swept knobs: graph size ``n`` (the only axis; one profile per size by
default, and each extra trial profiles an independent graph instance);
fixed knobs: cluster count, average degree, QPE precision and shots.  The
sweep runs through :class:`repro.experiments.runner.SweepRunner`; records
carry no ARI/accuracy (there is no ground truth to score) — each row's
measurements live in ``extra`` and are also available as
:class:`~repro.core.runtime_model.RuntimeSample` via :func:`run`.

For a sweep of graph sizes, measures the classical eigensolvers (dense
LAPACK and our Lanczos) and evaluates the modeled quantum step count (see
``repro.quantum.resources``).  The quantities of interest are the *fitted
growth exponents*: ≈3 for dense classical clustering, ≈1 for the
edge-dominated quantum proxy on sparse graphs — reproducing the paper's
"linear versus cubic" figure.  Wall-clock fields are measurements, so F3
artifacts are reproducible in shape but not bit-identical across runs.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.runtime_model import RuntimeSample, fitted_exponent, profile_graph
from repro.experiments.common import TrialRecord
from repro.experiments.runner import SweepAxis, SweepRunner, SweepSpec
from repro.graphs import ensure_connected, mixed_sbm

DEFAULT_SIZES = (64, 128, 256, 512, 1024)
DEFAULT_BASE_SEED = 900


def _trial_seed(point, trial, base_seed) -> int:
    """The historical F3 seed formula plus a trial term.

    The term is zero for trial 0 (the default ``trials=1`` reproduces the
    pre-runner records exactly); extra trials — e.g. via the CLI's global
    ``--trials`` override — profile *independent* graph instances per size
    instead of re-measuring the same graph.
    """
    return base_seed + 7717 * trial + point["n"]


def _trial(
    point,
    trial,
    seed,
    rng,
    num_clusters,
    average_degree,
    precision_bits,
    shots,
    generator_version="v1",
    readout_shards=None,
    store_dir=None,
    linalg_backend="auto",
) -> list[TrialRecord]:
    """Profile one sparse mixed SBM at the point's size.

    ``readout_shards``, ``store_dir`` and ``linalg_backend`` are accepted
    for CLI uniformity but inert: F3 models quantum step counts (and
    profiles fixed explicit eigensolvers) instead of running the staged
    pipeline.
    """
    num_nodes = point["n"]
    # keep the average degree constant so edges grow linearly with n
    p_intra = min(1.0, 2.0 * average_degree / num_nodes)
    graph, _ = mixed_sbm(
        num_nodes,
        num_clusters,
        p_intra=p_intra,
        p_inter=p_intra / 8.0,
        seed=seed,
        generator_version=generator_version,
    )
    ensure_connected(graph, seed=seed - num_nodes)
    sample = profile_graph(
        graph,
        num_clusters,
        precision_bits=precision_bits,
        shots=shots,
    )
    return [
        TrialRecord(
            experiment="F3",
            method="runtime-model",
            parameters={"n": num_nodes},
            seed=seed,
            extra=asdict(sample),
        )
    ]


def samples_from_records(records: list[TrialRecord]) -> list[RuntimeSample]:
    """Rehydrate :class:`RuntimeSample` rows from sweep records."""
    return [RuntimeSample(**record.extra) for record in records]


def spec(
    sizes=DEFAULT_SIZES,
    num_clusters: int = 2,
    average_degree: float = 8.0,
    precision_bits: int = 6,
    shots: int = 256,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
) -> SweepSpec:
    """The declarative F3 sweep (same knobs as :func:`run`)."""
    return SweepSpec(
        name="fig3",
        artifact="Figure 3",
        description="Runtime scaling: quantum step proxy vs classical O(n^3)",
        axes=(SweepAxis("n", tuple(sizes)),),
        trial=_trial,
        seed=_trial_seed,
        base_seed=base_seed,
        trials=1,
        fixed={
            "num_clusters": num_clusters,
            "average_degree": average_degree,
            "precision_bits": precision_bits,
            "shots": shots,
            "generator_version": generator_version,
            "readout_shards": readout_shards,
            "store_dir": store_dir,
            "linalg_backend": linalg_backend,
        },
        render=render_records,
    )


def run(
    sizes=DEFAULT_SIZES,
    num_clusters: int = 2,
    average_degree: float = 8.0,
    precision_bits: int = 6,
    shots: int = 256,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
    jobs: int = 1,
) -> list[RuntimeSample]:
    """Profile one sparse mixed SBM per size (constant average degree)."""
    records = (
        SweepRunner(
            spec(
                sizes=sizes,
                num_clusters=num_clusters,
                average_degree=average_degree,
                precision_bits=precision_bits,
                shots=shots,
                base_seed=base_seed,
                generator_version=generator_version,
                readout_shards=readout_shards,
                store_dir=store_dir,
                linalg_backend=linalg_backend,
            ),
            jobs=jobs,
        )
        .run()
        .records
    )
    return samples_from_records(records)


def exponents(samples: list[RuntimeSample]) -> dict[str, float]:
    """Fitted log-log growth exponents of each runtime series."""
    sizes = [s.num_nodes for s in samples]
    return {
        "quantum_steps": fitted_exponent(sizes, [s.quantum_steps for s in samples]),
        "classical_steps": fitted_exponent(sizes, [s.classical_steps for s in samples]),
        "dense_seconds": fitted_exponent(sizes, [s.dense_seconds for s in samples]),
    }


def series(samples: list[RuntimeSample]) -> str:
    """Markdown rendering of the F3 scaling rows plus fitted exponents."""
    lines = [
        "| n | edges | quantum_steps | classical_steps | dense_s | lanczos_s |",
        "|---|---|---|---|---|---|",
    ]
    for sample in samples:
        row = asdict(sample)
        lines.append(
            "| {num_nodes} | {num_edges} | {quantum_steps:.3e} | "
            "{classical_steps:.3e} | {dense_seconds:.4f} | "
            "{lanczos_seconds:.4f} |".format(**row)
        )
    fits = exponents(samples)
    lines.append("")
    lines.append(
        "fitted exponents: "
        + ", ".join(f"{key}≈n^{value:.2f}" for key, value in fits.items())
    )
    return "\n".join(lines)


def render_records(records: list[TrialRecord]) -> str:
    """Record-level renderer used by the sweep engine and CLI artifacts."""
    return series(samples_from_records(records))


def main() -> str:
    """Run with defaults and return the rendered series."""
    output = series(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
