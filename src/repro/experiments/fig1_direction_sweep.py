"""Experiment F1 — reproduces **Figure 1** of the paper: accuracy versus
direction strength (the crossover figure).

Swept knobs: ``direction_strength`` (the only axis) over per-trial seeds;
fixed knobs: graph size, cluster count, edge density, QPE precision and
shots.  The sweep runs through
:class:`repro.experiments.runner.SweepRunner` and evaluates the full
six-method comparison panel per trial.

Cyclic-flow SBMs hold edge density constant everywhere; sweeping
``direction_strength`` from 0.5 (orientation pure noise) to 1.0 (every
boundary arc points forward) isolates the directional signal.

Expected shape: Hermitian methods (quantum, classical) climb from chance to
perfect as strength grows; symmetrized stays at chance for the entire sweep
because its input is literally independent of the swept parameter.
"""

from __future__ import annotations

from repro.core import QSCConfig
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.experiments.runner import SweepAxis, SweepRunner, SweepSpec
from repro.graphs import cyclic_flow_sbm, ensure_connected

DEFAULT_STRENGTHS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DEFAULT_TRIALS = 5
DEFAULT_BASE_SEED = 500


def _trial_seed(point, trial, base_seed) -> int:
    """The historical F1 per-trial seed formula (records stay identical)."""
    return base_seed + 1009 * trial + int(point["strength"] * 1000)


def _trial(
    point,
    trial,
    seed,
    rng,
    num_nodes,
    num_clusters,
    density,
    precision_bits,
    shots,
    generator_version="v1",
    readout_shards=None,
    store_dir=None,
    linalg_backend="auto",
) -> list[TrialRecord]:
    """One F1 trial: the full method panel on one cyclic-flow SBM."""
    strength = point["strength"]
    graph, truth = cyclic_flow_sbm(
        num_nodes,
        num_clusters,
        density=density,
        direction_strength=strength,
        intra_directed=True,  # orientation is the ONLY signal
        seed=seed,
        generator_version=generator_version,
    )
    ensure_connected(graph, seed=seed)
    config = QSCConfig(
        precision_bits=precision_bits,
        shots=shots,
        seed=seed,
        generator_version=generator_version,
        readout_shards=readout_shards,
        store_dir=store_dir,
        linalg_backend=linalg_backend,
    )
    methods = standard_methods(num_clusters, seed, config)
    return evaluate_methods("F1", methods, graph, truth, {"strength": strength}, seed)


def spec(
    strengths=DEFAULT_STRENGTHS,
    num_nodes: int = 72,
    num_clusters: int = 3,
    density: float = 0.3,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 1024,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
) -> SweepSpec:
    """The declarative F1 sweep (same knobs as :func:`run`).

    ``generator_version`` picks the graph-generator seed contract; it is
    recorded in the sweep's ``fixed`` parameters, so every JSON artifact
    states which contract produced its graphs.  ``readout_shards`` runs
    every quantum fit's readout stage sharded (bit-identical records; the
    value is likewise recorded in ``fixed``).  ``linalg_backend`` selects
    the linalg backend of every quantum fit (recorded in ``fixed`` and in
    the artifact's stage profile).
    """
    return SweepSpec(
        name="fig1",
        artifact="Figure 1",
        description="Direction-strength sweep: six-method crossover curves",
        axes=(SweepAxis("strength", tuple(strengths)),),
        trial=_trial,
        seed=_trial_seed,
        base_seed=base_seed,
        trials=trials,
        fixed={
            "num_nodes": num_nodes,
            "num_clusters": num_clusters,
            "density": density,
            "precision_bits": precision_bits,
            "shots": shots,
            "generator_version": generator_version,
            "readout_shards": readout_shards,
            "store_dir": store_dir,
            "linalg_backend": linalg_backend,
        },
        render=series,
    )


def run(
    strengths=DEFAULT_STRENGTHS,
    num_nodes: int = 72,
    num_clusters: int = 3,
    density: float = 0.3,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 1024,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
    jobs: int = 1,
) -> list[TrialRecord]:
    """Run the F1 direction-strength sweep through the sweep engine."""
    return (
        SweepRunner(
            spec(
                strengths=strengths,
                num_nodes=num_nodes,
                num_clusters=num_clusters,
                density=density,
                trials=trials,
                precision_bits=precision_bits,
                shots=shots,
                base_seed=base_seed,
                generator_version=generator_version,
                readout_shards=readout_shards,
                store_dir=store_dir,
                linalg_backend=linalg_backend,
            ),
            jobs=jobs,
        )
        .run()
        .records
    )


def series(records: list[TrialRecord]) -> str:
    """Markdown rendering of the F1 curves (one row per point)."""
    rows = aggregate(records, ("strength",))
    return render_markdown_table(
        rows, ["strength", "method", "trials", "ari_mean", "ari_std"]
    )


def main() -> str:
    """Run with defaults and return the rendered series."""
    output = series(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
