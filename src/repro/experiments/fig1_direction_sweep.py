"""Experiment F1 — accuracy versus direction strength (the crossover figure).

Cyclic-flow SBMs hold edge density constant everywhere; sweeping
``direction_strength`` from 0.5 (orientation pure noise) to 1.0 (every
boundary arc points forward) isolates the directional signal.

Expected shape: Hermitian methods (quantum, classical) climb from chance to
perfect as strength grows; symmetrized stays at chance for the entire sweep
because its input is literally independent of the swept parameter.
"""

from __future__ import annotations

from repro.core import QSCConfig
from repro.experiments.common import (
    TrialRecord,
    aggregate,
    evaluate_methods,
    render_markdown_table,
    standard_methods,
)
from repro.graphs import cyclic_flow_sbm, ensure_connected

DEFAULT_STRENGTHS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
DEFAULT_TRIALS = 5


def run(
    strengths=DEFAULT_STRENGTHS,
    num_nodes: int = 72,
    num_clusters: int = 3,
    density: float = 0.3,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    shots: int = 1024,
    base_seed: int = 500,
) -> list[TrialRecord]:
    """Run the F1 direction-strength sweep."""
    records = []
    for strength in strengths:
        for trial in range(trials):
            seed = base_seed + 1009 * trial + int(strength * 1000)
            graph, truth = cyclic_flow_sbm(
                num_nodes,
                num_clusters,
                density=density,
                direction_strength=strength,
                intra_directed=True,  # orientation is the ONLY signal
                seed=seed,
            )
            ensure_connected(graph, seed=seed)
            config = QSCConfig(
                precision_bits=precision_bits, shots=shots, seed=seed
            )
            methods = standard_methods(num_clusters, seed, config)
            records.extend(
                evaluate_methods(
                    "F1",
                    methods,
                    graph,
                    truth,
                    {"strength": strength},
                    seed,
                )
            )
    return records


def series(records: list[TrialRecord]) -> str:
    """Markdown rendering of the F1 curves (one row per point)."""
    rows = aggregate(records, ("strength",))
    return render_markdown_table(
        rows, ["strength", "method", "trials", "ari_mean", "ari_std"]
    )


def main() -> str:
    """Run with defaults and return the rendered series."""
    output = series(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
