"""Ablations A1–A5: Trotter, θ phase, gate noise, auto-k, VQE front end.

* **A1** — QPE eigenvalue error and end-to-end agreement versus Trotter
  steps/order on small graphs (circuit backend).
* **A2** — classical-Hermitian ARI on flow SBMs versus the arc phase θ;
  the directional signal vanishes as θ → 0 and is strongest near π/2.
* **A3** — QPE readout corruption under depolarizing + readout noise,
  scanning error rates (the NISQ outlook).
* **A4** — quantum model selection: recovering the cluster count k from
  sampled QPE histograms alone, versus the classical eigengap oracle.
* **A5** — the variational (VQE) front end as a NISQ substitute for QPE:
  eigenvalue accuracy and end-to-end agreement on small graphs.
* **A6** — hypergraph-expansion ablation: clique versus star expansion of
  netlist nets and their effect on module recovery.

These reproduce the paper's ablation paragraphs rather than a numbered
figure/table; each function states the knob it varies (Trotter steps and
order, arc phase θ, noise rates, shot budget, VQE depth, net expansion).
They are deliberate one-off scans, not :class:`SweepSpec` sweeps — the
declarative engine in :mod:`repro.experiments.runner` covers the six
figure/table artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.core.qpe_engine import CircuitQPEBackend, pad_laplacian
from repro.graphs import (
    cyclic_flow_sbm,
    ensure_connected,
    hermitian_laplacian,
    mixed_sbm,
)
from repro.metrics import adjusted_rand_index
from repro.quantum.hamiltonian import exact_evolution, trotter_error
from repro.quantum.noise import NoiseModel, noisy_sample_counts
from repro.quantum.phase_estimation import qpe_circuit
from repro.spectral import ClassicalSpectralClustering


def trotter_ablation(
    steps_list=(1, 2, 4, 8, 16, 32),
    orders=(1, 2),
    num_nodes: int = 8,
    seed: int = 0,
) -> list[dict]:
    """A1: unitary error and QPE-distribution deviation versus Trotter depth."""
    graph, _ = mixed_sbm(num_nodes, 2, p_intra=0.8, p_inter=0.1, seed=seed)
    ensure_connected(graph, seed=seed)
    laplacian = pad_laplacian(hermitian_laplacian(graph))
    time = 2.0 * np.pi / 2.125
    exact_backend = CircuitQPEBackend(hermitian_laplacian(graph), 4, evolution="exact")
    exact_dist = exact_backend.node_outcome_distribution(0)
    rows = []
    for order in orders:
        for steps in steps_list:
            unitary_error = trotter_error(laplacian, time, steps, order=order)
            backend = CircuitQPEBackend(
                hermitian_laplacian(graph),
                4,
                evolution="trotter",
                trotter_steps=steps,
                trotter_order=order,
            )
            deviation = float(
                np.abs(backend.node_outcome_distribution(0) - exact_dist).sum()
            ) / 2.0
            rows.append(
                {
                    "order": order,
                    "steps": steps,
                    "unitary_error": float(unitary_error),
                    "qpe_tv_distance": deviation,
                }
            )
    return rows


def theta_ablation(
    thetas=(np.pi / 16, np.pi / 8, np.pi / 4, 3 * np.pi / 8, np.pi / 2),
    num_nodes: int = 60,
    num_clusters: int = 3,
    trials: int = 5,
    base_seed: int = 1300,
) -> list[dict]:
    """A2: flow-SBM recovery versus Hermitian phase angle θ."""
    rows = []
    for theta in thetas:
        scores = []
        for trial in range(trials):
            seed = base_seed + trial
            graph, truth = cyclic_flow_sbm(
                num_nodes,
                num_clusters,
                density=0.3,
                direction_strength=0.95,
                seed=seed,
            )
            ensure_connected(graph, seed=seed)
            labels = (
                ClassicalSpectralClustering(num_clusters, theta=float(theta), seed=seed)
                .fit(graph)
                .labels
            )
            scores.append(adjusted_rand_index(truth, labels))
        rows.append(
            {
                "theta": float(theta),
                "ari_mean": float(np.mean(scores)),
                "ari_std": float(np.std(scores)),
            }
        )
    return rows


def noise_ablation(
    depolarizing_rates=(0.0, 0.002, 0.01, 0.05),
    num_nodes: int = 6,
    precision_bits: int = 3,
    shots: int = 1500,
    seed: int = 1500,
) -> list[dict]:
    """A3: QPE readout corruption under depolarizing + readout noise.

    Runs the actual QPE circuit of a small mixed graph through the
    Monte-Carlo noise simulator and reports the total-variation distance
    between noisy and ideal ancilla readout distributions — the quantity
    that corrupts threshold selection (and hence clustering) on NISQ
    hardware.
    """
    graph, _ = mixed_sbm(num_nodes, 2, p_intra=0.9, p_inter=0.1, seed=seed)
    ensure_connected(graph, seed=seed)
    laplacian = hermitian_laplacian(graph)
    unitary = exact_evolution(pad_laplacian(laplacian), 2.0 * np.pi / 2.125)
    circuit = qpe_circuit(unitary, precision_bits)
    ancillas = list(range(precision_bits))
    # Exact (infinite-shot) noiseless reference — so the rate = 0 row shows
    # pure sampling noise and the noisy rows isolate the hardware effect.
    ideal = circuit.statevector().marginal_probabilities(ancillas)
    rows = []
    size = 2**precision_bits
    for rate in depolarizing_rates:
        noisy = np.zeros(size)
        counts = noisy_sample_counts(
            circuit,
            shots=shots,
            noise=NoiseModel(depolarizing_rate=rate, readout_error=rate),
            qubits=ancillas,
            seed=seed + 1,
        )
        for outcome, count in counts.items():
            noisy[outcome] = count / shots
        rows.append(
            {
                "depolarizing_rate": rate,
                "qpe_tv_distance": float(np.abs(noisy - ideal).sum() / 2.0),
            }
        )
    return rows


def autok_ablation(
    cluster_counts=(2, 3, 4),
    num_nodes: int = 40,
    precision_bits: int = 7,
    shots: int = 16384,
    trials: int = 5,
    base_seed: int = 1700,
) -> list[dict]:
    """A4: success rate of histogram-only k selection per true k."""
    from repro.core import estimate_num_clusters_quantum
    from repro.core.qpe_engine import AnalyticQPEBackend
    from repro.spectral import estimate_num_clusters
    from repro.graphs import laplacian_spectrum

    rows = []
    for k_true in cluster_counts:
        quantum_hits = 0
        classical_hits = 0
        for trial in range(trials):
            seed = base_seed + 13 * trial + k_true
            graph, _ = mixed_sbm(
                num_nodes, k_true, p_intra=0.7, p_inter=0.02, seed=seed
            )
            ensure_connected(graph, seed=seed)
            backend = AnalyticQPEBackend(hermitian_laplacian(graph), precision_bits)
            histogram = backend.eigenvalue_histogram(shots, np.random.default_rng(seed))
            quantum_k = estimate_num_clusters_quantum(
                histogram, num_nodes, precision_bits, backend.lambda_scale
            ).num_clusters
            values, _ = laplacian_spectrum(graph)
            classical_k = estimate_num_clusters(values)
            quantum_hits += int(quantum_k == k_true)
            classical_hits += int(classical_k == k_true)
        rows.append(
            {
                "k_true": k_true,
                "quantum_hit_rate": quantum_hits / trials,
                "classical_hit_rate": classical_hits / trials,
            }
        )
    return rows


def vqe_ablation(
    num_nodes: int = 8,
    num_clusters: int = 2,
    layers: int = 3,
    trials: int = 3,
    base_seed: int = 1900,
) -> list[dict]:
    """A5: deflated-VQE eigenvalue error and embedding agreement with exact.

    For each trial graph, VQE extracts the k lowest Laplacian eigenpairs;
    rows report the worst eigenvalue error and the subspace fidelity
    (principal-angle overlap) against the exact eigenvectors.
    """
    from repro.quantum import VQESolver

    rows = []
    for trial in range(trials):
        seed = base_seed + trial
        graph, _ = mixed_sbm(
            num_nodes, num_clusters, p_intra=0.8, p_inter=0.05, seed=seed
        )
        ensure_connected(graph, seed=seed)
        # pad to a power-of-two dimension (same convention as the QPE
        # engine; padded eigenvalues sit at the top of the spectrum)
        laplacian = pad_laplacian(hermitian_laplacian(graph))
        solver = VQESolver(layers=layers, max_iterations=250, seed=seed)
        result = solver.solve(laplacian, k=num_clusters)
        exact_values, exact_vectors = np.linalg.eigh(laplacian)
        value_error = float(
            np.abs(result.eigenvalues - exact_values[:num_clusters]).max()
        )
        overlap_matrix = (
            exact_vectors[:, :num_clusters].conj().T @ result.eigenvectors
        )
        subspace_fidelity = float(np.linalg.svd(overlap_matrix, compute_uv=False).min())
        rows.append(
            {
                "seed": seed,
                "eigenvalue_error": value_error,
                "subspace_fidelity": subspace_fidelity,
                "optimizer_steps": result.iterations,
            }
        )
    return rows


def expansion_ablation(
    expansions=("clique", "star"),
    num_modules: int = 3,
    gates_per_module: int = 14,
    trials: int = 5,
    base_seed: int = 2100,
) -> list[dict]:
    """A6: net-expansion style versus netlist module recovery.

    Clique expansion adds undirected sink–sink coupling (density signal);
    star expansion keeps only driver→sink arcs (pure flow signal).  Both
    are clustered classically (θ = π/4) against module ground truth.
    """
    from repro.graphs import Hypergraph, synthetic_netlist
    from repro.spectral import ClassicalSpectralClustering as CSC

    rows = []
    for expansion in expansions:
        scores = []
        for trial in range(trials):
            seed = base_seed + trial
            netlist = synthetic_netlist(
                num_modules,
                gates_per_module,
                internal_fanin=3,
                cross_module_nets=2,
                feedback_registers=3,
                seed=seed,
            )
            hypergraph = Hypergraph.from_netlist(netlist)
            graph = hypergraph.to_mixed_graph(expansion)
            ensure_connected(graph, seed=seed)
            labels = (
                CSC(num_modules, theta=float(np.pi / 4), seed=seed)
                .fit(graph)
                .labels
            )
            truth = netlist.module_labels()
            scores.append(adjusted_rand_index(truth, labels))
        rows.append(
            {
                "expansion": expansion,
                "ari_mean": float(np.mean(scores)),
                "ari_std": float(np.std(scores)),
            }
        )
    return rows


def main() -> str:
    """Run all six ablations and return a textual report."""
    lines = ["A1 (Trotter):"]
    for row in trotter_ablation():
        lines.append(
            "  order={order} steps={steps:>3} unitary_err={unitary_error:.4f} "
            "qpe_tv={qpe_tv_distance:.4f}".format(**row)
        )
    lines.append("A2 (theta):")
    for row in theta_ablation():
        lines.append(
            "  theta={theta:.3f} ari={ari_mean:.3f}±{ari_std:.3f}".format(**row)
        )
    lines.append("A3 (noise):")
    for row in noise_ablation():
        lines.append(
            "  rate={depolarizing_rate} qpe_tv={qpe_tv_distance:.3f}".format(**row)
        )
    lines.append("A4 (auto-k):")
    for row in autok_ablation():
        lines.append(
            "  k={k_true} quantum_hit={quantum_hit_rate:.2f} "
            "classical_hit={classical_hit_rate:.2f}".format(**row)
        )
    lines.append("A5 (VQE front end):")
    for row in vqe_ablation():
        lines.append(
            "  seed={seed} eig_err={eigenvalue_error:.4f} "
            "fidelity={subspace_fidelity:.4f} steps={optimizer_steps}".format(**row)
        )
    lines.append("A6 (net expansion):")
    for row in expansion_ablation():
        lines.append("  {expansion}: ari={ari_mean:.3f}±{ari_std:.3f}".format(**row))
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
