"""Experiment F4 — reproduces **Figure 4** of the paper: clustering
accuracy versus the tomography shot budget.

Swept knobs: the per-node measurement budget ``shots`` (the only axis)
over per-trial seeds; fixed knobs: graph size, cluster count and QPE
precision.  The sweep runs through
:class:`repro.experiments.runner.SweepRunner`.

Expected shape: ARI rises with shots and saturates at the exact-readout
ceiling (shots = 0 is the noiseless reference); the embedding error
alongside follows the 1/√shots tomography law.

Each trial fits the staged pipeline twice on the same graph — noiseless
reference, then finite shots.  The second fit *resumes from the readout
stage* against the first fit's in-memory stage state
(:class:`repro.pipeline.QSCPipeline` with ``resume_from="readout"``): the
Laplacian, backend, histogram and threshold are shared outright, so the
noisy fit re-runs only the shot-dependent stages.  Stage RNG streams are
independent, so the resumed fit is bit-identical to a full fit at the same
seed — the records are unchanged from the pre-staged implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core import QSCConfig
from repro.experiments.common import TrialRecord, aggregate, render_markdown_table
from repro.experiments.runner import SweepAxis, SweepRunner, SweepSpec
from repro.graphs import ensure_connected, mixed_sbm
from repro.metrics import adjusted_rand_index, matched_accuracy
from repro.pipeline import QSCPipeline

DEFAULT_SHOTS = (16, 64, 256, 1024, 4096)
DEFAULT_TRIALS = 5
DEFAULT_BASE_SEED = 1100


def _trial_seed(point, trial, base_seed) -> int:
    """The historical F4 per-trial seed formula (records stay identical)."""
    return base_seed + 53 * trial + point["shots"]


def _trial(
    point,
    trial,
    seed,
    rng,
    num_nodes,
    num_clusters,
    precision_bits,
    generator_version="v1",
    readout_shards=None,
    store_dir=None,
    linalg_backend="auto",
) -> list[TrialRecord]:
    """One F4 trial: noiseless reference fit + finite-shot fit."""
    shots = point["shots"]
    graph, truth = mixed_sbm(
        num_nodes,
        num_clusters,
        p_intra=0.4,
        p_inter=0.05,
        seed=seed,
        generator_version=generator_version,
    )
    ensure_connected(graph, seed=seed)
    reference = QSCPipeline(
        num_clusters,
        QSCConfig(
            precision_bits=precision_bits,
            shots=0,
            seed=seed,
            generator_version=generator_version,
            readout_shards=readout_shards,
            store_dir=store_dir,
            linalg_backend=linalg_backend,
        ),
    )
    noiseless = reference.run(graph)
    # The noisy fit differs only in the shot budget, which first matters in
    # the readout stage — resume there against the reference fit's stage
    # state (same seed ⇒ identical laplacian/threshold outputs, and the
    # readout/qmeans RNG streams are unaffected by the skip).
    noisy = QSCPipeline(
        num_clusters,
        QSCConfig(
            precision_bits=precision_bits,
            shots=shots,
            seed=seed,
            generator_version=generator_version,
            readout_shards=readout_shards,
            store_dir=store_dir,
            linalg_backend=linalg_backend,
        ),
    ).run(graph, resume_from="readout", upstream=reference.state)
    embedding_error = float(
        np.linalg.norm(noisy.embedding - noiseless.embedding)
        / max(np.linalg.norm(noiseless.embedding), 1e-12)
    )
    return [
        TrialRecord(
            experiment="F4",
            method="quantum-analytic",
            parameters={"shots": shots},
            seed=seed,
            ari=adjusted_rand_index(truth, noisy.labels),
            accuracy=matched_accuracy(truth, noisy.labels),
            extra={"embedding_error": embedding_error},
        )
    ]


def spec(
    shot_budgets=DEFAULT_SHOTS,
    num_nodes: int = 48,
    num_clusters: int = 2,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
) -> SweepSpec:
    """The declarative F4 sweep (same knobs as :func:`run`)."""
    return SweepSpec(
        name="fig4",
        artifact="Figure 4",
        description="Tomography shot-budget sweep: ARI and embedding error",
        axes=(SweepAxis("shots", tuple(shot_budgets)),),
        trial=_trial,
        seed=_trial_seed,
        base_seed=base_seed,
        trials=trials,
        fixed={
            "num_nodes": num_nodes,
            "num_clusters": num_clusters,
            "precision_bits": precision_bits,
            "generator_version": generator_version,
            "readout_shards": readout_shards,
            "store_dir": store_dir,
            "linalg_backend": linalg_backend,
        },
        render=series,
    )


def run(
    shot_budgets=DEFAULT_SHOTS,
    num_nodes: int = 48,
    num_clusters: int = 2,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    base_seed: int = DEFAULT_BASE_SEED,
    generator_version: str = "v1",
    readout_shards: int | None = None,
    store_dir: str | None = None,
    linalg_backend: str = "auto",
    jobs: int = 1,
) -> list[TrialRecord]:
    """Run the F4 shots sweep through the sweep engine."""
    return (
        SweepRunner(
            spec(
                shot_budgets=shot_budgets,
                num_nodes=num_nodes,
                num_clusters=num_clusters,
                trials=trials,
                precision_bits=precision_bits,
                base_seed=base_seed,
                generator_version=generator_version,
                readout_shards=readout_shards,
                store_dir=store_dir,
                linalg_backend=linalg_backend,
            ),
            jobs=jobs,
        )
        .run()
        .records
    )


def series(records: list[TrialRecord]) -> str:
    """Markdown rendering of the F4 curve with mean embedding error."""
    rows = aggregate(records, ("shots",))
    # attach the mean embedding error per shot budget
    error_by_shots: dict[int, list[float]] = {}
    for record in records:
        error_by_shots.setdefault(record.parameters["shots"], []).append(
            record.extra["embedding_error"]
        )
    for row in rows:
        row["embed_err"] = float(np.mean(error_by_shots[row["shots"]]))
    return render_markdown_table(
        rows, ["shots", "method", "trials", "ari_mean", "ari_std", "embed_err"]
    )


def main() -> str:
    """Run with defaults and return the rendered series."""
    output = series(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
