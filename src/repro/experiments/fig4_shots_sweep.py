"""Experiment F4 — accuracy versus tomography shot budget.

Sweeps the per-node measurement budget.  Expected shape: ARI rises with
shots and saturates at the exact-readout ceiling (shots = 0 is the
noiseless reference); the embedding error alongside follows the 1/√shots
tomography law.
"""

from __future__ import annotations

import numpy as np

from repro.core import QSCConfig, QuantumSpectralClustering
from repro.experiments.common import TrialRecord, aggregate, render_markdown_table
from repro.graphs import ensure_connected, mixed_sbm
from repro.metrics import adjusted_rand_index, matched_accuracy

DEFAULT_SHOTS = (16, 64, 256, 1024, 4096)
DEFAULT_TRIALS = 5


def run(
    shot_budgets=DEFAULT_SHOTS,
    num_nodes: int = 48,
    num_clusters: int = 2,
    trials: int = DEFAULT_TRIALS,
    precision_bits: int = 7,
    base_seed: int = 1100,
) -> list[TrialRecord]:
    """Run the F4 shots sweep (analytic backend)."""
    records = []
    for shots in shot_budgets:
        for trial in range(trials):
            seed = base_seed + 53 * trial + shots
            graph, truth = mixed_sbm(
                num_nodes, num_clusters, p_intra=0.4, p_inter=0.05, seed=seed
            )
            ensure_connected(graph, seed=seed)
            noiseless = QuantumSpectralClustering(
                num_clusters,
                QSCConfig(precision_bits=precision_bits, shots=0, seed=seed),
            ).fit(graph)
            noisy = QuantumSpectralClustering(
                num_clusters,
                QSCConfig(precision_bits=precision_bits, shots=shots, seed=seed),
            ).fit(graph)
            embedding_error = float(
                np.linalg.norm(noisy.embedding - noiseless.embedding)
                / max(np.linalg.norm(noiseless.embedding), 1e-12)
            )
            records.append(
                TrialRecord(
                    experiment="F4",
                    method="quantum-analytic",
                    parameters={"shots": shots},
                    seed=seed,
                    ari=adjusted_rand_index(truth, noisy.labels),
                    accuracy=matched_accuracy(truth, noisy.labels),
                    extra={"embedding_error": embedding_error},
                )
            )
    return records


def series(records: list[TrialRecord]) -> str:
    """Markdown rendering of the F4 curve with mean embedding error."""
    rows = aggregate(records, ("shots",))
    # attach the mean embedding error per shot budget
    error_by_shots: dict[int, list[float]] = {}
    for record in records:
        error_by_shots.setdefault(record.parameters["shots"], []).append(
            record.extra["embedding_error"]
        )
    for row in rows:
        row["embed_err"] = float(np.mean(error_by_shots[row["shots"]]))
    return render_markdown_table(
        rows, ["shots", "method", "trials", "ari_mean", "ari_std", "embed_err"]
    )


def main() -> str:
    """Run with defaults and return the rendered series."""
    output = series(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
