"""The stable public facade: three verbs covering the common workflows.

``repro.api`` is the surface external code should import — everything
here is covered by the compatibility promise of the versioned service
API (``/v1``, protocol version 1), whereas deep imports like
``repro.core.qpe_engine`` are internal and may move between releases.

* :func:`cluster` — cluster one mixed graph, quantum or classical.
* :func:`run_experiment` — run a registered paper sweep locally,
  validated exactly like a served job.
* :func:`connect` — a :class:`~repro.service.client.ServiceClient` for
  a running ``repro serve`` instance (URL or ``host:port``, optional
  bearer token).

>>> from repro import api
>>> graph, truth = api.mixed_sbm(24, 2, seed=0)
>>> result = api.cluster(graph, 2, method="classical", seed=0)
>>> len(result.labels) == graph.num_nodes
True
"""

from __future__ import annotations

from dataclasses import replace
from urllib.parse import urlsplit

from repro.core import QSCConfig, QSCResult, QuantumSpectralClustering
from repro.exceptions import ClusteringError, ServiceError
from repro.graphs import MixedGraph, mixed_sbm
from repro.service.client import ServiceClient
from repro.spectral import ClassicalSpectralClustering

__all__ = [
    "MixedGraph",
    "QSCConfig",
    "QSCResult",
    "ServiceClient",
    "cluster",
    "connect",
    "mixed_sbm",
    "run_experiment",
]

#: Port ``repro serve`` binds when none is given (mirrors the CLI default).
DEFAULT_PORT = 8831

_CLASSICAL_FIELDS = (
    "theta",
    "normalization",
    "normalize_rows",
    "backend",
    "seed",
)


def cluster(
    graph: MixedGraph,
    num_clusters,
    *,
    method: str = "quantum",
    config: QSCConfig | None = None,
    **fields,
):
    """Cluster one mixed graph; returns the estimator's result object.

    ``method="quantum"`` runs the paper's QPE pipeline
    (:class:`~repro.core.qsc.QuantumSpectralClustering`); extra keyword
    ``fields`` override :class:`~repro.core.config.QSCConfig` attributes
    (on top of ``config`` when both are given).  ``method="classical"``
    runs the exact Hermitian baseline; ``fields`` then go to
    :class:`~repro.spectral.clustering.ClassicalSpectralClustering`
    (``config`` must be omitted).
    """
    if method == "quantum":
        resolved = config if config is not None else QSCConfig()
        if fields:
            resolved = replace(resolved, **fields)
        return QuantumSpectralClustering(num_clusters, resolved).fit(graph)
    if method == "classical":
        if config is not None:
            raise ClusteringError(
                "config is a quantum-pipeline object; pass classical "
                "options as keyword fields instead"
            )
        unknown = sorted(set(fields) - set(_CLASSICAL_FIELDS))
        if unknown:
            raise ClusteringError(
                f"unknown classical clustering fields: {unknown} "
                f"(accepted: {list(_CLASSICAL_FIELDS)})"
            )
        return ClassicalSpectralClustering(num_clusters, **fields).fit(graph)
    raise ClusteringError(
        f"method must be 'quantum' or 'classical', got {method!r}"
    )


def run_experiment(name: str, *, trials=None, jobs: int = 1, **overrides):
    """Run one registered paper sweep locally; returns its SweepResult.

    The request is validated through the same
    :func:`~repro.experiments.runner.normalize_job` path a served job
    goes through, so a job object that the service would accept runs
    identically here (and vice versa): ``run_experiment("fig1",
    trials=1).to_artifact()`` is record-identical to submitting
    ``{"experiment": "fig1", "trials": 1}``.
    """
    from repro.experiments.runner import (
        SweepRunner,
        normalize_job,
        spec_from_job,
    )

    job: dict = {"experiment": name}
    if trials is not None:
        job["trials"] = trials
    if overrides:
        job["overrides"] = overrides
    spec = spec_from_job(normalize_job(job))
    return SweepRunner(spec, jobs=jobs).run()


def connect(
    url: str, *, token: str | None = None, timeout: float = 120.0
) -> ServiceClient:
    """A client for a running ``repro serve`` instance.

    ``url`` is anything naming the endpoint: ``"127.0.0.1:8831"``,
    ``"localhost"`` (default port), or a ``http://host:port`` URL.  The
    optional bearer ``token`` identifies the tenant on an authenticated
    server.
    """
    target = url.strip()
    if "//" in target:
        parsed = urlsplit(target)
        host, port = parsed.hostname, parsed.port
    else:
        host, _, tail = target.partition(":")
        port = tail or None
    if not host:
        raise ServiceError(f"cannot parse service endpoint from {url!r}")
    try:
        port = DEFAULT_PORT if port is None else int(port)
    except ValueError as error:
        raise ServiceError(f"bad port in service endpoint {url!r}") from error
    return ServiceClient(host, port, timeout=timeout, token=token)
