"""Graph-partition quality metrics for mixed graphs.

Besides standard cut size and modularity, mixed graphs admit *directional*
metrics: :func:`flow_ratio` and :func:`cut_imbalance` quantify how
consistently arcs point from one cluster to another — the signal Hermitian
clustering extracts and symmetrized baselines destroy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph


def _validate_labels(graph: MixedGraph, labels) -> np.ndarray:
    labels = np.asarray(labels, dtype=int).ravel()
    if labels.size != graph.num_nodes:
        raise ClusteringError(
            f"{labels.size} labels for a {graph.num_nodes}-node graph"
        )
    return labels


def cut_weight(graph: MixedGraph, labels) -> float:
    """Total weight of connections crossing cluster boundaries."""
    labels = _validate_labels(graph, labels)
    total = 0.0
    for edge in graph.edges():
        if labels[edge.u] != labels[edge.v]:
            total += edge.weight
    return total


def directed_cut_matrix(graph: MixedGraph, labels) -> np.ndarray:
    """F[a, b] = total arc weight flowing from cluster a to cluster b."""
    labels = _validate_labels(graph, labels)
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    flow = np.zeros((num_clusters, num_clusters))
    for edge in graph.edges():
        if not edge.directed:
            continue
        a, b = labels[edge.u], labels[edge.v]
        if a != b:
            flow[a, b] += edge.weight
    return flow


def cut_imbalance(graph: MixedGraph, labels) -> float:
    """Mean pairwise cut imbalance CI ∈ [0, 0.5].

    For clusters a, b with boundary flows w(a→b), w(b→a):
    CI_ab = |w(a→b) − w(b→a)| / (2 (w(a→b) + w(b→a))).  A perfect
    one-directional flow scores 0.5; orientation-free noise scores ~0.
    Pairs with no boundary arcs are skipped.
    """
    flow = directed_cut_matrix(graph, labels)
    k = flow.shape[0]
    scores = []
    for a in range(k):
        for b in range(a + 1, k):
            total = flow[a, b] + flow[b, a]
            if total > 0:
                scores.append(abs(flow[a, b] - flow[b, a]) / (2.0 * total))
    return float(np.mean(scores)) if scores else 0.0


def flow_ratio(graph: MixedGraph, labels) -> float:
    """Fraction of boundary arc weight on the majority direction per pair.

    1.0 means every boundary arc between any two clusters agrees in
    direction; 0.5 means orientation carries no information.
    """
    flow = directed_cut_matrix(graph, labels)
    k = flow.shape[0]
    majority = 0.0
    total = 0.0
    for a in range(k):
        for b in range(a + 1, k):
            pair_total = flow[a, b] + flow[b, a]
            majority += max(flow[a, b], flow[b, a])
            total += pair_total
    return float(majority / total) if total > 0 else 0.5


def mixed_modularity(graph: MixedGraph, labels) -> float:
    """Newman modularity of the symmetrized graph under ``labels``.

    Directional structure is intentionally ignored here — this metric shows
    what a direction-blind objective thinks of a partition, which is the
    point of reporting it next to :func:`cut_imbalance`.
    """
    labels = _validate_labels(graph, labels)
    # Per-cluster closed form Q = Σ_c [e_c/2m − (d_c/2m)²] — identical to
    # the Σ_same (A − ddᵀ/2m)/2m definition but O(edges + n) instead of
    # three n × n dense intermediates (2 GB transient at 10k nodes).
    u, v, w, _ = graph.edge_arrays()
    degrees = graph.degrees()
    double_weight = degrees.sum()  # = 2m
    if double_weight <= 0:
        raise ClusteringError("graph has no connections")
    num_clusters = int(labels.max()) + 1
    same = labels[u] == labels[v]
    intra = np.bincount(labels[u[same]], weights=2.0 * w[same], minlength=num_clusters)
    cluster_degrees = np.bincount(labels, weights=degrees, minlength=num_clusters)
    return float(
        (intra / double_weight).sum()
        - ((cluster_degrees / double_weight) ** 2).sum()
    )


def partition_summary(graph: MixedGraph, labels) -> dict[str, float]:
    """All partition metrics in one dictionary."""
    return {
        "cut_weight": cut_weight(graph, labels),
        "cut_imbalance": cut_imbalance(graph, labels),
        "flow_ratio": flow_ratio(graph, labels),
        "modularity": mixed_modularity(graph, labels),
    }
