"""Conductance and normalized-cut metrics for mixed-graph partitions.

Complements ``graph_metrics``: conductance φ(S) = cut(S, S̄) / min(vol S,
vol S̄) is the objective normalized spectral clustering approximately
minimizes (Cheeger), so reporting it alongside ARI connects the clustering
tables back to the spectral theory.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph


def _prepare(graph: MixedGraph, labels) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=int).ravel()
    if labels.size != graph.num_nodes:
        raise ClusteringError(
            f"{labels.size} labels for a {graph.num_nodes}-node graph"
        )
    return graph.symmetrized_adjacency(), labels


def set_conductance(graph: MixedGraph, node_set) -> float:
    """Conductance of one node set S against its complement."""
    adjacency = graph.symmetrized_adjacency()
    n = graph.num_nodes
    mask = np.zeros(n, dtype=bool)
    for node in node_set:
        if not 0 <= int(node) < n:
            raise ClusteringError(f"node {node} out of range")
        mask[int(node)] = True
    if not mask.any() or mask.all():
        raise ClusteringError("node set must be a proper nonempty subset")
    cut = float(adjacency[mask][:, ~mask].sum())
    volume_s = float(adjacency[mask].sum())
    volume_rest = float(adjacency[~mask].sum())
    denominator = min(volume_s, volume_rest)
    if denominator <= 0:
        return 1.0 if cut > 0 else 0.0
    return cut / denominator


def partition_conductance(graph: MixedGraph, labels) -> np.ndarray:
    """Per-cluster conductance vector (ascending cluster index)."""
    adjacency, labels = _prepare(graph, labels)
    clusters = np.unique(labels)
    if clusters.size < 2:
        raise ClusteringError("conductance needs at least two clusters")
    values = []
    for cluster in clusters:
        mask = labels == cluster
        cut = float(adjacency[mask][:, ~mask].sum())
        volume_s = float(adjacency[mask].sum())
        volume_rest = float(adjacency[~mask].sum())
        denominator = min(volume_s, volume_rest)
        values.append(cut / denominator if denominator > 0 else 1.0)
    return np.asarray(values)


def normalized_cut(graph: MixedGraph, labels) -> float:
    """Shi–Malik normalized cut: Σ_c cut(c, c̄) / vol(c)."""
    adjacency, labels = _prepare(graph, labels)
    clusters = np.unique(labels)
    if clusters.size < 2:
        raise ClusteringError("normalized cut needs at least two clusters")
    total = 0.0
    for cluster in clusters:
        mask = labels == cluster
        cut = float(adjacency[mask][:, ~mask].sum())
        volume = float(adjacency[mask].sum())
        if volume > 0:
            total += cut / volume
        elif cut > 0:
            total += 1.0
    return total


def cheeger_upper_bound(lambda_2: float) -> float:
    """Cheeger: φ(G) <= sqrt(2 λ₂) for the normalized Laplacian."""
    if lambda_2 < -1e-12:
        raise ClusteringError("lambda_2 must be non-negative")
    return float(np.sqrt(2.0 * max(lambda_2, 0.0)))
