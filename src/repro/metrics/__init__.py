"""Clustering-quality and graph-partition metrics."""

from repro.metrics.clustering_metrics import (
    adjusted_rand_index,
    clustering_report,
    contingency_table,
    matched_accuracy,
    misclassified_count,
    normalized_mutual_information,
)
from repro.metrics.conductance import (
    cheeger_upper_bound,
    normalized_cut,
    partition_conductance,
    set_conductance,
)
from repro.metrics.graph_metrics import (
    cut_imbalance,
    cut_weight,
    directed_cut_matrix,
    flow_ratio,
    mixed_modularity,
    partition_summary,
)

__all__ = [
    "cheeger_upper_bound",
    "normalized_cut",
    "partition_conductance",
    "set_conductance",
    "adjusted_rand_index",
    "clustering_report",
    "contingency_table",
    "matched_accuracy",
    "misclassified_count",
    "normalized_mutual_information",
    "cut_imbalance",
    "cut_weight",
    "directed_cut_matrix",
    "flow_ratio",
    "mixed_modularity",
    "partition_summary",
]
