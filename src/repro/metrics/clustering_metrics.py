"""Clustering-quality metrics: ARI, NMI, matched accuracy, confusion.

All metrics are implemented from first principles on contingency tables;
only the Hungarian assignment uses ``scipy.optimize.linear_sum_assignment``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.exceptions import ClusteringError


def _validate_pair(truth, predicted) -> tuple[np.ndarray, np.ndarray]:
    truth = np.asarray(truth, dtype=int).ravel()
    predicted = np.asarray(predicted, dtype=int).ravel()
    if truth.size != predicted.size:
        raise ClusteringError(
            f"label vectors differ in length: {truth.size} vs {predicted.size}"
        )
    if truth.size == 0:
        raise ClusteringError("label vectors are empty")
    return truth, predicted


def contingency_table(truth, predicted) -> np.ndarray:
    """Counts table C[i, j] = |truth cluster i ∩ predicted cluster j|."""
    truth, predicted = _validate_pair(truth, predicted)
    truth_ids = np.unique(truth)
    predicted_ids = np.unique(predicted)
    table = np.zeros((truth_ids.size, predicted_ids.size), dtype=int)
    truth_index = {label: i for i, label in enumerate(truth_ids)}
    predicted_index = {label: j for j, label in enumerate(predicted_ids)}
    for t, p in zip(truth, predicted):
        table[truth_index[t], predicted_index[p]] += 1
    return table


def adjusted_rand_index(truth, predicted) -> float:
    """ARI ∈ [−1, 1]: chance-corrected pair-counting agreement."""
    table = contingency_table(truth, predicted)
    n = table.sum()

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(float)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(float)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(float)).sum()
    expected = sum_rows * sum_cols / comb2(float(n)) if n > 1 else 0.0
    maximum = (sum_rows + sum_cols) / 2.0
    if np.isclose(maximum, expected):
        return 1.0  # both partitions are trivial and identical in structure
    return float((sum_cells - expected) / (maximum - expected))


def normalized_mutual_information(truth, predicted) -> float:
    """NMI ∈ [0, 1] with arithmetic-mean normalization."""
    table = contingency_table(truth, predicted).astype(float)
    n = table.sum()
    joint = table / n
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_term = np.where(joint > 0, np.log(joint / (row @ col)), 0.0)
    mutual = float((joint * log_term).sum())

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    h_truth, h_pred = entropy(row.ravel()), entropy(col.ravel())
    mean_entropy = (h_truth + h_pred) / 2.0
    if mean_entropy < 1e-15:
        return 1.0  # both partitions trivial → identical
    return float(np.clip(mutual / mean_entropy, 0.0, 1.0))


def matched_accuracy(truth, predicted) -> float:
    """Best-case accuracy over all cluster-label permutations (Hungarian)."""
    table = contingency_table(truth, predicted)
    rows, cols = linear_sum_assignment(-table)
    return float(table[rows, cols].sum() / table.sum())


def misclassified_count(truth, predicted) -> int:
    """Number of nodes misassigned under the optimal label matching."""
    truth, _ = _validate_pair(truth, predicted)
    return int(round((1.0 - matched_accuracy(truth, predicted)) * truth.size))


def clustering_report(truth, predicted) -> dict[str, float]:
    """All scalar metrics in one dictionary (used by experiment tables)."""
    return {
        "ari": adjusted_rand_index(truth, predicted),
        "nmi": normalized_mutual_information(truth, predicted),
        "accuracy": matched_accuracy(truth, predicted),
        "misclassified": float(misclassified_count(truth, predicted)),
    }
