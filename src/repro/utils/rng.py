"""Random-number-generator plumbing.

Every stochastic component in the library takes a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
whole pipeline reproducible: experiments pass integers, tests pass
generators, and library code never calls the global NumPy RNG.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def ensure_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so state is shared).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so per-trial streams do
    not overlap, which keeps multi-seed experiment tables reproducible even
    if individual trials are reordered.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [
            np.random.default_rng(s)
            for s in seed.bit_generator.seed_seq.spawn(count)
        ]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
