"""Random-number-generator plumbing.

Every stochastic component in the library takes a ``seed`` argument that may
be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
whole pipeline reproducible: experiments pass integers, tests pass
generators, and library code never calls the global NumPy RNG.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def ensure_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged so state is shared).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so per-trial streams do
    not overlap, which keeps multi-seed experiment tables reproducible even
    if individual trials are reordered.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [
            np.random.default_rng(s)
            for s in seed.bit_generator.seed_seq.spawn(count)
        ]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


#: Rows per chunk when per-stream draw loops are executed through
#: :func:`run_per_stream` — large enough to amortize dispatch, small
#: enough that a thread pool sees work to steal.
DEFAULT_DRAW_CHUNK_ROWS = 256


def run_per_stream(
    num_rows: int,
    worker,
    *,
    threads: int | None = None,
    chunk_rows: int | None = None,
) -> None:
    """Run ``worker(start, stop)`` over contiguous row chunks.

    The executor behind the batched per-stream draw loops (tomography
    magnitude/phase draws, readout amplitude estimation): rows are split
    into ``chunk_rows``-sized spans and each span's draws run as one
    batched call sequence.  ``worker`` must touch only row-private state —
    row ``i``'s own generator and row ``i``'s slices of output arrays — so
    neither the chunk size nor the thread count can change any result:
    every stream consumes exactly the same draws in the same order.

    ``threads > 1`` executes chunks on a thread pool.  NumPy's
    ``Generator`` releases the GIL while filling arrays, so the C-level
    sampling of *independent* streams genuinely overlaps; output is
    bit-identical to the serial pass.
    """
    if num_rows <= 0:
        return
    if chunk_rows is None:
        chunk_rows = DEFAULT_DRAW_CHUNK_ROWS
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if threads is not None and threads < 1:
        raise ValueError(f"threads must be >= 1 or None, got {threads}")
    spans = [
        (start, min(start + chunk_rows, num_rows))
        for start in range(0, num_rows, chunk_rows)
    ]
    if threads is None or threads == 1 or len(spans) == 1:
        for start, stop in spans:
            worker(start, stop)
        return
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(worker, start, stop) for start, stop in spans]
        for future in futures:
            future.result()
