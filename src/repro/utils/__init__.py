"""Shared low-level utilities: RNG handling and linear-algebra helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.linalg import (
    is_hermitian,
    is_unitary,
    is_psd,
    next_power_of_two,
    num_qubits_for,
    frobenius_distance,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "is_hermitian",
    "is_unitary",
    "is_psd",
    "next_power_of_two",
    "num_qubits_for",
    "frobenius_distance",
]
