"""Small linear-algebra helpers used across the quantum and spectral stacks."""

from __future__ import annotations

import numpy as np

DEFAULT_ATOL = 1e-10


def is_hermitian(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` if ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Return ``True`` if ``matrix`` is unitary (U @ U† = I)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


def is_psd(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if a Hermitian ``matrix`` is positive semidefinite.

    The check eigendecomposes, so reserve it for tests and validation paths.
    """
    if not is_hermitian(matrix, atol=max(atol, DEFAULT_ATOL)):
        return False
    eigenvalues = np.linalg.eigvalsh(matrix)
    return bool(eigenvalues.min() >= -atol)


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (with ``value`` >= 1)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


def num_qubits_for(dimension: int) -> int:
    """Number of qubits needed to index a space of size ``dimension``."""
    return (next_power_of_two(dimension)).bit_length() - 1


def frobenius_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius norm of ``a - b`` — convenient for closeness assertions."""
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))
