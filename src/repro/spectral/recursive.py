"""Recursive spectral bisection with optional FM refinement.

The classical EDA k-way partitioning recipe: bisect on the Fiedler
direction of the (Hermitian) Laplacian, refine the boundary with an FM
pass, recurse on the larger parts until k parts exist.  Serves both as a
k-way netlist baseline and as the classical post-processing stage the
quantum pipeline can hand its bipartitions to.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.hermitian import DEFAULT_THETA, hermitian_laplacian
from repro.graphs.mixed_graph import MixedGraph
from repro.graphs.refinement import fm_bipartition_refine
from repro.spectral.eigensolvers import dense_lowest_eigenpairs
from repro.spectral.embedding import complex_to_real_features
from repro.spectral.kmeans import kmeans


def fiedler_bipartition(
    graph: MixedGraph,
    theta: float = DEFAULT_THETA,
    seed=None,
) -> np.ndarray:
    """0/1 labels from a 2-means split of the two lowest eigenvectors.

    For Hermitian Laplacians the "Fiedler vector" generalizes to the two
    lowest complex eigenvectors mapped to real features; 2-means on them
    is the standard bisection step.
    """
    if graph.num_nodes < 2:
        raise ClusteringError("cannot bisect a single-node graph")
    laplacian = hermitian_laplacian(graph, theta=theta)
    _, vectors = dense_lowest_eigenpairs(laplacian, min(2, graph.num_nodes))
    features = complex_to_real_features(vectors)
    result = kmeans(features, 2, seed=seed)
    return result.labels


def recursive_spectral_partition(
    graph: MixedGraph,
    num_parts: int,
    theta: float = DEFAULT_THETA,
    refine: bool = True,
    balance_tolerance: float = 0.25,
    seed=None,
) -> np.ndarray:
    """k-way partition by recursive (refined) spectral bisection.

    Parameters
    ----------
    graph:
        Input mixed graph.
    num_parts:
        Target part count k >= 1.
    theta:
        Hermitian phase for the per-level Laplacians.
    refine:
        Run an FM pass after every bisection.
    balance_tolerance:
        FM balance slack per bisection.
    seed:
        k-means seed.

    Returns
    -------
    Labels in 0..k−1.

    Notes
    -----
    The largest current part is always split next — the standard greedy
    schedule, exact when k is a power of two and near-balanced otherwise.
    """
    if num_parts < 1:
        raise ClusteringError(f"num_parts must be >= 1, got {num_parts}")
    if num_parts > graph.num_nodes:
        raise ClusteringError(
            f"cannot cut {graph.num_nodes} nodes into {num_parts} parts"
        )
    labels = np.zeros(graph.num_nodes, dtype=int)
    next_label = 1
    while next_label < num_parts:
        sizes = np.bincount(labels, minlength=next_label)
        target = int(np.argmax(sizes))
        members = np.flatnonzero(labels == target)
        if members.size < 2:
            raise ClusteringError(
                "ran out of divisible parts before reaching num_parts"
            )
        subgraph = graph.subgraph(members)
        split = fiedler_bipartition(subgraph, theta=theta, seed=seed)
        if len(np.unique(split)) < 2:
            # degenerate k-means split: cut in half arbitrarily
            split = np.zeros(members.size, dtype=int)
            split[members.size // 2 :] = 1
        if refine and subgraph.num_edges + subgraph.num_arcs > 0:
            split = fm_bipartition_refine(
                subgraph,
                split,
                balance_tolerance=balance_tolerance,
            ).labels
        labels[members[split == 1]] = next_label
        next_label += 1
    return labels
