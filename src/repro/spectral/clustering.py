"""Classical spectral clustering of mixed graphs (the exact comparator).

:class:`ClassicalSpectralClustering` is the O(n³) pipeline the quantum
algorithm is benchmarked against: exact Hermitian-Laplacian
eigendecomposition, complex→real feature map, exact k-means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.hermitian import DEFAULT_THETA
from repro.graphs.mixed_graph import MixedGraph
from repro.spectral.embedding import spectral_embedding
from repro.spectral.kmeans import KMeansResult, kmeans


@dataclass(frozen=True)
class ClusteringResult:
    """Labels plus the artifacts needed by metrics and experiments.

    Attributes
    ----------
    labels:
        Cluster index per node.
    embedding:
        The real feature matrix that was clustered.
    kmeans:
        The underlying k-means result (centroids, inertia ...).
    method:
        Human-readable method tag for experiment tables.
    """

    labels: np.ndarray
    embedding: np.ndarray
    kmeans: KMeansResult
    method: str


class ClassicalSpectralClustering:
    """Exact Hermitian spectral clustering.

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    theta:
        Hermitian phase angle for arcs (π/2 = standard convention).
    normalization:
        Laplacian normalization.
    normalize_rows:
        Row-normalize the embedding before k-means.
    backend:
        ``repro.linalg`` backend spec (``"auto"``, ``"dense"``,
        ``"sparse"``, or an instance).  ``"auto"`` selects sparse CSR +
        Lanczos for large graphs, dense LAPACK otherwise.
    seed:
        RNG seed for k-means.

    Examples
    --------
    >>> from repro.graphs import mixed_sbm
    >>> graph, truth = mixed_sbm(60, 2, seed=0)
    >>> result = ClassicalSpectralClustering(2, seed=0).fit(graph)
    >>> len(result.labels) == graph.num_nodes
    True
    """

    def __init__(
        self,
        num_clusters: int,
        theta: float = DEFAULT_THETA,
        normalization: str = "symmetric",
        normalize_rows: bool = True,
        kmeans_restarts: int = 4,
        backend="auto",
        seed=None,
    ):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.theta = theta
        self.normalization = normalization
        self.normalize_rows = normalize_rows
        self.kmeans_restarts = kmeans_restarts
        self.backend = backend
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster ``graph`` and return labels plus artifacts."""
        if self.num_clusters > graph.num_nodes:
            raise ClusteringError(
                f"cannot form {self.num_clusters} clusters from "
                f"{graph.num_nodes} nodes"
            )
        embedding = spectral_embedding(
            graph,
            self.num_clusters,
            theta=self.theta,
            normalization=self.normalization,
            normalize_rows=self.normalize_rows,
            backend=self.backend,
        )
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="classical-hermitian",
        )


def classical_spectral_clustering(
    graph: MixedGraph, num_clusters: int, seed=None, **kwargs
) -> np.ndarray:
    """Functional one-shot wrapper returning only the labels."""
    return (
        ClassicalSpectralClustering(num_clusters, seed=seed, **kwargs)
        .fit(graph)
        .labels
    )
