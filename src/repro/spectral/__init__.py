"""Classical spectral machinery: eigensolvers, embeddings, k-means."""

from repro.spectral.eigensolvers import (
    condition_number,
    dense_lowest_eigenpairs,
    lanczos_lowest_eigenpairs,
    lowest_eigenpairs,
    sparse_lowest_eigenpairs,
)
from repro.spectral.embedding import (
    complex_to_real_features,
    projector_embedding,
    row_normalize,
    spectral_embedding,
)
from repro.spectral.kmeans import (
    KMeansResult,
    assign_labels,
    kmeans,
    kmeans_plusplus_init,
    update_centroids,
)
from repro.spectral.clustering import (
    ClassicalSpectralClustering,
    ClusteringResult,
    classical_spectral_clustering,
)
from repro.spectral.power_method import (
    lowest_eigenpairs_by_power,
    power_iteration,
)
from repro.spectral.recursive import (
    fiedler_bipartition,
    recursive_spectral_partition,
)
from repro.spectral.gap import (
    eigengaps,
    estimate_num_clusters,
    gap_profile,
    relative_eigengap,
)

__all__ = [
    "fiedler_bipartition",
    "recursive_spectral_partition",
    "lowest_eigenpairs_by_power",
    "power_iteration",
    "eigengaps",
    "estimate_num_clusters",
    "gap_profile",
    "relative_eigengap",
    "condition_number",
    "dense_lowest_eigenpairs",
    "lanczos_lowest_eigenpairs",
    "lowest_eigenpairs",
    "sparse_lowest_eigenpairs",
    "complex_to_real_features",
    "projector_embedding",
    "row_normalize",
    "spectral_embedding",
    "KMeansResult",
    "assign_labels",
    "kmeans",
    "kmeans_plusplus_init",
    "update_centroids",
    "ClassicalSpectralClustering",
    "ClusteringResult",
    "classical_spectral_clustering",
]
