"""Spectral-gap statistics and eigengap model selection.

Spectral clustering needs the cluster count k.  The *eigengap heuristic*
picks the k maximizing λ_{k+1} − λ_k over the low spectrum — large gaps
signal well-separated invariant subspaces.  :func:`estimate_num_clusters`
implements it on exact spectra;
``repro.core.autok.estimate_num_clusters_quantum`` ports the same rule to
sampled QPE histograms, keeping model selection end-to-end quantum.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError


def eigengaps(eigenvalues: np.ndarray) -> np.ndarray:
    """Consecutive differences of an ascending eigenvalue array."""
    eigenvalues = np.asarray(eigenvalues, dtype=float).ravel()
    if eigenvalues.size < 2:
        raise ClusteringError("need at least two eigenvalues")
    if np.any(np.diff(eigenvalues) < -1e-9):
        raise ClusteringError("eigenvalues must be ascending")
    return np.diff(eigenvalues)


def relative_eigengap(eigenvalues: np.ndarray, k: int) -> float:
    """γ_k = (λ_{k+1} − λ_k) / λ_{k+1} — scale-free separation at k."""
    eigenvalues = np.asarray(eigenvalues, dtype=float).ravel()
    if not 1 <= k < eigenvalues.size:
        raise ClusteringError(f"k must be in [1, {eigenvalues.size - 1}]")
    upper = eigenvalues[k]
    if upper <= 1e-15:
        return 0.0
    return float((eigenvalues[k] - eigenvalues[k - 1]) / upper)


def estimate_num_clusters(
    eigenvalues: np.ndarray,
    k_min: int = 2,
    k_max: int | None = None,
) -> int:
    """The eigengap heuristic: argmax_k (λ_{k+1} − λ_k) over [k_min, k_max].

    Parameters
    ----------
    eigenvalues:
        Ascending Laplacian spectrum (or its low prefix).
    k_min / k_max:
        Search window; ``k_max`` defaults to ``len(eigenvalues) // 2``
        (a gap at the very top of the supplied prefix is not evidence).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float).ravel()
    if eigenvalues.size < 3:
        raise ClusteringError("need at least three eigenvalues")
    limit = k_max if k_max is not None else max(eigenvalues.size // 2, k_min)
    limit = min(limit, eigenvalues.size - 1)
    if k_min < 1 or k_min > limit:
        raise ClusteringError(
            f"invalid window [{k_min}, {limit}] for {eigenvalues.size} values"
        )
    gaps = eigengaps(eigenvalues)
    window = gaps[k_min - 1 : limit]
    return int(np.argmax(window)) + k_min


def gap_profile(eigenvalues: np.ndarray, k_max: int | None = None) -> list[dict]:
    """Per-k gap diagnostics for reporting (k, gap, relative gap)."""
    eigenvalues = np.asarray(eigenvalues, dtype=float).ravel()
    gaps = eigengaps(eigenvalues)
    limit = k_max if k_max is not None else eigenvalues.size - 1
    limit = min(limit, eigenvalues.size - 1)
    profile = []
    for k in range(1, limit + 1):
        profile.append(
            {
                "k": k,
                "gap": float(gaps[k - 1]),
                "relative_gap": relative_eigengap(eigenvalues, k),
            }
        )
    return profile
