"""Eigensolvers for Hermitian matrices.

``dense_lowest_eigenpairs`` wraps LAPACK (the O(n³) classical comparator in
the runtime experiment).  ``lanczos_lowest_eigenpairs`` is a from-scratch
Lanczos iteration with full reorthogonalization — the "fast classical
alternative" discussed in the papers' related-work sections, used as an
additional baseline in the runtime figure.

``sparse_lowest_eigenpairs`` routes through the ``repro.linalg`` sparse
backend (ARPACK ``eigsh`` with automatic dense fallback for small n), and
``lowest_eigenpairs`` is the representation-agnostic dispatcher the
embedding and baseline layers call: dense arrays go to LAPACK, sparse
matrices to Lanczos, with an explicit backend spec overriding either.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError
from repro.linalg import (
    as_backend_matrix,
    is_sparse_matrix,
    resolve_backend,
)
from repro.utils.linalg import is_hermitian
from repro.utils.rng import ensure_rng


def dense_lowest_eigenpairs(
    matrix: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """The k smallest eigenvalues and eigenvectors of a Hermitian matrix.

    Returns
    -------
    (values, vectors):
        ``values`` ascending, ``vectors[:, j]`` the eigenvector of
        ``values[j]``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if not is_hermitian(matrix, atol=1e-8):
        raise ConvergenceError("dense_lowest_eigenpairs requires a Hermitian matrix")
    if not 1 <= k <= matrix.shape[0]:
        raise ConvergenceError(f"k must be in [1, {matrix.shape[0]}], got {k}")
    values, vectors = np.linalg.eigh(matrix)
    return values[:k], vectors[:, :k]


def sparse_lowest_eigenpairs(matrix, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The k lowest eigenpairs via the sparse backend (ARPACK Lanczos).

    Accepts either representation: dense input is CSR-converted through
    :func:`repro.linalg.as_backend_matrix`.  Small matrices and near-full
    ``k`` fall back to a dense LAPACK solve inside the backend, so the
    function is total over its input range.
    """
    backend = resolve_backend("sparse")
    return backend.lowest_eigenpairs(as_backend_matrix(matrix, backend), k)


def lowest_eigenpairs(matrix, k: int, backend=None) -> tuple[np.ndarray, np.ndarray]:
    """Representation-agnostic k-lowest-eigenpairs dispatcher.

    Parameters
    ----------
    matrix:
        Hermitian matrix, dense ndarray or scipy sparse.
    k:
        Number of lowest eigenpairs.
    backend:
        Optional ``repro.linalg`` backend spec.  ``None`` keeps the
        matrix's own representation: sparse input → Lanczos, dense input →
        LAPACK.  ``"auto"``/``"dense"``/``"sparse"`` force a route (the
        matrix is adapted as needed).

    Returns
    -------
    (values, vectors):
        ``values`` ascending; ``vectors[:, j]`` is a *dense* n-vector in
        both routes, so downstream embedding code never branches.
    """
    if backend is None:
        if is_sparse_matrix(matrix):
            return sparse_lowest_eigenpairs(matrix, k)
        return dense_lowest_eigenpairs(matrix, k)
    be = resolve_backend(backend, matrix.shape[0])
    return be.lowest_eigenpairs(as_backend_matrix(matrix, be), k)


def lanczos_lowest_eigenpairs(
    matrix: np.ndarray,
    k: int,
    max_iterations: int | None = None,
    tolerance: float = 1e-8,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lanczos iteration with full reorthogonalization.

    Builds the Krylov tridiagonalization T = Q† A Q and Rayleigh–Ritz
    extracts the lowest-k pairs.  Full reorthogonalization keeps the basis
    numerically orthogonal, trading memory for the robustness issues the
    classic three-term recurrence suffers from.

    Parameters
    ----------
    matrix:
        Hermitian n × n matrix.
    k:
        Number of lowest eigenpairs wanted.
    max_iterations:
        Krylov dimension cap (default min(n, max(4k, 40))).
    tolerance:
        Convergence threshold on Ritz-value movement.
    seed:
        Seed for the random start vector.

    Raises
    ------
    ConvergenceError:
        If Ritz values fail to settle within the iteration budget.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if not is_hermitian(matrix, atol=1e-8):
        raise ConvergenceError("lanczos requires a Hermitian matrix")
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ConvergenceError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return dense_lowest_eigenpairs(matrix, k)
    budget = max_iterations or min(n, max(4 * k, 40))
    budget = min(max(budget, k + 2), n)
    rng = ensure_rng(seed)
    start = rng.normal(size=n) + 1j * rng.normal(size=n)
    basis = [start / np.linalg.norm(start)]
    alphas: list[float] = []
    betas: list[float] = []
    previous_ritz: np.ndarray | None = None
    for iteration in range(budget):
        w = matrix @ basis[-1]
        alpha = float(np.real(np.vdot(basis[-1], w)))
        alphas.append(alpha)
        w = w - alpha * basis[-1]
        if len(basis) > 1:
            w = w - betas[-1] * basis[-2]
        # full reorthogonalization against the whole basis
        for vector in basis:
            w = w - np.vdot(vector, w) * vector
        beta = float(np.linalg.norm(w))
        tridiagonal = np.diag(alphas) + np.diag(betas, 1) + np.diag(betas, -1)
        ritz_values = np.linalg.eigvalsh(tridiagonal)
        if len(alphas) >= k:
            current = ritz_values[:k]
            if previous_ritz is not None and np.all(
                np.abs(current - previous_ritz) < tolerance
            ):
                break
            previous_ritz = current
        if beta < 1e-12:
            break  # invariant subspace found — T is exact
        betas.append(beta)
        basis.append(w / beta)
    else:
        if previous_ritz is None:
            raise ConvergenceError("lanczos failed to produce Ritz values")
    tridiagonal = np.diag(alphas) + np.diag(betas[: len(alphas) - 1], 1) + np.diag(
        betas[: len(alphas) - 1], -1
    )
    ritz_values, ritz_vectors = np.linalg.eigh(tridiagonal)
    q = np.column_stack(basis[: len(alphas)])
    vectors = q @ ritz_vectors[:, :k]
    vectors /= np.linalg.norm(vectors, axis=0, keepdims=True)
    return ritz_values[:k], vectors


def condition_number(matrix: np.ndarray, rank_tolerance: float = 1e-10) -> float:
    """κ(M): ratio of largest to smallest *non-zero* singular value."""
    singular_values = np.linalg.svd(np.asarray(matrix), compute_uv=False)
    nonzero = singular_values[singular_values > rank_tolerance * singular_values[0]]
    if nonzero.size == 0:
        raise ConvergenceError("matrix is numerically zero")
    return float(nonzero[0] / nonzero[-1])
