"""Power/deflation iteration for lowest eigenpairs.

The third classical eigensolver family discussed in the related-work
sections (next to dense LAPACK and Lanczos): shift the Hermitian Laplacian
so its *lowest* eigenvalues become the *largest* in magnitude, run power
iteration, deflate, repeat.  Simple, O(k · iterations · n²), and a useful
convergence foil for the runtime discussion — its iteration count depends
on eigenvalue ratios in exactly the way the paper's related work warns
about.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError
from repro.utils.linalg import is_hermitian
from repro.utils.rng import ensure_rng


def power_iteration(
    matrix: np.ndarray,
    max_iterations: int = 1000,
    tolerance: float = 1e-9,
    seed=None,
) -> tuple[float, np.ndarray, int]:
    """Dominant eigenpair of a Hermitian matrix by power iteration.

    Returns
    -------
    (eigenvalue, eigenvector, iterations)

    Raises
    ------
    ConvergenceError:
        If the Rayleigh quotient does not settle within the budget.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if not is_hermitian(matrix, atol=1e-8):
        raise ConvergenceError("power_iteration requires a Hermitian matrix")
    n = matrix.shape[0]
    rng = ensure_rng(seed)
    vector = rng.normal(size=n) + 1j * rng.normal(size=n)
    vector /= np.linalg.norm(vector)
    rayleigh = 0.0
    for iteration in range(1, max_iterations + 1):
        product = matrix @ vector
        norm = np.linalg.norm(product)
        if norm < 1e-14:
            # vector is (numerically) in the kernel: eigenvalue 0
            return 0.0, vector, iteration
        updated = product / norm
        new_rayleigh = float(np.real(np.vdot(updated, matrix @ updated)))
        if abs(new_rayleigh - rayleigh) < tolerance:
            return new_rayleigh, updated, iteration
        rayleigh = new_rayleigh
        vector = updated
    raise ConvergenceError(
        f"power iteration failed to converge in {max_iterations} iterations"
    )


def lowest_eigenpairs_by_power(
    matrix: np.ndarray,
    k: int,
    spectral_bound: float | None = None,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """The k lowest eigenpairs via shifted power iteration with deflation.

    Works on B = c·I − A (c an upper spectral bound), whose dominant
    eigenvectors are A's lowest.  After each converged pair, the matrix is
    deflated by the outer product so the next pair emerges.

    Parameters
    ----------
    matrix:
        Hermitian matrix A.
    k:
        Number of lowest pairs.
    spectral_bound:
        Upper bound c on A's spectrum (estimated from ‖A‖∞ when omitted).
    max_iterations / tolerance / seed:
        Power-iteration controls.

    Returns
    -------
    (values, vectors, total_iterations):
        ``values`` ascending; ``total_iterations`` is the summed power-
        iteration count, the quantity the runtime discussion cares about.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if not is_hermitian(matrix, atol=1e-8):
        raise ConvergenceError("requires a Hermitian matrix")
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ConvergenceError(f"k must be in [1, {n}], got {k}")
    if spectral_bound is None:
        spectral_bound = float(np.abs(matrix).sum(axis=1).max())  # Gershgorin bound
    shifted = spectral_bound * np.eye(n) - matrix
    rng = ensure_rng(seed)
    values = []
    vectors = []
    total_iterations = 0
    work = shifted.copy()
    for _ in range(k):
        top_value, top_vector, iterations = power_iteration(
            work, max_iterations=max_iterations, tolerance=tolerance, seed=rng
        )
        total_iterations += iterations
        values.append(spectral_bound - top_value)
        vectors.append(top_vector)
        work = work - top_value * np.outer(top_vector, top_vector.conj())
    order = np.argsort(values)
    values = np.array(values)[order]
    vectors = np.column_stack([vectors[i] for i in order])
    return values, vectors, total_iterations
