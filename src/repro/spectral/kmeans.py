"""From-scratch k-means (Lloyd's algorithm) with k-means++ seeding.

This is both the final step of classical spectral clustering and the
noise-free limit of the q-means algorithm in ``repro.core.qmeans`` (which
subclasses the update loop by injecting bounded noise — their agreement at
δ = 0 is property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    labels:
        Cluster index per point.
    centroids:
        k × d centroid matrix.
    inertia:
        Sum of squared distances to assigned centroids.
    iterations:
        Lloyd iterations executed.
    converged:
        Whether assignments stabilised before the iteration cap.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def kmeans_plusplus_init(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    n = points.shape[0]
    centroids = np.empty((num_clusters, points.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 1e-18:
            # All points coincide with already-chosen centroids; fill the
            # remaining slots with random picks.
            for j in range(index, num_clusters):
                centroids[j] = points[int(rng.integers(n))]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centroids[index] = points[choice]
        distance_sq = ((points - centroids[index]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centroids


def assign_labels(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for every point."""
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1)


def update_centroids(
    points: np.ndarray,
    labels: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mean of each cluster; empty clusters respawn at a random point."""
    centroids = np.empty((num_clusters, points.shape[1]))
    for cluster in range(num_clusters):
        members = points[labels == cluster]
        if members.size == 0:
            centroids[cluster] = points[int(rng.integers(points.shape[0]))]
        else:
            centroids[cluster] = members.mean(axis=0)
    return centroids


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    max_iterations: int = 100,
    num_restarts: int = 4,
    seed=None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialization and restarts.

    Parameters
    ----------
    points:
        n × d real data matrix.
    num_clusters:
        k; must satisfy 1 <= k <= n.
    max_iterations:
        Per-restart Lloyd iteration cap.
    num_restarts:
        Independent initializations; the lowest-inertia run wins.
    seed:
        RNG seed or generator.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ClusteringError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= num_clusters <= n:
        raise ClusteringError(f"num_clusters must be in [1, {n}], got {num_clusters}")
    if max_iterations < 1 or num_restarts < 1:
        raise ClusteringError("max_iterations and num_restarts must be >= 1")
    rng = ensure_rng(seed)
    best: KMeansResult | None = None
    for _ in range(num_restarts):
        centroids = kmeans_plusplus_init(points, num_clusters, rng)
        labels = assign_labels(points, centroids)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            centroids = update_centroids(points, labels, num_clusters, rng)
            new_labels = assign_labels(points, centroids)
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels
        inertia = float(((points - centroids[labels]) ** 2).sum())
        candidate = KMeansResult(
            labels=labels,
            centroids=centroids,
            inertia=inertia,
            iterations=iterations,
            converged=converged,
        )
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    return best
