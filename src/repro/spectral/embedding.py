"""Spectral embeddings of mixed graphs.

The embedding row of node i is its coordinate vector in the span of the k
lowest Laplacian eigenvectors.  For the *Hermitian* Laplacian those
coordinates are complex; clustering algorithms operate on real vectors, so
:func:`complex_to_real_features` maps C^k → R^{2k} by stacking real and
imaginary parts — an isometry, so cluster geometry is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.hermitian import DEFAULT_THETA, hermitian_laplacian
from repro.graphs.mixed_graph import MixedGraph
from repro.linalg import resolve_backend
from repro.spectral.eigensolvers import lowest_eigenpairs


def complex_to_real_features(matrix: np.ndarray) -> np.ndarray:
    """Stack [Re | Im] columns: an isometric map C^{n×k} → R^{n×2k}."""
    matrix = np.asarray(matrix)
    if np.iscomplexobj(matrix):
        return np.hstack([matrix.real, matrix.imag])
    return matrix.astype(float, copy=True)


def row_normalize(matrix: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Scale each row to unit norm (Ng–Jordan–Weiss normalization).

    Zero rows are left as zeros rather than divided — they correspond to
    nodes with no projection onto the cluster subspace.
    """
    matrix = np.asarray(matrix, dtype=float)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.where(
        norms > epsilon, matrix / np.where(norms > epsilon, norms, 1.0), 0.0
    )


def spectral_embedding(
    graph: MixedGraph,
    num_clusters: int,
    theta: float = DEFAULT_THETA,
    normalization: str = "symmetric",
    normalize_rows: bool = True,
    backend="auto",
) -> np.ndarray:
    """Classical (exact) spectral embedding of a mixed graph.

    Parameters
    ----------
    graph:
        Input mixed graph on n nodes.
    num_clusters:
        Number of eigenvectors kept, k.
    theta:
        Hermitian phase angle for arcs.
    normalization:
        Laplacian normalization (see ``repro.graphs.hermitian``).
    normalize_rows:
        Apply row normalization after the real feature map.
    backend:
        ``repro.linalg`` backend spec.  ``"auto"`` (default) keeps small
        graphs on the exact dense path and switches large ones to sparse
        CSR construction + Lanczos, which is what makes 10k-node graphs
        tractable.

    Returns
    -------
    Real n × 2k feature matrix.
    """
    if num_clusters < 1 or num_clusters > graph.num_nodes:
        raise ClusteringError(
            f"num_clusters must be in [1, {graph.num_nodes}], got {num_clusters}"
        )
    be = resolve_backend(backend, graph.num_nodes)
    laplacian = hermitian_laplacian(graph, theta, normalization, backend=be)
    _, vectors = lowest_eigenpairs(laplacian, num_clusters, backend=be)
    features = complex_to_real_features(vectors)
    if normalize_rows:
        features = row_normalize(features)
    return features


def projector_embedding(
    eigenvectors: np.ndarray,
) -> np.ndarray:
    """Rows of the subspace projector Π_k = U_k U_k† as embedding vectors.

    This is what the *quantum* pipeline physically reconstructs: the
    projected basis state Π_k|i> read out in the computational basis.
    Because U_k† is an isometry on the k-dimensional subspace, pairwise
    distances among projector rows equal those among eigenvector-coordinate
    rows, so clustering either representation is equivalent (tested).
    """
    eigenvectors = np.asarray(eigenvectors)
    return eigenvectors @ eigenvectors.conj().T
