"""Deterministic row-sharding of the readout stage.

The readout stage is embarrassingly parallel across rows — row ``i``
consumes only its own spawned RNG stream and its own backend projection —
so it can be split into N contiguous **row shards** executed by the
supervised work queue (:mod:`repro.pipeline.supervisor`) without changing
a single bit of the merged result:

* shard boundaries derive *only* from ``(num_rows, shard_count)``
  (:func:`shard_layout` — balanced contiguous spans, larger shards first);
* each shard receives exactly the per-row generators it owns, sliced from
  the one :func:`~repro.utils.rng.spawn_rngs` layout the unsharded stage
  uses, and runs the same :func:`~repro.core.readout.readout_span` code;
* shard payloads merge in shard-index order and the (row-local) phase
  canonicalization runs once over the merged matrix — so **any** shard
  count, executor, retry schedule or completion order is bit-identical to
  the unsharded stage (golden-pinned in ``tests/pipeline/test_sharding.py``).

Each completed shard can be checkpointed as ``readout.shard-<i>.npz``
next to the regular stage checkpoints, stamped with the stage's context
fingerprint *plus* the shard layout.  A crashed run resumes by loading the
completed shards and recomputing only the missing ones; a degraded run
(``shard_failure_mode="degrade"``) returns partial results with the failed
shards' rows zeroed and their indices reported in ``incomplete_shards``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.readout import (
    ReadoutResult,
    canonicalize_row_phases,
    readout_span,
)
from repro.exceptions import ClusteringError
from repro.pipeline import checkpoint
from repro.pipeline.supervisor import (
    InlineShardExecutor,
    ProcessShardExecutor,
    ShardSupervisor,
    ShardTask,
)
from repro.pipeline.telemetry import ShardReport
from repro.store import active_store
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class RowShard:
    """One contiguous row span of a sharded stage."""

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        """Number of rows the shard owns."""
        return self.stop - self.start


def shard_layout(num_rows: int, shard_count: int) -> tuple[RowShard, ...]:
    """Balanced contiguous row shards, a pure function of its arguments.

    Row counts differ by at most one, larger shards first (the
    ``numpy.array_split`` convention).  ``shard_count`` may exceed
    ``num_rows``; the surplus shards are empty and complete trivially.
    The layout depends on nothing else — not the executor, not the config
    — so a resuming run with the same ``(num_rows, shard_count)`` maps
    shard files back to identical spans.
    """
    if shard_count < 1:
        raise ClusteringError(f"shard_count must be >= 1, got {shard_count}")
    if num_rows < 0:
        raise ClusteringError(f"num_rows must be >= 0, got {num_rows}")
    base, extra = divmod(num_rows, shard_count)
    shards = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(RowShard(index=index, start=start, stop=start + size))
        start += size
    return tuple(shards)


def shard_checkpoint_name(stage_name: str, shard_index: int) -> str:
    """Checkpoint-file stem of one shard (``<stage>.shard-<i>``)."""
    return f"{stage_name}.shard-{shard_index}"


def shard_fingerprint(
    context_fingerprint: str, num_rows: int, shard_count: int, shard: RowShard
) -> str:
    """Context fingerprint of one shard checkpoint.

    Extends the stage's run-context fingerprint with the shard layout so a
    shard file is only ever loaded back into the *same* span of the same
    decomposition — a shard file left over from a different shard count or
    run configuration is a hard :class:`~repro.exceptions.ClusteringError`
    (delete the stale shard files, or the directory, to re-shard).
    """
    return (
        f"{context_fingerprint}/rows={num_rows}"
        f"/shards={shard_count}/span={shard.start}:{shard.stop}"
    )


def compute_shard(backend, accepted, shots, shard_rngs, shard, options) -> dict:
    """Worker entry point: the readout payload of one shard.

    ``shard_rngs`` are the shard's own per-row generators
    (``shard_rngs[i]`` serves absolute row ``shard.start + i``), sliced by
    the parent from the full spawn layout — the worker never re-spawns, so
    its draws are exactly the unsharded stage's draws for those rows.
    Module-level and pickle-clean, as the process executor requires.
    """
    rows, norms, probabilities = readout_span(
        backend,
        accepted,
        shots,
        shard_rngs,
        shard.start,
        shard.stop,
        chunk_size=options.get("chunk_size"),
        draw_threads=options.get("draw_threads"),
    )
    return {"rows": rows, "norms": norms, "probabilities": probabilities}


def default_max_workers() -> int:
    """Worker cap used when the caller passes ``max_workers=None``.

    One in-flight attempt per core: each worker process inherits
    ``draw_threads``, so launching every shard at once at high shard
    counts would oversubscribe (or exhaust) the host.
    """
    return os.cpu_count() or 1


def default_executor(shard_count: int):
    """Executor used when the caller does not inject one.

    One shard runs inline (a worker process would only add overhead);
    multiple shards run in supervised worker processes.  Tests monkeypatch
    this hook to route the real pipeline through fault-injecting or
    inline executors.
    """
    if shard_count <= 1:
        return InlineShardExecutor()
    return ProcessShardExecutor()


@dataclass(frozen=True)
class ShardedReadout:
    """Merged result of a sharded readout pass.

    Attributes
    ----------
    result:
        The merged :class:`~repro.core.readout.ReadoutResult` — bit-equal
        to the unsharded stage when ``incomplete_shards`` is empty.
    shards:
        One :class:`~repro.pipeline.telemetry.ShardReport` per shard, in
        shard order.
    incomplete_shards:
        Indices of shards that failed under ``on_failure="degrade"``;
        their rows are zero in ``result`` (the same representation dead
        rows already use).  Empty on a complete run.
    """

    result: ReadoutResult
    shards: tuple
    incomplete_shards: tuple


def sharded_readout(
    backend,
    accepted,
    shots: int,
    rng,
    *,
    shard_count: int,
    chunk_size: int | None = None,
    draw_threads: int | None = None,
    canonical_phases: bool = True,
    executor=None,
    timeout: float | None = None,
    retries: int = 2,
    on_failure: str = "raise",
    max_workers: int | None = None,
    checkpoint_dir=None,
    save_dir=None,
    context_fingerprint: str = "",
    stage_name: str = "readout",
) -> ShardedReadout:
    """Run the readout stage as ``shard_count`` supervised row shards.

    Parameters
    ----------
    backend, accepted, shots, rng, chunk_size, draw_threads,
    canonical_phases:
        Exactly as :func:`~repro.core.readout.batched_readout`; the merged
        result is bit-identical to it for any ``shard_count``.
    shard_count:
        Number of row shards (see :func:`shard_layout`).
    executor:
        Attempt executor override; ``None`` uses
        :func:`default_executor` (worker processes when sharded).
    timeout / retries / on_failure / max_workers:
        Supervision policy — see
        :class:`~repro.pipeline.supervisor.ShardSupervisor`.
        ``max_workers=None`` caps in-flight attempts at
        :func:`default_max_workers` (one per core) rather than running
        every shard at once.
    checkpoint_dir:
        Directory to load completed shard checkpoints from (crash
        resume); shards found there are not re-run.  A shard file whose
        fingerprint does not match this run is a hard error.
    save_dir:
        Directory to write shard checkpoints into as shards complete —
        written by the supervising parent, so results survive both worker
        *and* parent crashes.
    context_fingerprint:
        The stage's run-context fingerprint
        (:func:`repro.pipeline.checkpoint.context_fingerprint`), extended
        per shard with the layout.
    stage_name:
        Stem of the shard checkpoint files.

    Returns
    -------
    :class:`ShardedReadout`
    """
    num_rows = int(backend.num_nodes)
    if shots < 0:
        raise ClusteringError(f"shots must be non-negative, got {shots}")
    layout = shard_layout(num_rows, shard_count)
    # Spawn ALL row streams once, exactly like the unsharded stage, then
    # hand each shard its own slice — spawning is stateful on a Generator,
    # so per-shard spawning would change the layout.
    row_rngs = spawn_rngs(rng, num_rows)
    options = {"chunk_size": chunk_size, "draw_threads": draw_threads}

    store = active_store()
    payloads: dict[int, dict] = {}
    reports: dict[int, ShardReport] = {}
    tasks = []
    for shard in layout:
        fingerprint = shard_fingerprint(
            context_fingerprint, num_rows, shard_count, shard
        )
        name = shard_checkpoint_name(stage_name, shard.index)
        load_start = time.perf_counter()
        payload = None
        if checkpoint_dir is not None and checkpoint.has_stage_checkpoint(
            checkpoint_dir, name
        ):
            try:
                payload = checkpoint.load_stage_payload(
                    checkpoint_dir, name, fingerprint
                )
            except checkpoint.CorruptCheckpointError:
                # A corrupt shard file is evicted and *only this shard*
                # recomputed — the sibling checkpoints stay trusted, so
                # a damaged entry costs one shard, never the stage.
                checkpoint.evict_stage_checkpoint(checkpoint_dir, name)
        if payload is None and store is not None:
            # Shared-store resolution: a shard computed by any process
            # under this exact context/layout fingerprint serves here.
            payload = store.get(
                checkpoint.SHARD_NAMESPACE, checkpoint.store_key(name, fingerprint)
            )
        if payload is not None:
            payloads[shard.index] = {
                "rows": np.asarray(payload["rows"], dtype=complex),
                "norms": np.asarray(payload["norms"], dtype=float),
                "probabilities": np.asarray(
                    payload["probabilities"], dtype=float
                ),
            }
            reports[shard.index] = ShardReport(
                shard=shard.index,
                start=shard.start,
                stop=shard.stop,
                seconds=time.perf_counter() - load_start,
                attempts=0,
                source="checkpoint",
            )
            continue
        shard_rngs = row_rngs[shard.start : shard.stop]
        tasks.append(
            ShardTask(
                index=shard.index,
                fn=compute_shard,
                args=(backend, accepted, shots, shard_rngs, shard, options),
            )
        )

    if tasks:
        supervisor = ShardSupervisor(
            executor if executor is not None else default_executor(shard_count),
            timeout=timeout,
            retries=retries,
            on_failure=on_failure,
            max_workers=(
                default_max_workers() if max_workers is None else max_workers
            ),
        )

        def persist(outcome) -> None:
            # Checkpoint the moment a shard succeeds: completed work
            # survives both a later shard aborting the run and a parent
            # crash, which is what makes crash-resume recompute only the
            # genuinely missing shards.  The shared store is written too
            # (when attached), so the shard also serves sibling processes.
            if save_dir is None and store is None:
                return
            shard = layout[outcome.index]
            name = shard_checkpoint_name(stage_name, shard.index)
            fingerprint = shard_fingerprint(
                context_fingerprint, num_rows, shard_count, shard
            )
            if save_dir is not None:
                checkpoint.save_stage_payload(
                    save_dir, name, outcome.value, fingerprint
                )
            if store is not None:
                store.put(
                    checkpoint.SHARD_NAMESPACE,
                    checkpoint.store_key(name, fingerprint),
                    outcome.value,
                )

        outcomes = supervisor.run(tasks, on_complete=persist)
        for shard in layout:
            outcome = outcomes.get(shard.index)
            if outcome is None:
                continue
            if outcome.failed:
                reports[shard.index] = ShardReport(
                    shard=shard.index,
                    start=shard.start,
                    stop=shard.stop,
                    seconds=outcome.seconds,
                    attempts=outcome.attempts,
                    source="failed",
                    error=outcome.error,
                )
                continue
            payloads[shard.index] = outcome.value
            reports[shard.index] = ShardReport(
                shard=shard.index,
                start=shard.start,
                stop=shard.stop,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                source="computed",
            )

    # Merge in shard order — completion order never matters.
    rows = np.zeros((num_rows, backend.dim), dtype=complex)
    norms = np.zeros(num_rows)
    probabilities = np.zeros(num_rows)
    incomplete = []
    for shard in layout:
        payload = payloads.get(shard.index)
        if payload is None:
            incomplete.append(shard.index)
            continue
        rows[shard.start : shard.stop] = payload["rows"]
        norms[shard.start : shard.stop] = payload["norms"]
        probabilities[shard.start : shard.stop] = payload["probabilities"]
    if canonical_phases:
        # Row-local (each row's anchor is its own diagonal entry), so
        # canonicalizing once after the merge equals the unsharded order.
        rows = canonicalize_row_phases(rows)
    return ShardedReadout(
        result=ReadoutResult(rows=rows, norms=norms, probabilities=probabilities),
        shards=tuple(reports[shard.index] for shard in layout),
        incomplete_shards=tuple(incomplete),
    )
