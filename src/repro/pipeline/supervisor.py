"""Supervised execution of shard tasks: timeout, retry, graceful degradation.

The sharded readout stage (:mod:`repro.pipeline.sharding`) splits its rows
into independent tasks and hands them to a :class:`ShardSupervisor`.  The
supervisor is deliberately generic — it knows nothing about readout, only
about *tasks* (a picklable function plus arguments, tagged with a shard
index) and *executors* (how one attempt of a task actually runs):

* :class:`InlineShardExecutor` runs the attempt synchronously in the
  calling process — zero overhead, used for ``shard_count == 1`` and for
  deterministic fault-injection tests;
* :class:`ProcessShardExecutor` runs each attempt in a dedicated
  ``multiprocessing.Process`` with a pipe carrying the result back.  A
  worker that dies without reporting (crash, OOM kill) or overruns its
  deadline is detected by the supervisor, killed, and the attempt counts
  as failed.

Failure policy: each task gets ``1 + retries`` attempts with capped
exponential backoff between them (``min(backoff_base * 2**(attempt-1),
backoff_cap)`` seconds).  When a task exhausts its attempts the supervisor
either raises :class:`~repro.exceptions.ClusteringError` (``on_failure=
"raise"``, the default) or records the task as failed and keeps going
(``on_failure="degrade"`` — the caller receives partial results plus an
explicit list of incomplete shards, the reliability-over-throughput mode).

Determinism: the supervisor never influences *what* a task computes — task
payloads are pure functions of their arguments (each readout shard owns
its own RNG streams), and callers merge outcomes in shard-index order, so
scheduling, concurrency, retries and even executor choice cannot change a
single bit of the merged result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.config import SHARD_FAILURE_MODES as FAILURE_MODES
from repro.exceptions import ClusteringError


class SupervisorCancelled(ClusteringError):
    """A supervised run was stopped through its ``cancel`` event.

    Raised by :meth:`ShardSupervisor.run` when the caller-supplied cancel
    event is observed set between supervision sweeps.  In-flight attempts
    are killed before the exception propagates; work that already
    completed (and was checkpointed via ``on_complete``) is untouched, so
    a cancelled run resumes from its surviving shard checkpoints.
    """


@dataclass(frozen=True)
class ShardTask:
    """One unit of supervised work.

    Attributes
    ----------
    index:
        Shard index — the merge key; outcomes are reported under it.
    fn:
        Module-level callable computing the shard payload.  Must be
        picklable for :class:`ProcessShardExecutor`.
    args:
        Positional arguments for ``fn`` (picklable likewise).
    """

    index: int
    fn: object
    args: tuple = ()


@dataclass(frozen=True)
class ShardOutcome:
    """Terminal state of one supervised task.

    Attributes
    ----------
    index:
        The task's shard index.
    value:
        ``fn(*args)`` of the successful attempt, or ``None`` if the task
        failed (``on_failure="degrade"`` only).
    attempts:
        How many attempts ran (successful or not).
    seconds:
        Wall time summed over all attempts (excludes backoff sleeps).
    failed:
        ``True`` when every attempt failed and degradation kept the run
        alive.
    error:
        Message of the last failure (timeout, crash, or raised exception);
        ``None`` for clean successes.
    """

    index: int
    value: object
    attempts: int
    seconds: float
    failed: bool = False
    error: str | None = None


class ShardHandle:
    """One in-flight attempt of a task; executors return these."""

    def done(self) -> bool:
        """Whether the attempt has finished (successfully or not)."""
        raise NotImplementedError

    def result(self):
        """The attempt's payload; raises on crash or task exception."""
        raise NotImplementedError

    def kill(self) -> None:
        """Stop the attempt (timeout enforcement); idempotent."""
        raise NotImplementedError


class _CompletedHandle(ShardHandle):
    """Handle over an attempt that already ran (inline execution)."""

    def __init__(self, value=None, error: str | None = None):
        self._value = value
        self._error = error

    def done(self) -> bool:
        return True

    def result(self):
        if self._error is not None:
            raise ClusteringError(self._error)
        return self._value

    def kill(self) -> None:  # nothing to stop — the attempt already ran
        pass


class InlineShardExecutor:
    """Run each attempt synchronously in the calling process.

    The degenerate executor: ``submit`` blocks until the attempt finishes,
    so timeouts cannot interrupt it (a deadline is only checked between
    attempts).  Used when ``shard_count == 1`` — one shard gains nothing
    from a worker process — and by fault-injection tests, which subclass
    or wrap it to fail scheduled (shard, attempt) pairs deterministically.
    """

    def submit(self, task: ShardTask, attempt: int) -> ShardHandle:
        try:
            return _CompletedHandle(value=task.fn(*task.args))
        except Exception as exc:  # noqa: BLE001 — fold into retry logic
            return _CompletedHandle(error=f"shard {task.index}: {exc}")


def _process_shard_entry(connection, fn, args) -> None:
    """Worker-process entry point: run the task, pipe back the outcome."""
    try:
        connection.send(("ok", fn(*args)))
    except Exception as exc:  # noqa: BLE001 — report instead of dying silent
        connection.send(("error", str(exc)))
    finally:
        connection.close()


class _ProcessHandle(ShardHandle):
    """Handle over an attempt running in a dedicated worker process."""

    def __init__(self, process, connection, index: int):
        self._process = process
        self._connection = connection
        self._index = index
        self._message = None
        self._pipe_dead = False

    def _drain(self) -> None:
        if self._message is not None or self._pipe_dead:
            return
        if self._connection.poll():
            try:
                self._message = self._connection.recv()
            except (EOFError, OSError):
                # The pipe hit EOF with no payload: the worker died before
                # it could report (segfault, kill signal, OOM) — poll()
                # returns True at EOF, so recv() raising here IS the crash
                # signal.  Leave _message unset; result() turns it into
                # the "worker died without a result" ClusteringError that
                # the supervisor's retry path handles.
                self._pipe_dead = True

    def done(self) -> bool:
        self._drain()
        return self._message is not None or not self._process.is_alive()

    def result(self):
        self._drain()
        self._process.join()
        if self._message is None:
            # The worker died without reporting — a hard crash (segfault,
            # kill signal, OOM), indistinguishable from pulling the plug.
            raise ClusteringError(
                f"shard {self._index}: worker died without a result "
                f"(exit code {self._process.exitcode})"
            )
        status, payload = self._message
        if status != "ok":
            raise ClusteringError(f"shard {self._index}: {payload}")
        return payload

    def kill(self) -> None:
        if self._process.is_alive():
            self._process.kill()
            self._process.join()
        self._connection.close()


class ProcessShardExecutor:
    """Run each attempt in its own ``multiprocessing.Process``.

    One process per *attempt*, not a long-lived pool: a crashed or hung
    worker can be killed and retried without poisoning shared state, which
    is exactly the supervision model the work queue needs.  Results travel
    over a ``Pipe``; a worker that exits without sending is treated as
    crashed.
    """

    def __init__(self, mp_context=None, *, daemon: bool = True):
        if mp_context is None:
            import multiprocessing

            mp_context = multiprocessing.get_context()
        self._context = mp_context
        # Daemonic workers die with the parent (the safe default), but a
        # daemonic process cannot spawn children of its own — the service
        # layer passes ``daemon=False`` so a supervised job worker can run
        # a sharded readout (which forks shard workers) inside itself.
        self._daemon = daemon

    def submit(self, task: ShardTask, attempt: int) -> ShardHandle:
        parent, child = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_process_shard_entry,
            args=(child, task.fn, task.args),
            daemon=self._daemon,
        )
        process.start()
        child.close()
        return _ProcessHandle(process, parent, task.index)


@dataclass
class _TaskState:
    """Supervisor-private bookkeeping of one task."""

    task: ShardTask
    attempts: int = 0
    seconds: float = 0.0
    not_before: float = 0.0
    last_error: str | None = None


@dataclass
class _Running:
    """Supervisor-private record of one in-flight attempt."""

    state: _TaskState
    handle: ShardHandle
    started: float
    deadline: float | None = field(default=None)


class ShardSupervisor:
    """Drive a set of shard tasks to completion under a failure policy.

    Parameters
    ----------
    executor:
        How attempts run — :class:`InlineShardExecutor`,
        :class:`ProcessShardExecutor`, or any object with the same
        ``submit(task, attempt) -> ShardHandle`` contract.
    timeout:
        Per-attempt deadline in seconds; ``None`` disables it.  Enforced
        by killing the attempt's handle — only meaningful for executors
        whose handles can actually be interrupted (the process executor).
    retries:
        Extra attempts after the first failure (``retries=2`` means up to
        three attempts per task).
    backoff_base / backoff_cap:
        Capped exponential backoff between attempts of the same task:
        attempt ``a`` waits ``min(backoff_base * 2**(a-1), backoff_cap)``
        seconds after failure ``a``.
    max_workers:
        Concurrent in-flight attempts; ``None`` runs every pending task
        at once.
    on_failure:
        ``"raise"`` aborts the whole run on the first exhausted task;
        ``"degrade"`` records it as failed and returns partial outcomes.
    poll_interval:
        Sleep between supervision sweeps while waiting on workers.
    """

    def __init__(
        self,
        executor=None,
        *,
        timeout: float | None = None,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_workers: int | None = None,
        on_failure: str = "raise",
        poll_interval: float = 0.002,
    ):
        if timeout is not None and timeout <= 0:
            raise ClusteringError(f"timeout must be positive or None, got {timeout}")
        if retries < 0:
            raise ClusteringError(f"retries must be >= 0, got {retries}")
        if on_failure not in FAILURE_MODES:
            raise ClusteringError(
                f"on_failure must be one of {FAILURE_MODES}, got {on_failure!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ClusteringError(
                f"max_workers must be >= 1 or None, got {max_workers}"
            )
        self.executor = executor if executor is not None else InlineShardExecutor()
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_workers = max_workers
        self.on_failure = on_failure
        self.poll_interval = poll_interval

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based failure count)."""
        return min(self.backoff_base * 2 ** (attempt - 1), self.backoff_cap)

    def run(
        self, tasks, on_complete=None, *, on_attempt=None, cancel=None
    ) -> dict[int, ShardOutcome]:
        """Supervise ``tasks`` to completion; outcomes keyed by shard index.

        ``on_complete(outcome)`` fires the moment a task *succeeds* — the
        sharded readout checkpoints each shard there, so completed work
        survives even when a later task aborts the whole run.

        ``on_attempt(index, attempt)`` fires as each attempt launches
        (``attempt >= 2`` means a crashed or expired child was restarted);
        it must be cheap and must not raise.  ``cancel`` is an optional
        event object (``threading.Event`` contract: ``is_set()``); when it
        is observed set between sweeps the supervisor kills every
        in-flight attempt and raises :class:`SupervisorCancelled`.
        Cancellation is best-effort — a run whose last task settles before
        the event is observed completes normally.
        """
        pending = [_TaskState(task) for task in tasks]
        running: list[_Running] = []
        outcomes: dict[int, ShardOutcome] = {}
        try:
            while pending or running:
                if cancel is not None and cancel.is_set():
                    raise SupervisorCancelled(
                        f"supervised run cancelled with {len(pending)} pending "
                        f"and {len(running)} in-flight task(s)"
                    )
                progressed = self._launch(pending, running, on_attempt)
                progressed |= self._sweep(pending, running, outcomes, on_complete)
                if not progressed and (running or pending):
                    time.sleep(self.poll_interval)
        except BaseException:
            for flight in running:
                flight.handle.kill()
            raise
        return outcomes

    def _launch(self, pending: list, running: list, on_attempt=None) -> bool:
        """Move eligible pending tasks into flight; True if any launched."""
        progressed = False
        now = time.monotonic()
        while pending and (
            self.max_workers is None or len(running) < self.max_workers
        ):
            eligible = next(
                (state for state in pending if state.not_before <= now), None
            )
            if eligible is None:
                break
            pending.remove(eligible)
            eligible.attempts += 1
            if on_attempt is not None:
                on_attempt(eligible.task.index, eligible.attempts)
            handle = self.executor.submit(eligible.task, eligible.attempts)
            started = time.monotonic()
            deadline = None if self.timeout is None else started + self.timeout
            running.append(_Running(eligible, handle, started, deadline))
            progressed = True
        return progressed

    def _sweep(
        self, pending: list, running: list, outcomes: dict, on_complete=None
    ) -> bool:
        """Collect finished/expired attempts; True if anything settled."""
        progressed = False
        now = time.monotonic()
        for flight in list(running):
            state = flight.state
            if flight.handle.done():
                running.remove(flight)
                state.seconds += time.monotonic() - flight.started
                try:
                    value = flight.handle.result()
                except ClusteringError as exc:
                    self._register_failure(state, str(exc), pending, outcomes)
                else:
                    outcome = ShardOutcome(
                        index=state.task.index,
                        value=value,
                        attempts=state.attempts,
                        seconds=state.seconds,
                    )
                    outcomes[state.task.index] = outcome
                    if on_complete is not None:
                        on_complete(outcome)
                progressed = True
            elif flight.deadline is not None and now > flight.deadline:
                running.remove(flight)
                state.seconds += time.monotonic() - flight.started
                flight.handle.kill()
                self._register_failure(
                    state,
                    f"shard {state.task.index}: attempt {state.attempts} "
                    f"exceeded the {self.timeout:g}s timeout",
                    pending,
                    outcomes,
                )
                progressed = True
        return progressed

    def _register_failure(
        self, state: _TaskState, error: str, pending: list, outcomes: dict
    ) -> None:
        """Requeue a failed attempt, or settle the task per ``on_failure``."""
        state.last_error = error
        if state.attempts <= self.retries:
            state.not_before = time.monotonic() + self.backoff(state.attempts)
            pending.append(state)
            return
        if self.on_failure == "raise":
            raise ClusteringError(
                f"shard {state.task.index} failed after {state.attempts} "
                f"attempts: {error}"
            )
        outcomes[state.task.index] = ShardOutcome(
            index=state.task.index,
            value=None,
            attempts=state.attempts,
            seconds=state.seconds,
            failed=True,
            error=error,
        )
