"""``QSCPipeline`` — the staged driver of quantum spectral clustering.

The paper's four-step chain used to live as one opaque ``fit`` method;
this driver runs it as five composable stages
(:data:`repro.pipeline.stages.STAGE_NAMES`) over a shared
:class:`~repro.pipeline.stage.StageContext`:

* **bit-identical** — ``QSCPipeline.run(graph)`` spawns the same three RNG
  streams from the config seed and executes the same code the monolithic
  ``fit`` did, so outputs are bit-for-bit unchanged at a fixed seed
  (golden-pinned in ``tests/pipeline/test_golden.py``);
* **checkpointable** — ``run(graph, save_stages=DIR)`` writes one
  ``<stage>.npz`` per stage; ``run(graph, resume_from="readout",
  stages_dir=DIR)`` loads everything upstream of ``readout`` from those
  files and recomputes only ``readout`` onward.  Because each stage owns an
  independent spawned stream, a resumed run equals the full run exactly;
* **profiled** — every stage execution is timed and bracketed with
  spectral-cache counters; the per-run profile lands in
  ``QSCResult.profile`` and the process-wide totals
  (:func:`repro.pipeline.telemetry.stage_totals`) feed the sweep runner's
  artifact field.

``QuantumSpectralClustering.fit`` is now a thin wrapper over this class.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import QSCConfig
from repro.core.qpe_engine import spectral_cache_stats
from repro.core.result import QSCResult
from repro.exceptions import ClusteringError
from repro.linalg.array_backend import pipeline_dispatch
from repro.pipeline import checkpoint, telemetry
from repro.pipeline.stage import StageContext
from repro.pipeline.stages import STAGE_NAMES, build_stages
from repro.store import active_store, configure_store
from repro.utils.rng import ensure_rng, spawn_rngs

#: Names of the per-stage RNG streams, in spawn order (the historical
#: ``fit`` spawn order — changing it would change every seeded output).
RNG_STREAMS = ("histogram", "rows", "qmeans")


class QSCPipeline:
    """Composable, checkpointable runner of the quantum clustering chain.

    Parameters
    ----------
    num_clusters:
        Cluster count k, or ``"auto"`` for histogram-native selection in
        the threshold stage.
    config:
        Pipeline tunables; ``None`` uses :class:`QSCConfig` defaults.

    Attributes
    ----------
    state:
        Stage outputs of the most recent :meth:`run` (key → value, e.g.
        ``state["backend"]`` is the QPE backend) — diagnostics passes
        reuse these instead of refitting, and a later run can resume from
        them in memory via ``upstream=pipeline.state``.
    profile:
        Per-stage telemetry of the most recent run, as the same tuple of
        dicts attached to ``QSCResult.profile``.
    """

    #: Stage vocabulary, in execution order (``--resume-from`` choices).
    stage_names = STAGE_NAMES

    def __init__(self, num_clusters, config: QSCConfig | None = None):
        if num_clusters == "auto":
            self.num_clusters = "auto"
        else:
            if int(num_clusters) < 1:
                raise ClusteringError(
                    f"num_clusters must be >= 1 or 'auto', got {num_clusters}"
                )
            self.num_clusters = int(num_clusters)
        self.config = config or QSCConfig()
        self.state: dict = {}
        self.profile: tuple = ()

    def run(
        self,
        graph,
        *,
        save_stages=None,
        resume_from: str | None = None,
        stages_dir=None,
        upstream: dict | None = None,
    ) -> QSCResult:
        """Execute the staged pipeline on ``graph``.

        Parameters
        ----------
        graph:
            The mixed graph to cluster.
        save_stages:
            Directory to checkpoint every computed stage into (created if
            needed); ``None`` skips checkpointing.
        resume_from:
            Stage name to resume at: every stage *before* it is loaded
            from ``upstream`` / ``stages_dir`` instead of computed, and it
            plus everything downstream runs for real.  ``None`` (default)
            computes all five stages.
        stages_dir:
            Checkpoint directory to load upstream stages from; defaults
            to ``save_stages`` when resuming.
        upstream:
            In-memory stage state (a previous run's ``pipeline.state``) to
            reuse instead of reading checkpoints — the zero-copy resume
            the experiment sweeps use.

        Notes
        -----
        When the config carries ``store_dir`` (or a shared content store
        is already attached — see :mod:`repro.store`), checkpoints also
        resolve *through the store*: every cleanly computed stage is
        published under its context fingerprint, resuming falls back to
        the store when the run directory lacks (or holds a corrupt copy
        of) a stage file, and a corrupt run-dir checkpoint is evicted and
        recomputed instead of aborting the resume.  Per-run directories
        keep working unchanged as a compatibility alias.

        Returns
        -------
        :class:`~repro.core.result.QSCResult` with ``result.profile``
        carrying one telemetry row per stage.
        """
        cfg = self.config
        if self.num_clusters != "auto" and self.num_clusters > graph.num_nodes:
            raise ClusteringError(
                f"cannot form {self.num_clusters} clusters from "
                f"{graph.num_nodes} nodes"
            )
        resume_index = 0
        if resume_from is not None:
            if resume_from not in STAGE_NAMES:
                raise ClusteringError(
                    f"unknown stage {resume_from!r}; stages are "
                    f"{', '.join(STAGE_NAMES)}"
                )
            resume_index = STAGE_NAMES.index(resume_from)
        if stages_dir is None:
            stages_dir = save_stages
        # A config carrying ``store_dir`` attaches the shared content
        # store for this (worker) process — the mechanism that makes the
        # store propagate under any multiprocessing start method.
        if cfg.store_dir is not None:
            configure_store(root=cfg.store_dir)
        store = active_store()
        if resume_index > 0 and upstream is None and stages_dir is None and store is None:
            raise ClusteringError(
                f"resume_from={resume_from!r} needs checkpoints: pass "
                "stages_dir/save_stages, a store_dir, or an in-memory "
                "upstream state"
            )
        if resume_index > 0 and upstream is not None:
            blocked = [
                name
                for name in upstream.get("degraded_stages", ())
                if name in STAGE_NAMES and STAGE_NAMES.index(name) < resume_index
            ]
            if blocked:
                raise ClusteringError(
                    "upstream state is degraded (incomplete shards in "
                    f"{', '.join(blocked)}); resume from {blocked[0]!r} or "
                    "earlier so the degraded stage is recomputed"
                )

        master = ensure_rng(cfg.seed)
        streams = spawn_rngs(master, len(RNG_STREAMS))
        ctx = StageContext(
            graph=graph,
            config=cfg,
            requested_clusters=self.num_clusters,
            rngs=dict(zip(RNG_STREAMS, streams)),
            save_dir=save_stages,
            load_dir=stages_dir,
        )
        reports = []
        degraded: list[str] = []
        # Hot-path dispatch is scoped to this run: active exactly when the
        # config selects the ``array`` backend, a no-op otherwise — so
        # dense/sparse runs (including ones after an array run in the same
        # process) execute the unchanged numpy hot paths bit-exactly.
        with pipeline_dispatch(cfg.linalg_backend):
            self._run_stages(
                ctx, reports, degraded, resume_index, upstream,
                stages_dir, save_stages, store,
            )

        if degraded:
            # Mark the state so reusing it in memory (``upstream=
            # pipeline.state``) downstream of the degradation is refused —
            # the degraded stage's outputs carry zeroed rows that are
            # otherwise indistinguishable from complete ones.
            ctx.state["degraded_stages"] = tuple(degraded)
        self.state = ctx.state
        self.profile = tuple(report.as_dict() for report in reports)
        return self._assemble(ctx)

    def _run_stages(
        self,
        ctx: StageContext,
        reports: list,
        degraded: list,
        resume_index: int,
        upstream: dict | None,
        stages_dir,
        save_stages,
        store,
    ) -> None:
        """Execute (or load) every stage, appending telemetry reports."""
        cfg = self.config
        graph = ctx.graph
        for index, stage in enumerate(build_stages()):
            cache_before = spectral_cache_stats()
            start = time.perf_counter()
            ctx.shard_reports = ()
            ctx.incomplete_shards = ()
            ctx.backend_info = {}
            # The context fingerprint binds a checkpoint to everything the
            # stage's output depends on (graph content, requested k, its
            # cumulative config fields) — loading under a different graph
            # or an upstream-relevant config change is a hard error, not
            # silently stale state.  In-memory `upstream` reuse is exempt:
            # the caller explicitly hands over state it owns (the fig4
            # pattern, where only downstream fields differ).
            fingerprint = checkpoint.context_fingerprint(
                graph,
                cfg,
                self.num_clusters if stage.fingerprint_clusters else None,
                stage.fingerprint_fields,
            )
            ctx.fingerprint = fingerprint
            values = None
            source = "computed"
            if index < resume_index:
                if upstream is not None:
                    values = {key: upstream[key] for key in stage.provides}
                    source = "reused"
                else:
                    payload = None
                    corrupt = False
                    if stages_dir is not None and checkpoint.has_stage_checkpoint(
                        stages_dir, stage.name
                    ):
                        try:
                            payload = checkpoint.load_stage_payload(
                                stages_dir, stage.name, fingerprint
                            )
                        except checkpoint.CorruptCheckpointError:
                            # Corrupt checkpoints are evicted and the
                            # stage recomputed — damaged bits are never
                            # served, and the rewrite below heals the file.
                            checkpoint.evict_stage_checkpoint(
                                stages_dir, stage.name
                            )
                            corrupt = True
                    if payload is None and store is not None:
                        payload = store.get(
                            checkpoint.STAGE_NAMESPACE,
                            checkpoint.store_key(stage.name, fingerprint),
                        )
                    if payload is not None:
                        values = stage.unpack(payload, ctx)
                        source = "checkpoint"
                    elif not corrupt and store is None:
                        # The classic contract: resuming over a plainly
                        # missing run-dir checkpoint (no store attached to
                        # fall back on) is a hard error, not a silent
                        # recompute.  This call raises it.
                        checkpoint.load_stage_payload(
                            stages_dir, stage.name, fingerprint
                        )
            if values is None:
                values = stage.execute(ctx)
                source = "computed"
                if ctx.incomplete_shards:
                    degraded.append(stage.name)
                # A degraded sharded stage (incomplete shards) is never
                # checkpointed whole, and neither is anything downstream
                # of it: downstream outputs are computed from zeroed rows
                # yet would fingerprint exactly like complete ones.  The
                # completed shard files remain, so a later resume
                # recomputes only what is actually missing instead of
                # silently inheriting zero rows.
                if not degraded and (save_stages is not None or store is not None):
                    packed = stage.pack(values)
                    if save_stages is not None:
                        checkpoint.save_stage_payload(
                            save_stages, stage.name, packed, fingerprint
                        )
                    if store is not None:
                        store.put(
                            checkpoint.STAGE_NAMESPACE,
                            checkpoint.store_key(stage.name, fingerprint),
                            packed,
                        )
            seconds = time.perf_counter() - start
            cache_after = spectral_cache_stats()
            ctx.state.update(values)
            report = telemetry.StageReport(
                stage=stage.name,
                seconds=seconds,
                source=source,
                cache_hits=cache_after["hits"] - cache_before["hits"],
                cache_misses=cache_after["misses"] - cache_before["misses"],
                shards=ctx.shard_reports,
                incomplete_shards=ctx.incomplete_shards,
                backend=ctx.backend_info.get("linalg_backend"),
                eigensolver=ctx.backend_info.get("eigensolver"),
            )
            telemetry.record_stage(report)
            reports.append(report)

    def _assemble(self, ctx: StageContext) -> QSCResult:
        """Fold the final stage state into the public result record."""
        km = ctx.state["qmeans"]
        return QSCResult(
            labels=km.labels,
            embedding=ctx.state["features"],
            row_norms=ctx.state["norms"],
            eigenvalue_histogram=ctx.state["histogram"],
            threshold=ctx.state["threshold"],
            accepted_bins=np.asarray(ctx.state["accepted"], dtype=int),
            qmeans=km,
            backend_name=ctx.state["backend"].name,
            profile=self.profile,
        )
