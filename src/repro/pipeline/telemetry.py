"""Per-stage telemetry of the staged clustering pipeline.

Two sinks record every stage execution:

* the **run-local profile** — each :meth:`~repro.pipeline.pipeline.QSCPipeline.run`
  collects one :class:`StageReport` per stage (wall time, data source,
  spectral-cache hit/miss delta) and attaches the tuple to
  ``QSCResult.profile``;
* the **process-wide totals** (:func:`stage_totals`) — an accumulator the
  experiment sweep runner brackets around each trial, exactly like the
  spectral-cache counters, so ``repro.sweep/1`` artifacts can report the
  aggregate seconds spent per stage across a whole sweep.

Totals are process-local: parallel sweep workers each accumulate their
own, and the runner sums the per-task deltas — correct under any
multiprocessing start method.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Where a stage's output came from during a pipeline run.
STAGE_SOURCES = ("computed", "checkpoint", "reused")

#: Counter keys of one stage's process-wide totals entry.
TOTAL_KEYS = ("seconds", "computed", "loaded")


@dataclass(frozen=True)
class StageReport:
    """Telemetry of one stage execution inside one pipeline run.

    Attributes
    ----------
    stage:
        Stage name (one of ``QSCPipeline.stage_names``).
    seconds:
        Wall time of the stage (compute, checkpoint load, or in-memory
        reuse — whichever path ran).
    source:
        ``"computed"`` (ran for real), ``"checkpoint"`` (loaded from a
        ``--save-stages`` directory), or ``"reused"`` (taken from another
        run's in-memory state).
    cache_hits / cache_misses:
        Spectral-cache delta bracketing the stage — how much of its
        spectral work was served from :data:`repro.core.qpe_engine.SPECTRAL_CACHE`.
    """

    stage: str
    seconds: float
    source: str
    cache_hits: int
    cache_misses: int

    def as_dict(self) -> dict:
        """Plain-dict form used by ``QSCResult.profile`` and the CLI."""
        return {
            "stage": self.stage,
            "seconds": float(self.seconds),
            "source": self.source,
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
        }


_TOTALS: dict[str, dict] = {}


def record_stage(report: StageReport) -> None:
    """Fold one stage execution into the process-wide totals."""
    entry = _TOTALS.setdefault(
        report.stage, {"seconds": 0.0, "computed": 0, "loaded": 0}
    )
    entry["seconds"] += float(report.seconds)
    if report.source == "computed":
        entry["computed"] += 1
    else:
        entry["loaded"] += 1


def stage_totals() -> dict:
    """Snapshot of the process-wide per-stage totals.

    Returns ``{stage: {"seconds": float, "computed": int, "loaded": int}}``
    — ``computed`` counts real executions, ``loaded`` counts checkpoint
    loads and in-memory reuses (work the staged pipeline *skipped*).
    """
    return {stage: dict(entry) for stage, entry in _TOTALS.items()}


def reset_stage_totals() -> None:
    """Zero the process-wide totals (tests and benchmarks)."""
    _TOTALS.clear()


def totals_delta(before: dict, after: dict) -> dict:
    """Per-stage difference of two :func:`stage_totals` snapshots."""
    delta = {}
    for stage, entry in after.items():
        base = before.get(stage, {})
        row = {key: entry[key] - base.get(key, 0) for key in TOTAL_KEYS}
        if row["computed"] or row["loaded"] or row["seconds"]:
            delta[stage] = row
    return delta


def merge_totals(accumulator: dict, delta: dict) -> dict:
    """Fold a :func:`totals_delta` into ``accumulator`` (in place)."""
    for stage, row in delta.items():
        entry = accumulator.setdefault(
            stage, {"seconds": 0.0, "computed": 0, "loaded": 0}
        )
        for key in TOTAL_KEYS:
            entry[key] += row[key]
    return accumulator
