"""Per-stage telemetry of the staged clustering pipeline.

Two sinks record every stage execution:

* the **run-local profile** — each :meth:`~repro.pipeline.pipeline.QSCPipeline.run`
  collects one :class:`StageReport` per stage (wall time, data source,
  spectral-cache hit/miss delta) and attaches the tuple to
  ``QSCResult.profile``;
* the **process-wide totals** (:func:`stage_totals`) — an accumulator the
  experiment sweep runner brackets around each trial, exactly like the
  spectral-cache counters, so ``repro.sweep/1`` artifacts can report the
  aggregate seconds spent per stage across a whole sweep.

Totals are process-local: parallel sweep workers each accumulate their
own, and the runner sums the per-task deltas — correct under any
multiprocessing start method.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Where a stage's output came from during a pipeline run.
STAGE_SOURCES = ("computed", "checkpoint", "reused")

#: Counter keys of one stage's process-wide totals entry.
TOTAL_KEYS = ("seconds", "computed", "loaded")

#: Where one row-shard's payload came from during a sharded stage.
SHARD_SOURCES = ("computed", "checkpoint", "failed")

#: Shard counter keys a sharded stage adds to its totals entry.  They are
#: only present when shard activity actually occurred, so the unsharded
#: totals shape is exactly :data:`TOTAL_KEYS` as before.
SHARD_TOTAL_KEYS = (
    "shards_computed",
    "shards_loaded",
    "shards_retried",
    "shards_failed",
)

#: String annotation keys a stage may attach to its totals entry (set by
#: the stages that resolve the linalg backend — see
#: :func:`repro.linalg.backends.backend_telemetry`).  Like the shard
#: counters they appear only where recorded, so the classic totals shape
#: is unchanged for every other stage.
ANNOTATION_KEYS = ("linalg_backend", "eigensolver")


@dataclass(frozen=True)
class ShardReport:
    """Telemetry of one row shard inside a sharded stage execution.

    Attributes
    ----------
    shard:
        Shard index within the stage's :func:`~repro.pipeline.sharding.shard_layout`.
    start / stop:
        The contiguous row span the shard owns.
    seconds:
        Supervised wall time across all attempts (or the checkpoint load
        time when the shard was resumed from disk).
    attempts:
        Worker attempts the supervisor ran (``0`` for checkpoint loads;
        ``> 1`` means the shard was retried).
    source:
        ``"computed"`` (a worker produced it), ``"checkpoint"`` (loaded
        from a shard file of a previous run), or ``"failed"`` (every
        attempt failed and the run degraded to partial results).
    error:
        Last failure message for ``source == "failed"``, else ``None``.
    """

    shard: int
    start: int
    stop: int
    seconds: float
    attempts: int
    source: str
    error: str | None = None

    def as_dict(self) -> dict:
        """Plain-dict form used inside ``StageReport.as_dict``."""
        row = {
            "shard": int(self.shard),
            "start": int(self.start),
            "stop": int(self.stop),
            "seconds": float(self.seconds),
            "attempts": int(self.attempts),
            "source": self.source,
        }
        if self.error is not None:
            row["error"] = self.error
        return row


@dataclass(frozen=True)
class StageReport:
    """Telemetry of one stage execution inside one pipeline run.

    Attributes
    ----------
    stage:
        Stage name (one of ``QSCPipeline.stage_names``).
    seconds:
        Wall time of the stage (compute, checkpoint load, or in-memory
        reuse — whichever path ran).
    source:
        ``"computed"`` (ran for real), ``"checkpoint"`` (loaded from a
        ``--save-stages`` directory), or ``"reused"`` (taken from another
        run's in-memory state).
    cache_hits / cache_misses:
        Spectral-cache delta bracketing the stage — how much of its
        spectral work was served from :data:`repro.core.qpe_engine.SPECTRAL_CACHE`.
    shards:
        Per-shard :class:`ShardReport` rows when the stage ran sharded
        (``QSCConfig.readout_shards``); empty otherwise.
    incomplete_shards:
        Shard indices that failed under graceful degradation — their rows
        are zero in the merged output.  Empty on complete runs.
    backend / eigensolver:
        Resolved linalg backend (``"dense"``, ``"sparse"``,
        ``"array[numpy]"``, …) and eigensolver route (``"eigh"``,
        ``"eigsh"``, ``"lobpcg"``) for stages that solve — ``None`` on
        stages that don't touch the linalg contract.
    """

    stage: str
    seconds: float
    source: str
    cache_hits: int
    cache_misses: int
    shards: tuple = ()
    incomplete_shards: tuple = ()
    backend: str | None = None
    eigensolver: str | None = None

    def as_dict(self) -> dict:
        """Plain-dict form used by ``QSCResult.profile`` and the CLI."""
        row = {
            "stage": self.stage,
            "seconds": float(self.seconds),
            "source": self.source,
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
        }
        if self.shards:
            row["shards"] = [shard.as_dict() for shard in self.shards]
            row["incomplete_shards"] = [int(i) for i in self.incomplete_shards]
        if self.backend is not None:
            row["linalg_backend"] = self.backend
        if self.eigensolver is not None:
            row["eigensolver"] = self.eigensolver
        return row


_TOTALS: dict[str, dict] = {}


def record_stage(report: StageReport) -> None:
    """Fold one stage execution into the process-wide totals."""
    entry = _TOTALS.setdefault(
        report.stage, {"seconds": 0.0, "computed": 0, "loaded": 0}
    )
    entry["seconds"] += float(report.seconds)
    if report.source == "computed":
        entry["computed"] += 1
    else:
        entry["loaded"] += 1
    if report.shards:
        # Shard counters appear only on stages that actually ran sharded,
        # keeping the classic totals shape byte-for-byte for everyone else.
        for key in SHARD_TOTAL_KEYS:
            entry.setdefault(key, 0)
        for shard in report.shards:
            if shard.source == "computed":
                entry["shards_computed"] += 1
            elif shard.source == "checkpoint":
                entry["shards_loaded"] += 1
            else:
                entry["shards_failed"] += 1
            entry["shards_retried"] += max(0, int(shard.attempts) - 1)
    # Annotations overwrite (latest run wins) rather than accumulate —
    # they describe *which* backend ran, not how much work it did.
    if report.backend is not None:
        entry["linalg_backend"] = report.backend
    if report.eigensolver is not None:
        entry["eigensolver"] = report.eigensolver


def stage_totals() -> dict:
    """Snapshot of the process-wide per-stage totals.

    Returns ``{stage: {"seconds": float, "computed": int, "loaded": int}}``
    — ``computed`` counts real executions, ``loaded`` counts checkpoint
    loads and in-memory reuses (work the staged pipeline *skipped*).
    """
    return {stage: dict(entry) for stage, entry in _TOTALS.items()}


def reset_stage_totals() -> None:
    """Zero the process-wide totals (tests and benchmarks)."""
    _TOTALS.clear()


def totals_delta(before: dict, after: dict) -> dict:
    """Per-stage difference of two :func:`stage_totals` snapshots.

    Shard counter keys (:data:`SHARD_TOTAL_KEYS`) are carried through
    only for stages whose entries grew them — unsharded stages keep the
    classic three-key rows.
    """
    delta = {}
    for stage, entry in after.items():
        base = before.get(stage, {})
        keys = TOTAL_KEYS + tuple(k for k in SHARD_TOTAL_KEYS if k in entry)
        row = {key: entry[key] - base.get(key, 0) for key in keys}
        if row["computed"] or row["loaded"] or row["seconds"]:
            # String annotations are copied, not subtracted.
            for key in ANNOTATION_KEYS:
                if key in entry:
                    row[key] = entry[key]
            delta[stage] = row
    return delta


def merge_totals(accumulator: dict, delta: dict) -> dict:
    """Fold a :func:`totals_delta` into ``accumulator`` (in place)."""
    for stage, row in delta.items():
        entry = accumulator.setdefault(
            stage, {"seconds": 0.0, "computed": 0, "loaded": 0}
        )
        for key in row:
            if isinstance(row[key], str):
                entry[key] = row[key]
            else:
                entry[key] = entry.get(key, 0) + row[key]
    return accumulator


def profile_stage_rows(profile: dict, order: tuple = ()) -> list[dict]:
    """Flatten an artifact/result ``profile`` mapping into ordered rows.

    ``profile`` is the ``{stage: {seconds, computed, loaded, shards_*}}``
    mapping a ``repro.sweep/1`` artifact (or :func:`stage_totals`) carries.
    Stages listed in ``order`` come first in that order; any extras follow
    alphabetically.  Each row is a flat event-ready dict — the service
    layer streams these as per-stage progress events, shard counters
    included exactly when the stage ran sharded.
    """
    names = [stage for stage in order if stage in profile]
    names += [stage for stage in sorted(profile) if stage not in names]
    rows = []
    for stage in names:
        entry = profile[stage]
        row = {
            "stage": stage,
            "seconds": float(entry.get("seconds", 0.0)),
            "computed": int(entry.get("computed", 0)),
            "loaded": int(entry.get("loaded", 0)),
        }
        for key in SHARD_TOTAL_KEYS:
            if key in entry:
                row[key] = int(entry[key])
        for key in ANNOTATION_KEYS:
            if key in entry:
                row[key] = str(entry[key])
        rows.append(row)
    return rows
