"""On-disk checkpoint format of the staged pipeline.

One pipeline run with ``save_stages=DIR`` writes one ``<stage>.npz`` file
per stage into ``DIR`` — a plain :func:`numpy.savez_compressed` archive of
the stage's packed payload (see ``Stage.pack``/``Stage.unpack``) plus a
``__checkpoint_version__`` tag.  A later run with ``resume_from=STAGE``
loads the payloads of every stage *upstream* of ``STAGE`` instead of
recomputing them, and re-runs ``STAGE`` and everything downstream.

The format is deliberately dumb: arrays and scalars only, no pickling, so
checkpoints are portable across processes, machines and library versions
(a version bump is detected and rejected rather than misread).

Every archive also records the **context fingerprint** of the run that
wrote it — a digest of the input graph plus exactly the config fields and
the requested cluster count that stage's output depends on (each stage
declares them, cumulatively with its upstream).  Loading verifies the
fingerprint against the resuming run, so stale state — a different graph,
seed, precision, or ``--clusters`` — is a hard error instead of silently
wrong labels.  Fields a stage's output provably does *not* depend on
(e.g. ``shots`` for the threshold stage) stay outside its fingerprint, so
the supported pattern of resuming the readout stage at a different shot
budget keeps working.
"""

from __future__ import annotations

import hashlib
import pathlib

import numpy as np

from repro.exceptions import ClusteringError

#: Version tag stored inside every stage checkpoint archive.
CHECKPOINT_VERSION = 2

#: Content-store namespaces of stage and shard checkpoint entries (see
#: :mod:`repro.store`): the pipeline and the sharded-readout path resolve
#: checkpoints through the store when one is attached, with the per-run
#: ``.npz`` directories kept as a compatibility alias.
STAGE_NAMESPACE = "stage"
SHARD_NAMESPACE = "shard"

_VERSION_KEY = "__checkpoint_version__"
_CONTEXT_KEY = "__context_fingerprint__"


class CorruptCheckpointError(ClusteringError):
    """A checkpoint file exists but cannot be read back (bit flips,
    truncation, a crashed writer).  Distinct from a *missing* checkpoint
    — consumers evict the corrupt file and recompute the stage/shard
    instead of serving or propagating bad bits."""


def store_key(stage_name: str, fingerprint: str) -> str:
    """Content-store key of one stage/shard checkpoint entry.

    Embeds :data:`CHECKPOINT_VERSION` so a format bump naturally misses
    every entry written under the old layout instead of misreading it.
    """
    return f"v{CHECKPOINT_VERSION}:{stage_name}@{fingerprint}"


def graph_fingerprint(graph) -> str:
    """Content digest of a mixed graph (size + full connection list)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(graph.num_nodes).encode())
    for edge in graph.edges():
        digest.update(
            f"{edge.u},{edge.v},{edge.weight},{edge.directed};".encode()
        )
    return digest.hexdigest()


def context_fingerprint(graph, config, requested_clusters, fields) -> str:
    """Digest of everything a stage's checkpointed output depends on.

    ``fields`` is the stage's cumulative tuple of :class:`QSCConfig`
    attribute names; the graph content is always included, and
    ``requested_clusters`` (``int`` or ``"auto"``) participates unless the
    caller passes ``None`` — the laplacian stage's output does not depend
    on k, so changing ``--clusters`` legitimately reuses its checkpoint.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(graph_fingerprint(graph).encode())
    if requested_clusters is not None:
        digest.update(repr(requested_clusters).encode())
    for name in fields:
        digest.update(f"{name}={getattr(config, name)!r};".encode())
    return digest.hexdigest()


def stage_path(directory, stage_name: str) -> pathlib.Path:
    """The archive path of one stage's checkpoint inside ``directory``."""
    return pathlib.Path(directory) / f"{stage_name}.npz"


def save_stage_payload(
    directory, stage_name: str, payload: dict, fingerprint: str = ""
) -> pathlib.Path:
    """Write one stage's packed payload to ``<directory>/<stage>.npz``.

    ``payload`` maps names to arrays or scalars (anything
    :func:`numpy.asarray` accepts); the directory is created if needed.
    ``fingerprint`` is the writing run's context digest for this stage
    (see :func:`context_fingerprint`), verified again at load time.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = stage_path(directory, stage_name)
    arrays = {key: np.asarray(value) for key, value in payload.items()}
    arrays[_VERSION_KEY] = np.asarray(CHECKPOINT_VERSION)
    arrays[_CONTEXT_KEY] = np.asarray(fingerprint)
    np.savez_compressed(path, **arrays)
    return path


def load_stage_payload(directory, stage_name: str, fingerprint: str = "") -> dict:
    """Read one stage's payload back; raises on missing/incompatible files.

    A non-empty ``fingerprint`` must match the one stored at save time —
    a mismatch means the checkpoint was written for a different graph,
    cluster count, or an upstream-relevant config field, and loading it
    would silently corrupt the resumed run.
    """
    path = stage_path(directory, stage_name)
    if not path.exists():
        raise ClusteringError(
            f"no checkpoint for stage {stage_name!r} in {path.parent} — "
            f"run with save_stages first"
        )
    try:
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
    except ClusteringError:
        raise
    except Exception as error:
        # The zip layer CRC-checks every member, so bit flips, truncation
        # and half-written files all surface here (as BadZipFile,
        # zlib.error, OSError, ...).  Anything unreadable is corruption:
        # report it as such so callers evict and recompute rather than
        # abort on, or worse silently trust, a damaged file.
        raise CorruptCheckpointError(
            f"checkpoint {path} is corrupt or truncated ({error}); "
            "delete it (or let the pipeline recompute the stage)"
        ) from error
    version = int(payload.pop(_VERSION_KEY, -1))
    if version != CHECKPOINT_VERSION:
        raise ClusteringError(
            f"checkpoint {path} has version {version}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    stored = str(payload.pop(_CONTEXT_KEY, ""))
    if fingerprint and stored != fingerprint:
        raise ClusteringError(
            f"checkpoint {path} was written for a different run context "
            "(graph, cluster count, or an upstream config field changed); "
            "re-run with save_stages to refresh it"
        )
    return payload


def has_stage_checkpoint(directory, stage_name: str) -> bool:
    """Whether ``directory`` holds a checkpoint for ``stage_name``."""
    return stage_path(directory, stage_name).exists()


def evict_stage_checkpoint(directory, stage_name: str) -> bool:
    """Remove one stage's checkpoint file; ``True`` if something was removed.

    The self-heal half of :class:`CorruptCheckpointError`: a corrupt file
    left in place would fail every subsequent resume, so consumers evict
    it, recompute, and (when saving) write a fresh replacement.
    """
    path = stage_path(directory, stage_name)
    try:
        path.unlink()
        return True
    except OSError:
        return False
