"""The five concrete stages of the quantum spectral clustering pipeline.

Extracted verbatim from the monolithic ``QuantumSpectralClustering.fit``
(the golden test in ``tests/pipeline/test_golden.py`` pins bit-identity at
fixed seeds):

1. :class:`LaplacianStage` — Hermitian Laplacian 𝓛(θ) and the QPE backend
   built on it;
2. :class:`ThresholdStage` — sampled eigenvalue histogram, the auto-k
   branch (:mod:`repro.core.autok` — quantum model selection), and the
   projection threshold ν with its accepted readout set;
3. :class:`ReadoutStage` — the batched eigenvalue-filter / tomography /
   amplitude-estimation pass (:mod:`repro.core.readout`);
4. :class:`EmbeddingStage` — real feature map of the reconstructed rows;
5. :class:`QMeansStage` — δ-noisy k-means on the embedding.

Each stage checkpoints its outputs as plain arrays (see
:mod:`repro.pipeline.checkpoint`); the Laplacian stage stores the matrix
itself and rebuilds the QPE backend on load — in-process the rebuild is
served by the spectral cache, across processes it recomputes the
eigendecomposition (the graph → Laplacian construction and the histogram /
threshold / readout draws are skipped either way).
"""

from __future__ import annotations

import numpy as np

from repro.core.autok import estimate_num_clusters_quantum
from repro.core.projection import accepted_outcomes, select_threshold
from repro.core.qmeans import qmeans
from repro.core.qpe_engine import make_backend
from repro.core.readout import batched_readout
from repro.exceptions import ClusteringError
from repro.graphs.hermitian import hermitian_laplacian
from repro.linalg import backend_telemetry, is_sparse_matrix
from repro.pipeline.stage import Stage, StageContext, scalar
from repro.spectral.embedding import complex_to_real_features, row_normalize
from repro.spectral.kmeans import KMeansResult


# Cumulative checkpoint-fingerprint field sets (see Stage.fingerprint_fields).
# The laplacian *payload* depends only on the graph/Laplacian knobs — the
# backend is rebuilt from the live config on load, so QPE fields stay out.
_LAPLACIAN_FIELDS = ("theta", "normalization", "linalg_backend")
# Threshold output adds everything the histogram + selection consume: the
# QPE engine construction knobs, the histogram budget, the explicit
# threshold, and the master seed the histogram stream derives from.
_THRESHOLD_FIELDS = _LAPLACIAN_FIELDS + (
    "backend",
    "precision_bits",
    "evolution",
    "trotter_steps",
    "trotter_order",
    "histogram_shots",
    "eigenvalue_threshold",
    "seed",
)
# Readout adds the shot budget (chunking/threading/sharding provably don't
# change output — pinned in tests/core/test_readout.py and
# tests/pipeline/test_sharding.py — so those knobs stay out, which is what
# lets a resume re-chunk or re-shard freely).
_READOUT_FIELDS = _THRESHOLD_FIELDS + ("shots",)
_QMEANS_FIELDS = _READOUT_FIELDS + (
    "qmeans_delta",
    "qmeans_iterations",
    "kmeans_restarts",
)


class LaplacianStage(Stage):
    """Graph → Hermitian Laplacian → QPE backend."""

    name = "laplacian"
    requires = ()
    provides = ("laplacian", "backend")
    fingerprint_fields = _LAPLACIAN_FIELDS
    fingerprint_clusters = False

    def run(self, ctx: StageContext) -> dict:
        cfg = ctx.config
        ctx.backend_info = backend_telemetry(
            cfg.linalg_backend, ctx.graph.num_nodes
        )
        laplacian = hermitian_laplacian(
            ctx.graph,
            theta=cfg.theta,
            normalization=cfg.normalization,
            backend=cfg.linalg_backend,
        )
        return {"laplacian": laplacian, "backend": make_backend(laplacian, cfg)}

    def pack(self, values: dict) -> dict:
        laplacian = values["laplacian"]
        if is_sparse_matrix(laplacian):
            csr = laplacian.tocsr()
            return {
                "format": scalar("csr"),
                "data": csr.data,
                "indices": csr.indices,
                "indptr": csr.indptr,
                "shape": np.asarray(csr.shape),
            }
        return {"format": scalar("dense"), "matrix": np.asarray(laplacian)}

    def unpack(self, payload: dict, ctx: StageContext) -> dict:
        kind = str(payload["format"])
        if kind == "csr":
            import scipy.sparse as sparse

            laplacian = sparse.csr_matrix(
                (payload["data"], payload["indices"], payload["indptr"]),
                shape=tuple(int(s) for s in payload["shape"]),
            )
        elif kind == "dense":
            laplacian = payload["matrix"]
        else:
            raise ClusteringError(f"unknown laplacian checkpoint format {kind!r}")
        # The backend is rebuilt rather than stored: construction is
        # deterministic in (laplacian, config) and — in-process — served
        # from the spectral cache, so the rebuild is transparent.
        return {"laplacian": laplacian, "backend": make_backend(laplacian, ctx.config)}


class ThresholdStage(Stage):
    """Histogram sampling, auto-k model selection and threshold choice."""

    name = "threshold"
    requires = ("backend",)
    provides = ("histogram", "num_clusters", "threshold", "accepted")
    fingerprint_fields = _THRESHOLD_FIELDS

    def run(self, ctx: StageContext) -> dict:
        cfg = ctx.config
        ctx.backend_info = backend_telemetry(
            cfg.linalg_backend, ctx.graph.num_nodes
        )
        backend = ctx.require("backend")
        histogram = backend.eigenvalue_histogram(
            cfg.histogram_shots, ctx.rngs["histogram"]
        )
        if ctx.requested_clusters == "auto":
            if ctx.graph.num_nodes < 4:
                raise ClusteringError(
                    "auto cluster selection needs at least four nodes"
                )
            num_clusters = estimate_num_clusters_quantum(
                histogram,
                ctx.graph.num_nodes,
                cfg.precision_bits,
                backend.lambda_scale,
            ).num_clusters
        else:
            num_clusters = int(ctx.requested_clusters)
        if cfg.eigenvalue_threshold is not None:
            threshold = float(cfg.eigenvalue_threshold)
            accepted = accepted_outcomes(
                threshold, cfg.precision_bits, backend.lambda_scale
            )
        else:
            selection = select_threshold(
                histogram,
                num_clusters,
                ctx.graph.num_nodes,
                cfg.precision_bits,
                backend.lambda_scale,
            )
            threshold = selection.threshold
            # Accept every readout below the threshold, not only the bins
            # that happened to receive histogram counts — non-dyadic
            # eigenphases spread QPE mass into neighbouring bins and those
            # tails belong to the subspace too.
            accepted = accepted_outcomes(
                threshold, cfg.precision_bits, backend.lambda_scale
            )
        if accepted.size == 0:
            raise ClusteringError(
                "eigenvalue filter accepted no QPE readouts; increase "
                "precision_bits or the threshold"
            )
        return {
            "histogram": histogram,
            "num_clusters": num_clusters,
            "threshold": threshold,
            "accepted": accepted,
        }

    def pack(self, values: dict) -> dict:
        return {
            "histogram": np.asarray(values["histogram"], dtype=float),
            "num_clusters": scalar(int(values["num_clusters"])),
            "threshold": scalar(float(values["threshold"])),
            "accepted": np.asarray(values["accepted"], dtype=int),
        }

    def unpack(self, payload: dict, ctx: StageContext) -> dict:
        return {
            "histogram": np.asarray(payload["histogram"], dtype=float),
            "num_clusters": int(payload["num_clusters"]),
            "threshold": float(payload["threshold"]),
            "accepted": np.asarray(payload["accepted"], dtype=int),
        }


class ReadoutStage(Stage):
    """Batched eigenvalue filter, tomography and amplitude estimation."""

    name = "readout"
    requires = ("backend", "accepted")
    provides = ("rows", "norms", "probabilities")
    fingerprint_fields = _READOUT_FIELDS

    def run(self, ctx: StageContext) -> dict:
        cfg = ctx.config
        if cfg.readout_shards is None:
            readout = batched_readout(
                ctx.require("backend"),
                ctx.require("accepted"),
                cfg.shots,
                ctx.rngs["rows"],
                chunk_size=cfg.readout_chunk_size,
                draw_threads=cfg.draw_threads,
            )
        else:
            # Deferred import: sharding pulls in the supervisor machinery,
            # which unsharded runs never need.
            from repro.pipeline.sharding import sharded_readout

            sharded = sharded_readout(
                ctx.require("backend"),
                ctx.require("accepted"),
                cfg.shots,
                ctx.rngs["rows"],
                shard_count=cfg.readout_shards,
                chunk_size=cfg.readout_chunk_size,
                draw_threads=cfg.draw_threads,
                timeout=cfg.shard_timeout,
                retries=cfg.shard_retries,
                on_failure=cfg.shard_failure_mode,
                max_workers=cfg.shard_workers,
                checkpoint_dir=ctx.load_dir,
                save_dir=ctx.save_dir,
                context_fingerprint=ctx.fingerprint,
                stage_name=self.name,
            )
            ctx.shard_reports = sharded.shards
            ctx.incomplete_shards = sharded.incomplete_shards
            readout = sharded.result
        return {
            "rows": readout.rows,
            "norms": readout.norms,
            "probabilities": readout.probabilities,
        }

    def pack(self, values: dict) -> dict:
        return {
            "rows": np.asarray(values["rows"], dtype=complex),
            "norms": np.asarray(values["norms"], dtype=float),
            "probabilities": np.asarray(values["probabilities"], dtype=float),
        }

    def unpack(self, payload: dict, ctx: StageContext) -> dict:
        return {
            "rows": np.asarray(payload["rows"], dtype=complex),
            "norms": np.asarray(payload["norms"], dtype=float),
            "probabilities": np.asarray(payload["probabilities"], dtype=float),
        }


class EmbeddingStage(Stage):
    """Real feature map of the reconstructed projector rows."""

    name = "embedding"
    requires = ("rows",)
    provides = ("features",)
    fingerprint_fields = _READOUT_FIELDS

    def run(self, ctx: StageContext) -> dict:
        rows = ctx.require("rows")
        features = complex_to_real_features(rows[:, : ctx.graph.num_nodes])
        return {"features": row_normalize(features)}

    def pack(self, values: dict) -> dict:
        return {"features": np.asarray(values["features"], dtype=float)}

    def unpack(self, payload: dict, ctx: StageContext) -> dict:
        return {"features": np.asarray(payload["features"], dtype=float)}


class QMeansStage(Stage):
    """δ-noisy k-means on the spectral embedding."""

    name = "qmeans"
    requires = ("features", "num_clusters")
    provides = ("qmeans",)
    fingerprint_fields = _QMEANS_FIELDS

    def run(self, ctx: StageContext) -> dict:
        cfg = ctx.config
        km = qmeans(
            ctx.require("features"),
            ctx.require("num_clusters"),
            delta=cfg.qmeans_delta,
            max_iterations=cfg.qmeans_iterations,
            num_restarts=cfg.kmeans_restarts,
            seed=ctx.rngs["qmeans"],
        )
        return {"qmeans": km}

    def pack(self, values: dict) -> dict:
        km = values["qmeans"]
        return {
            "labels": np.asarray(km.labels, dtype=int),
            "centroids": np.asarray(km.centroids, dtype=float),
            "inertia": scalar(float(km.inertia)),
            "iterations": scalar(int(km.iterations)),
            "converged": scalar(bool(km.converged)),
        }

    def unpack(self, payload: dict, ctx: StageContext) -> dict:
        return {
            "qmeans": KMeansResult(
                labels=np.asarray(payload["labels"], dtype=int),
                centroids=np.asarray(payload["centroids"], dtype=float),
                inertia=float(payload["inertia"]),
                iterations=int(payload["iterations"]),
                converged=bool(payload["converged"]),
            )
        }


def build_stages() -> tuple[Stage, ...]:
    """Fresh instances of the five pipeline stages, in execution order."""
    return (
        LaplacianStage(),
        ThresholdStage(),
        ReadoutStage(),
        EmbeddingStage(),
        QMeansStage(),
    )


#: Stage names in execution order — the ``--resume-from`` vocabulary.
STAGE_NAMES = tuple(stage.name for stage in build_stages())
