"""The stage contract of the staged clustering pipeline.

A :class:`Stage` is one step of the paper's algorithm with declared, typed
inputs and outputs: it reads named values from the shared
:class:`StageContext` state (``requires``), computes and returns new ones
(``provides``), and can round-trip its outputs through a dumb
array-only checkpoint payload (``pack``/``unpack``) so runs support
``save_stages`` / ``resume_from``.  The concrete five stages live in
:mod:`repro.pipeline.stages`; :class:`repro.pipeline.pipeline.QSCPipeline`
chains them.

Contract rules (enforced by the pipeline driver):

* a stage may read only ``ctx.state`` keys it declares in ``requires`` and
  the run-wide inputs (graph, config, its own RNG stream);
* ``run`` returns exactly the keys in ``provides``;
* ``unpack(pack(values), ctx)`` must reproduce ``values`` for every
  checkpointable key — resuming downstream of a checkpoint is then
  bit-identical to a full run, because each stage consumes its *own*
  spawned RNG stream (skipping upstream stages never shifts a downstream
  stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ClusteringError


@dataclass
class StageContext:
    """Everything a stage may touch during one pipeline run.

    Attributes
    ----------
    graph:
        The input :class:`~repro.graphs.mixed_graph.MixedGraph`.
    config:
        The run's :class:`~repro.core.config.QSCConfig`.
    requested_clusters:
        The caller's cluster count — an ``int`` or ``"auto"`` (resolved to
        a concrete ``num_clusters`` by the threshold stage).
    rngs:
        Named per-stage RNG streams (``"histogram"``, ``"rows"``,
        ``"qmeans"``), spawned once from the config seed exactly as the
        monolithic ``fit`` did.  Streams are independent: a stage served
        from a checkpoint simply never consumes its stream, and every
        downstream stream is unaffected.
    state:
        The shared key → value store stages read from and write to.
    save_dir / load_dir:
        Checkpoint directories of the current run (``save_stages`` /
        ``stages_dir``), exposed so a stage that manages *sub-stage*
        checkpoints — the sharded readout's ``readout.shard-<i>.npz``
        files — can write and resume them itself.  ``None`` when the run
        is not checkpointing.
    fingerprint:
        The executing stage's context fingerprint, set by the driver
        before each stage; sub-stage checkpoints extend it.
    shard_reports / incomplete_shards:
        Side channel a sharded stage fills during ``run``; the driver
        folds them into the stage's :class:`~repro.pipeline.telemetry.StageReport`
        and resets them between stages.
    backend_info:
        Side channel for linalg telemetry: a stage that resolves the
        linalg backend records ``{"linalg_backend": ..., "eigensolver":
        ...}`` here (see :func:`repro.linalg.backends.backend_telemetry`);
        the driver annotates the stage's report with it and resets the
        dict between stages.
    """

    graph: object
    config: object
    requested_clusters: object
    rngs: dict
    state: dict = field(default_factory=dict)
    save_dir: object = None
    load_dir: object = None
    fingerprint: str = ""
    shard_reports: tuple = ()
    incomplete_shards: tuple = ()
    backend_info: dict = field(default_factory=dict)

    def require(self, key: str):
        """Fetch a state value a stage declared in ``requires``."""
        if key not in self.state:
            raise ClusteringError(
                f"pipeline state has no {key!r} — upstream stage missing"
            )
        return self.state[key]


class Stage:
    """Base class of one pipeline step.

    Subclasses set ``name``, ``requires`` and ``provides`` and implement
    :meth:`run`; stages whose outputs can be checkpointed also implement
    :meth:`pack` and :meth:`unpack` (the default raises, marking the stage
    non-resumable).
    """

    #: Stage name — the ``--resume-from`` / checkpoint-file identifier.
    name: str = ""
    #: State keys the stage reads.
    requires: tuple = ()
    #: State keys the stage writes.
    provides: tuple = ()
    #: ``QSCConfig`` fields this stage's output depends on, cumulative
    #: with its upstream — the checkpoint context fingerprint hashes these
    #: (plus graph content and the requested cluster count), so resuming
    #: against state written under an incompatible run is a hard error
    #: while fields the output provably ignores may differ freely.
    fingerprint_fields: tuple = ()
    #: Whether the output depends on the requested cluster count (only
    #: the laplacian stage's does not — k first matters at threshold).
    fingerprint_clusters: bool = True

    def run(self, ctx: StageContext) -> dict:
        """Execute the stage; returns ``{key: value}`` for ``provides``."""
        raise NotImplementedError

    def pack(self, values: dict) -> dict:
        """Serializable (array/scalar-only) payload of ``values``."""
        raise ClusteringError(f"stage {self.name!r} does not support checkpoints")

    def unpack(self, payload: dict, ctx: StageContext) -> dict:
        """Rebuild the ``provides`` values from a :meth:`pack` payload."""
        raise ClusteringError(f"stage {self.name!r} does not support checkpoints")

    def execute(self, ctx: StageContext) -> dict:
        """Driver entry point: validate the declared contract around run."""
        for key in self.requires:
            ctx.require(key)
        values = self.run(ctx)
        missing = [key for key in self.provides if key not in values]
        extra = [key for key in values if key not in self.provides]
        if missing or extra:
            raise ClusteringError(
                f"stage {self.name!r} broke its contract "
                f"(missing {missing}, undeclared {extra})"
            )
        return values


def scalar(value) -> np.ndarray:
    """Pack helper: a 0-d array for a checkpoint scalar."""
    return np.asarray(value)
