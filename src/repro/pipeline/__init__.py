"""Staged pipeline core: composable, checkpointable clustering stages.

Public surface:

* :class:`~repro.pipeline.pipeline.QSCPipeline` — the staged driver
  (``run(graph, save_stages=..., resume_from=..., ...)``);
* :data:`~repro.pipeline.stages.STAGE_NAMES` / ``build_stages`` — the five
  concrete stages in execution order;
* :class:`~repro.pipeline.stage.Stage` / ``StageContext`` — the contract
  for new stages;
* :mod:`~repro.pipeline.telemetry` — per-stage profiling
  (``stage_totals`` feeds the sweep-artifact profile field);
* :mod:`~repro.pipeline.checkpoint` — the ``<stage>.npz`` on-disk format;
* :mod:`~repro.pipeline.sharding` / :mod:`~repro.pipeline.supervisor` —
  deterministic row-sharding of the readout stage under a supervised
  work queue (``sharded_readout``, ``ShardSupervisor``).
"""

from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    has_stage_checkpoint,
    load_stage_payload,
    save_stage_payload,
)
from repro.pipeline.pipeline import QSCPipeline
from repro.pipeline.sharding import (
    RowShard,
    ShardedReadout,
    shard_layout,
    sharded_readout,
)
from repro.pipeline.stage import Stage, StageContext
from repro.pipeline.stages import STAGE_NAMES, build_stages
from repro.pipeline.supervisor import (
    InlineShardExecutor,
    ProcessShardExecutor,
    ShardSupervisor,
    ShardTask,
    SupervisorCancelled,
)
from repro.pipeline.telemetry import (
    ShardReport,
    StageReport,
    reset_stage_totals,
    stage_totals,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "InlineShardExecutor",
    "ProcessShardExecutor",
    "QSCPipeline",
    "RowShard",
    "STAGE_NAMES",
    "ShardReport",
    "ShardSupervisor",
    "ShardTask",
    "ShardedReadout",
    "Stage",
    "StageContext",
    "StageReport",
    "SupervisorCancelled",
    "build_stages",
    "has_stage_checkpoint",
    "load_stage_payload",
    "reset_stage_totals",
    "save_stage_payload",
    "shard_layout",
    "sharded_readout",
    "stage_totals",
]
