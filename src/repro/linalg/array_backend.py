"""Array-API accelerator backend behind the ``repro.linalg`` contract.

:class:`ArrayBackend` is the third :class:`~repro.linalg.backends.LinalgBackend`
implementation: it holds matrices as *device arrays* of one array-API
namespace — CuPy when a GPU stack is importable, torch when available,
plain numpy otherwise — and implements the full PR 1 contract
(``from_coo`` / ``identity`` / ``diagonal_matrix`` / ``scale_rows`` /
``scale_columns`` / ``lowest_eigenpairs`` / ``to_dense``) against that
namespace.  Host/device transfers happen only at the contract boundary:

* **in** — :meth:`ArrayBackend.from_host` (and every constructor method)
  moves a host array onto the device once, after the host-side COO
  assembly that preserves ``np.add.at`` duplicate-summing semantics;
* **out** — :meth:`ArrayBackend.to_dense` and
  :meth:`ArrayBackend.lowest_eigenpairs` move results back; the
  eigensolve itself runs on host LAPACK (``eigh``), because the small
  k-lowest eigenproblem is transfer-dominated and host LAPACK is exact —
  the device earns its keep on the O(n²·K) matmul hot paths below.

Consumers stay oblivious: everything between the boundaries speaks the
array-API surface (``xp.sin``, ``xp.where``, ``@``), so the same code
runs on numpy, torch or CuPy arrays.

Hot-path dispatch
-----------------
The pipeline's three dense hot paths — the QPE outcome-distribution
broadcast, ``tomography_estimate_batch``'s magnitude/phasor arithmetic
and the circuit backend's ``F† @ cols`` uncompute collapse — route
through the module-level ``dispatched_*`` helpers.  Each helper computes
on the *active* namespace and returns a host array, or returns ``None``
when no dispatch scope is active — in which case the caller runs its
original numpy expressions, byte-identically to the pre-dispatch code
(the default ``dense``/``sparse`` golden digests depend on this).

A scope is activated per pipeline run (never globally) by
:func:`pipeline_dispatch`, which :meth:`QSCPipeline.run` enters exactly
when ``QSCConfig.linalg_backend == "array"``; a process that runs an
``array`` fit followed by a ``dense`` fit therefore produces bit-exact
legacy output for the second fit.  Scopes nest (a stack) and are
process-local; the draw-stage thread pools never touch dispatch state.
"""

from __future__ import annotations

import contextlib
import math

import numpy as np

from repro.exceptions import ConvergenceError
from repro.linalg.backends import LinalgBackend, BackendError, to_dense_array

#: Preference order of the dispatch namespaces: CUDA first, torch second
#: (works on CPU too), numpy as the always-available fallback.
NAMESPACE_ORDER = ("cupy", "torch", "numpy")


class ArrayNamespace:
    """Uniform adapter over one array-API-style namespace.

    ``xp`` is the namespace module itself; the adapter adds only the two
    operations the array-API standard leaves library-specific — the
    host→device and device→host transfers — so everything else goes
    straight through ``xp``.
    """

    name = "abstract"
    xp = None

    def asarray(self, array):
        """Host (or native) array → native device array."""
        raise NotImplementedError

    def asnumpy(self, array) -> np.ndarray:
        """Native device array → host ``numpy.ndarray``."""
        raise NotImplementedError


class NumpyNamespace(ArrayNamespace):
    """The identity adapter: numpy ≥ 2.0 is array-API compliant itself."""

    name = "numpy"
    xp = np

    def asarray(self, array):
        return np.asarray(array)

    def asnumpy(self, array) -> np.ndarray:
        return np.asarray(array)


class TorchNamespace(ArrayNamespace):
    """torch tensors (CPU or CUDA); float64/complex128 precision is kept
    because ``torch.asarray`` preserves the numpy dtype."""

    name = "torch"

    def __init__(self, torch):
        self.xp = torch

    def asarray(self, array):
        return self.xp.asarray(np.asarray(array))

    def asnumpy(self, array) -> np.ndarray:
        if hasattr(array, "detach"):
            return array.detach().cpu().numpy()
        return np.asarray(array)


class CupyNamespace(ArrayNamespace):
    """CuPy arrays on the default CUDA device."""

    name = "cupy"

    def __init__(self, cupy):
        self.xp = cupy

    def asarray(self, array):
        return self.xp.asarray(np.asarray(array))

    def asnumpy(self, array) -> np.ndarray:
        return self.xp.asnumpy(array)


def _load_namespace(name: str) -> ArrayNamespace | None:
    """Adapter for ``name``, or ``None`` when the library is unusable."""
    if name == "numpy":
        return NumpyNamespace()
    if name == "torch":
        try:
            import torch
        except ImportError:
            return None
        return TorchNamespace(torch)
    if name == "cupy":
        try:
            import cupy

            # Importable CuPy without a reachable device raises at first
            # kernel launch; probe once here so resolution never selects
            # a namespace that cannot compute.
            if cupy.cuda.runtime.getDeviceCount() < 1:
                return None
        except Exception:
            return None
        return CupyNamespace(cupy)
    raise BackendError(
        f"unknown array namespace {name!r}; expected one of {NAMESPACE_ORDER}"
    )


def available_namespaces() -> tuple[str, ...]:
    """Names of the importable dispatch namespaces, in preference order."""
    return tuple(
        name for name in NAMESPACE_ORDER if _load_namespace(name) is not None
    )


def default_namespace_name() -> str:
    """The namespace :class:`ArrayBackend` dispatches to by default."""
    return available_namespaces()[0]  # numpy always qualifies


def resolve_namespace(namespace=None) -> ArrayNamespace:
    """Adapter instance for a namespace spec (name, adapter, or ``None``).

    ``None`` picks the best available namespace per
    :data:`NAMESPACE_ORDER`; an explicit name that is not importable is a
    :class:`~repro.linalg.backends.BackendError` (never a silent numpy
    downgrade — the caller asked for that device on purpose).
    """
    if isinstance(namespace, ArrayNamespace):
        return namespace
    if namespace is None:
        return _load_namespace(default_namespace_name())
    loaded = _load_namespace(namespace)
    if loaded is None:
        raise BackendError(
            f"array namespace {namespace!r} is not importable on this host; "
            f"available: {', '.join(available_namespaces())}"
        )
    return loaded


class ArrayBackend(LinalgBackend):
    """Dense device arrays through one array-API namespace.

    Parameters
    ----------
    namespace:
        ``"cupy"``, ``"torch"``, ``"numpy"``, an :class:`ArrayNamespace`
        adapter, or ``None`` for the best available (the default the
        ``"array"`` backend name resolves to).

    Notes
    -----
    The native representation is *dense on device* — accelerators trade
    memory for throughput, so COO assembly happens on host (preserving
    ``np.add.at`` duplicate-summing exactly) and transfers once.
    ``lowest_eigenpairs`` transfers back and solves on host LAPACK: the
    k-lowest Hermitian eigenproblem at contract sizes is dominated by
    the transfer either way, and host ``eigh`` keeps the result
    tolerance-equal to the dense backend (property-tested in
    ``tests/linalg/test_array_backend.py``).
    """

    name = "array"

    def __init__(self, namespace=None):
        self._namespace = resolve_namespace(namespace)

    @property
    def namespace(self) -> str:
        """Name of the namespace this backend dispatches to."""
        return self._namespace.name

    @property
    def adapter(self) -> ArrayNamespace:
        """The underlying :class:`ArrayNamespace` adapter."""
        return self._namespace

    # -- contract boundary: explicit transfer points ----------------------

    def from_host(self, array):
        """Host array → native device array (the single inbound transfer)."""
        return self._namespace.asarray(np.asarray(array))

    def to_dense(self, matrix) -> np.ndarray:
        """Native device array → host ndarray (the outbound transfer)."""
        return self._namespace.asnumpy(matrix)

    # -- construction ------------------------------------------------------

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        host = np.zeros(shape, dtype=dtype)
        np.add.at(host, (np.asarray(rows), np.asarray(cols)), values)
        return self.from_host(host)

    def identity(self, n: int, dtype=complex):
        return self.from_host(np.eye(n, dtype=dtype))

    def diagonal_matrix(self, values):
        return self.from_host(np.diag(np.asarray(values)))

    # -- scaling -----------------------------------------------------------

    def scale_rows(self, matrix, scale):
        return self.from_host(np.asarray(scale))[:, None] * matrix

    def scale_columns(self, matrix, scale):
        return matrix * self.from_host(np.asarray(scale))[None, :]

    # -- solving -----------------------------------------------------------

    def lowest_eigenpairs(self, matrix, k: int):
        host = to_dense_array(self._namespace.asnumpy(matrix), copy=False)
        n = host.shape[0]
        if not 1 <= k <= n:
            raise ConvergenceError(f"k must be in [1, {n}], got {k}")
        if not np.allclose(host, host.conj().T, atol=1e-8):
            raise ConvergenceError("lowest_eigenpairs requires a Hermitian matrix")
        values, vectors = np.linalg.eigh(host)
        return values[:k], vectors[:, :k]


# -- hot-path dispatch -----------------------------------------------------

#: Stack of active dispatch namespaces; empty = dispatch inactive and the
#: hot paths run their original numpy expressions byte-identically.
_DISPATCH_STACK: list[ArrayNamespace] = []


def active_namespace() -> ArrayNamespace | None:
    """The namespace hot paths dispatch to, or ``None`` when inactive."""
    return _DISPATCH_STACK[-1] if _DISPATCH_STACK else None


@contextlib.contextmanager
def dispatch_scope(namespace=None):
    """Activate hot-path dispatch to ``namespace`` for the enclosed block."""
    resolved = resolve_namespace(namespace)
    _DISPATCH_STACK.append(resolved)
    try:
        yield resolved
    finally:
        _DISPATCH_STACK.pop()


@contextlib.contextmanager
def pipeline_dispatch(backend_spec):
    """Dispatch scope of one pipeline run.

    Active exactly when the run's linalg backend is ``"array"`` (the
    spec may be the name or an :class:`ArrayBackend` instance); any
    other backend yields a no-op scope, so dense/sparse runs in the same
    process — including ones *after* an array run — execute the
    unchanged numpy hot paths bit-exactly.
    """
    if backend_spec == "array":
        with dispatch_scope() as namespace:
            yield namespace
    elif isinstance(backend_spec, ArrayBackend):
        with dispatch_scope(backend_spec.adapter) as namespace:
            yield namespace
    else:
        yield None


def dispatched_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """``a @ b`` on the active device, or ``None`` when dispatch is off.

    The circuit backend's ``F† @ cols`` uncompute collapse routes here:
    both operands transfer in, the product transfers out — one round
    trip around the O(dim²·K) contraction that dominates batched
    gate-level readout.
    """
    namespace = active_namespace()
    if namespace is None:
        return None
    device = namespace.asarray(a) @ namespace.asarray(b)
    return namespace.asnumpy(device)


def dispatched_outcome_distributions(
    phases: np.ndarray, precision: int
) -> np.ndarray | None:
    """Device-side QPE Dirichlet-kernel broadcast, or ``None`` if inactive.

    Same closed form as the numpy block in
    :func:`repro.quantum.phase_estimation.qpe_outcome_distributions`
    (which remains the byte-exact reference when dispatch is off);
    device FMA ordering may differ in the last ulps, which is why the
    array backend is property-tested tolerance-based.
    """
    namespace = active_namespace()
    if namespace is None:
        return None
    xp = namespace.xp
    size = 2**precision
    device_phases = namespace.asarray(np.asarray(phases, dtype=float))
    outcomes = namespace.asarray(np.arange(size, dtype=float) / size)
    delta = device_phases[:, None] - outcomes[None, :]
    sin_delta = xp.sin(math.pi * delta)
    numerator = xp.sin(math.pi * size * delta) ** 2
    denominator = (size * sin_delta) ** 2
    near_zero = xp.abs(sin_delta) <= 1e-12
    ones = xp.ones_like(denominator)
    probs = xp.where(near_zero, ones, numerator / xp.where(near_zero, ones, denominator))
    totals = xp.sum(probs, axis=1)
    off = xp.abs(totals - 1.0) > 1e-8
    probs = xp.where(off[:, None], probs / totals[:, None], probs)
    return namespace.asnumpy(probs)


def dispatched_squared_magnitudes(states: np.ndarray) -> np.ndarray | None:
    """``|states|²`` elementwise on the active device (``None`` if off).

    The one squared-magnitude pass of ``tomography_estimate_batch``
    serves normalization, the multinomial pvals and the phase-noise
    scale — at (rows × dim) batch sizes it is the largest deterministic
    array op on the tomography path.
    """
    namespace = active_namespace()
    if namespace is None:
        return None
    xp = namespace.xp
    device = namespace.asarray(states)
    return namespace.asnumpy(xp.real(device) ** 2 + xp.imag(device) ** 2)


def dispatched_unit_phasors(phases: np.ndarray) -> np.ndarray | None:
    """``cos(phases) + i·sin(phases)`` on the active device (``None`` if off).

    Tomography's estimate assembly multiplies these unit phasors by the
    estimated magnitudes; the trigonometry is the dispatchable part —
    the fancy-indexed scatter stays on host.
    """
    namespace = active_namespace()
    if namespace is None:
        return None
    xp = namespace.xp
    device = namespace.asarray(np.asarray(phases, dtype=float))
    cos, sin = namespace.asnumpy(xp.cos(device)), namespace.asnumpy(xp.sin(device))
    return cos + 1j * sin
