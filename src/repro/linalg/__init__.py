"""Pluggable dense/sparse linear-algebra backends (see ``backends``)."""

from repro.linalg.backends import (
    BACKEND_NAMES,
    DENSE_FALLBACK_DIM,
    HAVE_SCIPY,
    SPARSE_AUTO_THRESHOLD,
    BackendError,
    DenseBackend,
    LinalgBackend,
    SparseBackend,
    as_backend_matrix,
    get_backend,
    is_sparse_matrix,
    resolve_backend,
    to_dense_array,
)

__all__ = [
    "BACKEND_NAMES",
    "DENSE_FALLBACK_DIM",
    "HAVE_SCIPY",
    "SPARSE_AUTO_THRESHOLD",
    "BackendError",
    "DenseBackend",
    "LinalgBackend",
    "SparseBackend",
    "as_backend_matrix",
    "get_backend",
    "is_sparse_matrix",
    "resolve_backend",
    "to_dense_array",
]
