"""Pluggable linear-algebra backends: dense ``numpy`` vs ``scipy.sparse``.

The backend contract
--------------------
Every matrix-producing function in the graphs layer and every
matrix-consuming solver in the spectral layer goes through a
:class:`LinalgBackend`.  A backend owns exactly four responsibilities:

1. **Construction** — :meth:`~LinalgBackend.from_coo` assembles a matrix
   from COO triplets (duplicate entries sum, matching ``np.add.at``
   semantics), and :meth:`~LinalgBackend.identity` /
   :meth:`~LinalgBackend.diagonal_matrix` build the structured factors the
   Laplacian normalizations need.
2. **Scaling** — :meth:`~LinalgBackend.scale_rows` and
   :meth:`~LinalgBackend.scale_columns` apply diagonal conjugations
   (D^{-1/2} H D^{-1/2} and friends) without densifying.
3. **Solving** — :meth:`~LinalgBackend.lowest_eigenpairs` returns the k
   lowest eigenpairs of a Hermitian matrix.  The dense backend calls
   LAPACK ``eigh``; the sparse backend runs ARPACK Lanczos (``eigsh``)
   with a deterministic start vector and falls back to a dense solve for
   small n or near-full k, where Lanczos is either invalid (ARPACK
   requires k < n) or slower than LAPACK.
4. **Interop** — :meth:`~LinalgBackend.to_dense` and the module-level
   :func:`as_backend_matrix` adapter move matrices between
   representations, so any consumer can accept "either representation"
   through one call.

Backends are selected by name: ``"dense"``, ``"sparse"``, ``"array"``
(the array-API accelerator backend — see
:mod:`repro.linalg.array_backend`) or ``"auto"``
(:func:`resolve_backend`).  ``auto`` picks by problem size in three
bands: dense below :data:`SPARSE_AUTO_THRESHOLD` nodes, the sparse
backend's preconditioned LOBPCG route in the *midrange* band up to
:data:`LOBPCG_AUTO_CEILING` (where ARPACK's Lanczos struggles on
ill-conditioned graphs), and ARPACK ``eigsh`` above it; a SciPy-less
host degrades every band to dense.  The ``--backend`` CLI flag and
``QSCConfig.linalg_backend`` expose the same names.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ReproError

try:  # SciPy is an optional dependency: the dense backend never needs it.
    import scipy.sparse as _sparse
    import scipy.sparse.linalg as _sparse_linalg

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only on scipy-less hosts
    _sparse = None
    _sparse_linalg = None
    HAVE_SCIPY = False

BACKEND_NAMES = ("auto", "dense", "sparse", "array")

# "auto" switches off the dense backend at this node count: below it a
# dense eigh on the full matrix is faster than assembling CSR + iterating.
SPARSE_AUTO_THRESHOLD = 256

# Upper edge of the "auto" midrange band: from SPARSE_AUTO_THRESHOLD up to
# (excluding) this node count the sparse backend solves with preconditioned
# LOBPCG — the standard fix for ill-conditioned graphs where ARPACK's
# shiftless Lanczos needs many restarts — and from here up with eigsh,
# whose convergence per iteration wins once the spectrum is large and the
# matrix is truly sparse.
LOBPCG_AUTO_CEILING = 4096

# The sparse solver falls back to a dense eigh below this dimension (ARPACK
# start-up costs dominate) and whenever k is too close to n for Lanczos.
DENSE_FALLBACK_DIM = 64

# SciPy's lobpcg *warns* instead of raising on non-convergence, so the
# sparse backend verifies residual norms itself and falls back to eigsh
# when they exceed this relative bound.
LOBPCG_RESIDUAL_RTOL = 1e-6
HAVE_LOBPCG = HAVE_SCIPY and hasattr(_sparse_linalg, "lobpcg")


class BackendError(ReproError):
    """A linear-algebra backend was misconfigured or is unavailable."""


def is_sparse_matrix(matrix) -> bool:
    """True when ``matrix`` is any ``scipy.sparse`` container."""
    return HAVE_SCIPY and _sparse.issparse(matrix)


def to_dense_array(matrix, dtype=None, copy: bool | None = None) -> np.ndarray:
    """Densify ``matrix``.

    Parameters
    ----------
    matrix:
        Dense ndarray, ``scipy.sparse`` matrix, or anything
        ``np.asarray`` accepts.
    dtype:
        Target dtype (converted only when it differs).
    copy:
        * ``False`` — the documented read-only fast path: the result may
          *alias* ``matrix`` (it does whenever the input is already a
          dense array of the right dtype), so the caller must not write
          to it.  This is the right mode for consumers that only read —
          eigensolves, spectral decompositions, fingerprinting.
        * ``True`` — always return a fresh array the caller owns and may
          mutate freely.
        * ``None`` (default) — legacy behaviour, identical to ``False``
          except undocumented; kept so existing call sites keep their
          exact no-copy semantics.
    """
    if is_sparse_matrix(matrix):
        dense = matrix.toarray()  # toarray always allocates: a fresh copy
        fresh = True
    else:
        dense = np.asarray(matrix)
        fresh = False
    if dtype is not None and dense.dtype != np.dtype(dtype):
        dense = dense.astype(dtype)
        fresh = True
    if copy and not fresh:
        dense = dense.copy()
    return dense


def _require_hermitian_dense(matrix: np.ndarray) -> None:
    """Raise ConvergenceError unless ``matrix`` is (numerically) Hermitian.

    ``eigh`` silently reads one triangle of a non-Hermitian input and
    returns plausible-looking garbage; both backends guard against that.
    """
    if not np.allclose(matrix, matrix.conj().T, atol=1e-8):
        raise ConvergenceError("lowest_eigenpairs requires a Hermitian matrix")


class LinalgBackend:
    """Shared behaviour of the dense and sparse backends (the contract)."""

    name = "abstract"

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        """Assemble a matrix from COO triplets; duplicates sum."""
        raise NotImplementedError

    def identity(self, n: int, dtype=complex):
        """The n × n identity in the backend's native representation."""
        raise NotImplementedError

    def diagonal_matrix(self, values):
        """diag(values) in the backend's native representation."""
        raise NotImplementedError

    def scale_rows(self, matrix, scale):
        """diag(scale) @ matrix without materializing the diagonal."""
        raise NotImplementedError

    def scale_columns(self, matrix, scale):
        """matrix @ diag(scale) without materializing the diagonal."""
        raise NotImplementedError

    def to_dense(self, matrix) -> np.ndarray:
        """Densify a backend matrix."""
        return to_dense_array(matrix)

    def matvec(self, matrix, vector):
        """matrix @ vector (both representations support ``@``)."""
        return matrix @ vector

    def lowest_eigenpairs(self, matrix, k: int):
        """The k lowest eigenpairs of a Hermitian backend matrix."""
        raise NotImplementedError


class DenseBackend(LinalgBackend):
    """Plain ``numpy`` arrays + LAPACK — exact, O(n²) memory, O(n³) solve."""

    name = "dense"

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        matrix = np.zeros(shape, dtype=dtype)
        np.add.at(matrix, (np.asarray(rows), np.asarray(cols)), values)
        return matrix

    def identity(self, n: int, dtype=complex):
        return np.eye(n, dtype=dtype)

    def diagonal_matrix(self, values):
        return np.diag(np.asarray(values))

    def scale_rows(self, matrix, scale):
        return np.asarray(scale)[:, None] * matrix

    def scale_columns(self, matrix, scale):
        return matrix * np.asarray(scale)[None, :]

    def lowest_eigenpairs(self, matrix, k: int):
        # eigh only reads its input, so the no-copy fast path is safe
        matrix = to_dense_array(matrix, copy=False)
        n = matrix.shape[0]
        if not 1 <= k <= n:
            raise ConvergenceError(f"k must be in [1, {n}], got {k}")
        _require_hermitian_dense(matrix)
        values, vectors = np.linalg.eigh(matrix)
        return values[:k], vectors[:, :k]


class SparseBackend(LinalgBackend):
    """CSR matrices + iterative eigensolvers — O(nnz) memory.

    Parameters
    ----------
    dense_fallback_dim:
        Below this dimension :meth:`lowest_eigenpairs` densifies and calls
        LAPACK instead of an iterative solver (also used whenever
        ``k >= n - 1``, which ARPACK cannot handle).
    eigsh_tolerance:
        Relative accuracy passed to ``eigsh`` (0 = machine precision).
    solver:
        ``"eigsh"`` (ARPACK Lanczos, the classic route) or ``"lobpcg"``
        (block LOBPCG with a deterministic start block and a
        degree/Jacobi preconditioner — the midrange route ``auto``
        selects between :data:`SPARSE_AUTO_THRESHOLD` and
        :data:`LOBPCG_AUTO_CEILING` nodes).  LOBPCG results are verified
        by residual norm; non-convergence falls back to ``eigsh``
        automatically, so the route can only change speed, not
        correctness.
    lobpcg_tolerance / lobpcg_maxiter:
        LOBPCG stopping controls (residual tolerance and iteration cap).

    Attributes
    ----------
    last_route:
        The solver route the most recent :meth:`lowest_eigenpairs` call
        actually took: ``"dense"``, ``"eigsh"``, ``"lobpcg"`` or
        ``"lobpcg->eigsh"`` (requested LOBPCG, fell back).  Telemetry
        reads this; ``None`` before the first solve.
    """

    name = "sparse"

    def __init__(
        self,
        dense_fallback_dim: int = DENSE_FALLBACK_DIM,
        eigsh_tolerance: float = 0.0,
        solver: str = "eigsh",
        lobpcg_tolerance: float = 1e-8,
        lobpcg_maxiter: int = 500,
    ):
        if not HAVE_SCIPY:
            raise BackendError(
                "SparseBackend requires scipy; install scipy or use the "
                "dense backend"
            )
        if solver not in ("eigsh", "lobpcg"):
            raise BackendError(
                f"unknown sparse solver {solver!r}; expected 'eigsh' or 'lobpcg'"
            )
        if solver == "lobpcg" and not HAVE_LOBPCG:
            raise BackendError(
                "this scipy build has no lobpcg; use solver='eigsh'"
            )
        self.dense_fallback_dim = int(dense_fallback_dim)
        self.eigsh_tolerance = float(eigsh_tolerance)
        self.solver = solver
        self.lobpcg_tolerance = float(lobpcg_tolerance)
        self.lobpcg_maxiter = int(lobpcg_maxiter)
        self.last_route: str | None = None

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        matrix = _sparse.coo_matrix(
            (np.asarray(values, dtype=dtype), (np.asarray(rows), np.asarray(cols))),
            shape=shape,
        )
        csr = matrix.tocsr()  # sums duplicate entries
        csr.sum_duplicates()
        return csr

    def identity(self, n: int, dtype=complex):
        return _sparse.identity(n, dtype=dtype, format="csr")

    def diagonal_matrix(self, values):
        return _sparse.diags(np.asarray(values)).tocsr()

    def scale_rows(self, matrix, scale):
        return (_sparse.diags(np.asarray(scale)) @ matrix).tocsr()

    def scale_columns(self, matrix, scale):
        return (matrix @ _sparse.diags(np.asarray(scale))).tocsr()

    def lowest_eigenpairs(self, matrix, k: int):
        n = matrix.shape[0]
        if not 1 <= k <= n:
            raise ConvergenceError(f"k must be in [1, {n}], got {k}")
        if n <= self.dense_fallback_dim or k >= n - 1:
            # ARPACK needs k < n and is slower than LAPACK at small n.
            dense = to_dense_array(matrix, complex, copy=False)
            _require_hermitian_dense(dense)
            values, vectors = np.linalg.eigh(dense)
            self.last_route = "dense"
            return values[:k], vectors[:, :k]
        csr = _sparse.csr_matrix(matrix)
        # O(nnz) hermiticity guard — eigh/eigsh silently use one triangle
        # of a non-Hermitian input and return plausible-looking garbage.
        asymmetry = abs(csr - csr.getH())
        if asymmetry.nnz and asymmetry.max() > 1e-8:
            raise ConvergenceError("lowest_eigenpairs requires a Hermitian matrix")
        route = "eigsh"
        if self.solver == "lobpcg":
            solved = self._lobpcg_eigenpairs(csr, k, n)
            if solved is not None:
                self.last_route = "lobpcg"
                return solved
            route = "lobpcg->eigsh"
        # Deterministic start vector: eigsh defaults to a random one, which
        # would make cluster labels run-to-run nondeterministic.
        v0 = np.random.default_rng(0).normal(size=n)
        try:
            values, vectors = _sparse_linalg.eigsh(
                csr, k=k, which="SA", v0=v0, tol=self.eigsh_tolerance
            )
        except _sparse_linalg.ArpackNoConvergence as error:
            raise ConvergenceError(
                f"sparse eigensolver failed to converge for n={n}, k={k}: "
                f"{error}"
            ) from error
        order = np.argsort(values)
        self.last_route = route
        return values[order], vectors[:, order]

    def _lobpcg_eigenpairs(self, csr, k: int, n: int):
        """Preconditioned LOBPCG solve, or ``None`` when it cannot be
        trusted (unavailable, ill-posed block size, or residuals above
        :data:`LOBPCG_RESIDUAL_RTOL`) — the caller then runs eigsh.

        Determinism matches the eigsh route's contract: the start block
        comes from ``default_rng(0)``, so repeated solves of the same
        matrix return bit-identical eigenpairs.  The preconditioner is
        the Jacobi/degree inverse-diagonal — for Laplacian-like matrices
        the diagonal carries the degree spread that makes the problem
        ill-conditioned, which is exactly the midrange failure mode this
        route exists for.
        """
        if not HAVE_LOBPCG or 5 * k >= n:
            # LOBPCG's Rayleigh–Ritz block needs headroom (rule of thumb
            # 5k < n) or its internal orthogonalisation degrades.
            return None
        rng = np.random.default_rng(0)
        block = rng.normal(size=(n, k))
        if np.iscomplexobj(csr):
            block = block + 1j * rng.normal(size=(n, k))
        diagonal = csr.diagonal().real
        preconditioner = None
        if np.all(np.abs(diagonal) > 1e-12):
            # Jacobi/degree preconditioner as a sparse diagonal matrix —
            # M ≈ A⁻¹ on the diagonal, which captures the degree spread
            # of unnormalized Laplacians (for the unit-diagonal symmetric
            # normalization it degenerates to the identity, harmlessly).
            preconditioner = _sparse.diags(1.0 / diagonal).tocsr()
        import warnings

        with warnings.catch_warnings():
            # lobpcg signals non-convergence with a UserWarning; the
            # residual check below is the authoritative verdict.
            warnings.simplefilter("ignore")
            try:
                values, vectors = _sparse_linalg.lobpcg(
                    csr,
                    block,
                    M=preconditioner,
                    largest=False,
                    tol=self.lobpcg_tolerance,
                    maxiter=self.lobpcg_maxiter,
                )
            except Exception:
                return None
        if not (np.all(np.isfinite(values)) and np.all(np.isfinite(vectors))):
            return None
        # Residual verification: ||A v - λ v|| per pair, relative to the
        # matrix scale — the only convergence signal lobpcg cannot fake.
        residual = csr @ vectors - vectors * values[None, :]
        scale = max(float(np.abs(values).max()), 1.0)
        if np.linalg.norm(residual, axis=0).max() > LOBPCG_RESIDUAL_RTOL * scale * n:
            return None
        order = np.argsort(values)
        return values[order], vectors[:, order]


_DENSE = DenseBackend()


def backend_availability() -> dict[str, str | None]:
    """Availability of every backend name: ``None`` = usable, else why not.

    The reasons feed :func:`get_backend`'s error message, so a typo'd or
    unavailable ``--backend`` value tells the user exactly what the valid
    choices are *on this host* and why the missing ones are missing.
    """
    from repro.linalg import array_backend

    availability: dict[str, str | None] = {"auto": None, "dense": None}
    availability["sparse"] = (
        None if HAVE_SCIPY else "requires scipy, which is not importable"
    )
    namespaces = array_backend.available_namespaces()
    if namespaces:
        availability["array"] = None
    else:  # pragma: no cover - numpy always qualifies in practice
        availability["array"] = "no array-API namespace importable"
    return availability


def _describe_backends() -> str:
    """One-line per-name availability summary for error messages."""
    from repro.linalg import array_backend

    parts = []
    for name, reason in backend_availability().items():
        if reason is not None:
            parts.append(f"{name} (unavailable: {reason})")
        elif name == "array":
            parts.append(
                f"array (dispatches to {array_backend.default_namespace_name()})"
            )
        else:
            parts.append(f"{name} (available)")
    return ", ".join(parts)


def get_backend(name: str) -> LinalgBackend:
    """Backend instance for an explicit name (``"dense"``, ``"sparse"``,
    or ``"array"``)."""
    if isinstance(name, LinalgBackend):
        return name
    if name == "dense":
        return _DENSE
    if name == "sparse":
        return SparseBackend()
    if name == "array":
        from repro.linalg.array_backend import ArrayBackend

        return ArrayBackend()
    raise BackendError(
        f"unknown linalg backend {name!r}; valid backends: {_describe_backends()}"
    )


def resolve_backend(spec, num_nodes: int | None = None) -> LinalgBackend:
    """Resolve a backend spec (name or instance) to a backend.

    ``"auto"`` picks by problem size in three bands (when SciPy is
    available; a SciPy-less host stays dense everywhere):

    * ``num_nodes < SPARSE_AUTO_THRESHOLD`` — dense; LAPACK wins small.
    * ``SPARSE_AUTO_THRESHOLD <= num_nodes < LOBPCG_AUTO_CEILING`` — the
      sparse backend's preconditioned LOBPCG route (midrange graphs are
      where ARPACK's shiftless Lanczos struggles on ill-conditioned
      spectra; LOBPCG still falls back to eigsh if it fails to
      converge).  A scipy build without ``lobpcg`` uses eigsh directly.
    * ``num_nodes >= LOBPCG_AUTO_CEILING`` — sparse with ARPACK eigsh.
    """
    if isinstance(spec, LinalgBackend):
        return spec
    if spec == "auto":
        if (
            HAVE_SCIPY
            and num_nodes is not None
            and num_nodes >= SPARSE_AUTO_THRESHOLD
        ):
            if num_nodes < LOBPCG_AUTO_CEILING and HAVE_LOBPCG:
                return SparseBackend(solver="lobpcg")
            return SparseBackend()
        return _DENSE
    return get_backend(spec)


def backend_telemetry(spec, num_nodes: int | None = None) -> dict:
    """Flat telemetry row describing what ``spec`` resolves to.

    Returns ``{"linalg_backend": ..., "eigensolver": ...}`` — the
    resolved backend name (with the dispatch namespace for the array
    backend) and the eigensolver route its ``lowest_eigenpairs`` takes.
    Stage telemetry and sweep artifacts carry these strings so served
    jobs expose which backend actually ran.
    """
    backend = resolve_backend(spec, num_nodes)
    if backend.name == "sparse":
        solver = backend.solver
        if num_nodes is not None and num_nodes <= backend.dense_fallback_dim:
            solver = "eigh"
        return {"linalg_backend": "sparse", "eigensolver": solver}
    if backend.name == "array":
        return {
            "linalg_backend": f"array[{backend.namespace}]",
            "eigensolver": "eigh",
        }
    return {"linalg_backend": backend.name, "eigensolver": "eigh"}


def as_backend_matrix(matrix, backend) -> object:
    """Adapt ``matrix`` (dense array or scipy sparse) to ``backend``'s type.

    This is the single conversion point consumers use to accept either
    representation: the QPE engines densify through it, the sparse
    eigensolvers CSR-ify through it, the array backend transfers to its
    device through it, and it is a no-op when the matrix is already
    native.  The dense result of the dense path may alias ``matrix``
    (the ``copy=False`` read-only fast path) — consumers of this adapter
    treat matrices as immutable.
    """
    backend = resolve_backend(
        backend, matrix.shape[0] if hasattr(matrix, "shape") else None
    )
    if backend.name == "sparse":
        if is_sparse_matrix(matrix):
            return matrix.tocsr()
        return _sparse.csr_matrix(np.asarray(matrix))
    if backend.name == "array":
        return backend.from_host(to_dense_array(matrix, copy=False))
    return to_dense_array(matrix, copy=False)
