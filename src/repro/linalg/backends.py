"""Pluggable linear-algebra backends: dense ``numpy`` vs ``scipy.sparse``.

The backend contract
--------------------
Every matrix-producing function in the graphs layer and every
matrix-consuming solver in the spectral layer goes through a
:class:`LinalgBackend`.  A backend owns exactly four responsibilities:

1. **Construction** — :meth:`~LinalgBackend.from_coo` assembles a matrix
   from COO triplets (duplicate entries sum, matching ``np.add.at``
   semantics), and :meth:`~LinalgBackend.identity` /
   :meth:`~LinalgBackend.diagonal_matrix` build the structured factors the
   Laplacian normalizations need.
2. **Scaling** — :meth:`~LinalgBackend.scale_rows` and
   :meth:`~LinalgBackend.scale_columns` apply diagonal conjugations
   (D^{-1/2} H D^{-1/2} and friends) without densifying.
3. **Solving** — :meth:`~LinalgBackend.lowest_eigenpairs` returns the k
   lowest eigenpairs of a Hermitian matrix.  The dense backend calls
   LAPACK ``eigh``; the sparse backend runs ARPACK Lanczos (``eigsh``)
   with a deterministic start vector and falls back to a dense solve for
   small n or near-full k, where Lanczos is either invalid (ARPACK
   requires k < n) or slower than LAPACK.
4. **Interop** — :meth:`~LinalgBackend.to_dense` and the module-level
   :func:`as_backend_matrix` adapter move matrices between
   representations, so any consumer can accept "either representation"
   through one call.

Backends are selected by name: ``"dense"``, ``"sparse"``, or ``"auto"``
(:func:`resolve_backend`), where ``auto`` picks sparse for graphs with at
least :data:`SPARSE_AUTO_THRESHOLD` nodes when SciPy is importable and
dense otherwise.  The ``--backend`` CLI flag and
``QSCConfig.linalg_backend`` expose the same three names.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ReproError

try:  # SciPy is an optional dependency: the dense backend never needs it.
    import scipy.sparse as _sparse
    import scipy.sparse.linalg as _sparse_linalg

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only on scipy-less hosts
    _sparse = None
    _sparse_linalg = None
    HAVE_SCIPY = False

BACKEND_NAMES = ("auto", "dense", "sparse")

# "auto" switches to the sparse backend at this node count: below it a
# dense eigh on the full matrix is faster than assembling CSR + ARPACK.
SPARSE_AUTO_THRESHOLD = 256

# The sparse solver falls back to a dense eigh below this dimension (ARPACK
# start-up costs dominate) and whenever k is too close to n for Lanczos.
DENSE_FALLBACK_DIM = 64


class BackendError(ReproError):
    """A linear-algebra backend was misconfigured or is unavailable."""


def is_sparse_matrix(matrix) -> bool:
    """True when ``matrix`` is any ``scipy.sparse`` container."""
    return HAVE_SCIPY and _sparse.issparse(matrix)


def to_dense_array(matrix, dtype=None) -> np.ndarray:
    """Densify ``matrix`` (no copy for arrays already dense)."""
    if is_sparse_matrix(matrix):
        dense = matrix.toarray()
    else:
        dense = np.asarray(matrix)
    if dtype is not None:
        dense = dense.astype(dtype, copy=False)
    return dense


def _require_hermitian_dense(matrix: np.ndarray) -> None:
    """Raise ConvergenceError unless ``matrix`` is (numerically) Hermitian.

    ``eigh`` silently reads one triangle of a non-Hermitian input and
    returns plausible-looking garbage; both backends guard against that.
    """
    if not np.allclose(matrix, matrix.conj().T, atol=1e-8):
        raise ConvergenceError("lowest_eigenpairs requires a Hermitian matrix")


class LinalgBackend:
    """Shared behaviour of the dense and sparse backends (the contract)."""

    name = "abstract"

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        """Assemble a matrix from COO triplets; duplicates sum."""
        raise NotImplementedError

    def identity(self, n: int, dtype=complex):
        """The n × n identity in the backend's native representation."""
        raise NotImplementedError

    def diagonal_matrix(self, values):
        """diag(values) in the backend's native representation."""
        raise NotImplementedError

    def scale_rows(self, matrix, scale):
        """diag(scale) @ matrix without materializing the diagonal."""
        raise NotImplementedError

    def scale_columns(self, matrix, scale):
        """matrix @ diag(scale) without materializing the diagonal."""
        raise NotImplementedError

    def to_dense(self, matrix) -> np.ndarray:
        """Densify a backend matrix."""
        return to_dense_array(matrix)

    def matvec(self, matrix, vector):
        """matrix @ vector (both representations support ``@``)."""
        return matrix @ vector

    def lowest_eigenpairs(self, matrix, k: int):
        """The k lowest eigenpairs of a Hermitian backend matrix."""
        raise NotImplementedError


class DenseBackend(LinalgBackend):
    """Plain ``numpy`` arrays + LAPACK — exact, O(n²) memory, O(n³) solve."""

    name = "dense"

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        matrix = np.zeros(shape, dtype=dtype)
        np.add.at(matrix, (np.asarray(rows), np.asarray(cols)), values)
        return matrix

    def identity(self, n: int, dtype=complex):
        return np.eye(n, dtype=dtype)

    def diagonal_matrix(self, values):
        return np.diag(np.asarray(values))

    def scale_rows(self, matrix, scale):
        return np.asarray(scale)[:, None] * matrix

    def scale_columns(self, matrix, scale):
        return matrix * np.asarray(scale)[None, :]

    def lowest_eigenpairs(self, matrix, k: int):
        matrix = to_dense_array(matrix)
        n = matrix.shape[0]
        if not 1 <= k <= n:
            raise ConvergenceError(f"k must be in [1, {n}], got {k}")
        _require_hermitian_dense(matrix)
        values, vectors = np.linalg.eigh(matrix)
        return values[:k], vectors[:, :k]


class SparseBackend(LinalgBackend):
    """CSR matrices + ARPACK Lanczos — O(nnz) memory, O(k·nnz) solve.

    Parameters
    ----------
    dense_fallback_dim:
        Below this dimension :meth:`lowest_eigenpairs` densifies and calls
        LAPACK instead of ARPACK (also used whenever ``k >= n - 1``, which
        ARPACK cannot handle).
    eigsh_tolerance:
        Relative accuracy passed to ``eigsh`` (0 = machine precision).
    """

    name = "sparse"

    def __init__(
        self,
        dense_fallback_dim: int = DENSE_FALLBACK_DIM,
        eigsh_tolerance: float = 0.0,
    ):
        if not HAVE_SCIPY:
            raise BackendError(
                "SparseBackend requires scipy; install scipy or use the "
                "dense backend"
            )
        self.dense_fallback_dim = int(dense_fallback_dim)
        self.eigsh_tolerance = float(eigsh_tolerance)

    def from_coo(self, rows, cols, values, shape, dtype=complex):
        matrix = _sparse.coo_matrix(
            (np.asarray(values, dtype=dtype), (np.asarray(rows), np.asarray(cols))),
            shape=shape,
        )
        csr = matrix.tocsr()  # sums duplicate entries
        csr.sum_duplicates()
        return csr

    def identity(self, n: int, dtype=complex):
        return _sparse.identity(n, dtype=dtype, format="csr")

    def diagonal_matrix(self, values):
        return _sparse.diags(np.asarray(values)).tocsr()

    def scale_rows(self, matrix, scale):
        return (_sparse.diags(np.asarray(scale)) @ matrix).tocsr()

    def scale_columns(self, matrix, scale):
        return (matrix @ _sparse.diags(np.asarray(scale))).tocsr()

    def lowest_eigenpairs(self, matrix, k: int):
        n = matrix.shape[0]
        if not 1 <= k <= n:
            raise ConvergenceError(f"k must be in [1, {n}], got {k}")
        if n <= self.dense_fallback_dim or k >= n - 1:
            # ARPACK needs k < n and is slower than LAPACK at small n.
            dense = to_dense_array(matrix, complex)
            _require_hermitian_dense(dense)
            values, vectors = np.linalg.eigh(dense)
            return values[:k], vectors[:, :k]
        csr = _sparse.csr_matrix(matrix)
        # O(nnz) hermiticity guard — eigh/eigsh silently use one triangle
        # of a non-Hermitian input and return plausible-looking garbage.
        asymmetry = abs(csr - csr.getH())
        if asymmetry.nnz and asymmetry.max() > 1e-8:
            raise ConvergenceError("lowest_eigenpairs requires a Hermitian matrix")
        # Deterministic start vector: eigsh defaults to a random one, which
        # would make cluster labels run-to-run nondeterministic.
        v0 = np.random.default_rng(0).normal(size=n)
        try:
            values, vectors = _sparse_linalg.eigsh(
                csr, k=k, which="SA", v0=v0, tol=self.eigsh_tolerance
            )
        except _sparse_linalg.ArpackNoConvergence as error:
            raise ConvergenceError(
                f"sparse eigensolver failed to converge for n={n}, k={k}: "
                f"{error}"
            ) from error
        order = np.argsort(values)
        return values[order], vectors[:, order]


_DENSE = DenseBackend()


def get_backend(name: str) -> LinalgBackend:
    """Backend instance for an explicit name (``"dense"`` or ``"sparse"``)."""
    if isinstance(name, LinalgBackend):
        return name
    if name == "dense":
        return _DENSE
    if name == "sparse":
        return SparseBackend()
    raise BackendError(
        f"unknown linalg backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def resolve_backend(spec, num_nodes: int | None = None) -> LinalgBackend:
    """Resolve a backend spec (``"auto"``/``"dense"``/``"sparse"``/instance).

    ``"auto"`` selects the sparse backend when the problem has at least
    :data:`SPARSE_AUTO_THRESHOLD` nodes and SciPy is available; everything
    smaller (or a SciPy-less host) stays dense, where LAPACK wins.
    """
    if isinstance(spec, LinalgBackend):
        return spec
    if spec == "auto":
        if (
            HAVE_SCIPY
            and num_nodes is not None
            and num_nodes >= SPARSE_AUTO_THRESHOLD
        ):
            return SparseBackend()
        return _DENSE
    return get_backend(spec)


def as_backend_matrix(matrix, backend) -> object:
    """Adapt ``matrix`` (dense array or scipy sparse) to ``backend``'s type.

    This is the single conversion point consumers use to accept either
    representation: the QPE engines densify through it, the sparse
    eigensolvers CSR-ify through it, and it is a no-op when the matrix is
    already native.
    """
    backend = resolve_backend(
        backend, matrix.shape[0] if hasattr(matrix, "shape") else None
    )
    if backend.name == "sparse":
        if is_sparse_matrix(matrix):
            return matrix.tocsr()
        return _sparse.csr_matrix(np.asarray(matrix))
    return to_dense_array(matrix)
