"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with one ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Invalid mixed-graph structure or graph-construction parameters."""


class CircuitError(ReproError):
    """Invalid quantum-circuit construction or simulation request."""


class QubitError(CircuitError):
    """A qubit index is out of range or duplicated within one operation."""


class EncodingError(ReproError):
    """Data cannot be encoded into the requested quantum representation."""


class ClusteringError(ReproError):
    """Clustering cannot proceed (e.g. fewer points than clusters)."""


class ConvergenceError(ReproError):
    """An iterative solver exhausted its iteration budget without converging."""


class StoreError(ClusteringError):
    """The content-addressed compute store was misconfigured or an entry
    is unusable.  Subclasses :class:`ClusteringError` because store-served
    data (spectral entries, stage/shard checkpoints) flows straight into
    the clustering pipeline, whose callers already catch that domain."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class ParseError(ReproError):
    """A netlist or edge-list file could not be parsed."""


class ServiceError(ReproError):
    """A job-service request was malformed or cannot be honoured.

    Covers the clustering-as-a-service layer (:mod:`repro.service`):
    unknown jobs, artifacts requested before completion, protocol
    violations on the wire, and client-observed server errors.

    Every service failure carries the same three class attributes on
    both sides of the wire — subclasses in :mod:`repro.service.errors`
    refine them and the client rehydrates the matching subclass from the
    ``code`` field of an error reply:

    ``code``
        Stable machine-readable identifier, carried on the wire.
    ``http_status``
        The HTTP status the server answers with for this failure.
    ``retryable``
        Whether retrying the identical request can ever succeed
        (e.g. an over-quota rejection, or an artifact not ready yet).
    """

    code = "service_error"
    http_status = 400
    retryable = False
