"""Nyström-approximated spectral clustering (scalable classical baseline).

The classical answer to "spectral clustering is O(n³)" is sampling: pick
l ≪ n landmark nodes, eigendecompose the l × l landmark block, and extend
the eigenvectors to all nodes through the cross-similarity block.  It is
the standard scalable comparator for runtime discussions — fast, but with
well-documented accuracy cliffs when landmarks miss a cluster, which our
tests exhibit deliberately.

The implementation works on the symmetrized affinity (Nyström requires a
PSD kernel), so it is also direction-blind — both facts are reported in
the experiment discussion.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.linalg import is_sparse_matrix, resolve_backend
from repro.spectral.clustering import ClusteringResult
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans
from repro.utils.rng import ensure_rng


def nystrom_embedding(
    graph: MixedGraph,
    num_clusters: int,
    num_landmarks: int,
    seed=None,
    regularization: float = 1e-8,
    backend="dense",
) -> np.ndarray:
    """Approximate spectral embedding from a landmark sample.

    Parameters
    ----------
    graph:
        Input mixed graph (symmetrized internally).
    num_clusters:
        Embedding dimension k.
    num_landmarks:
        Sample size l; must satisfy k <= l <= n.
    seed:
        Landmark-sampling seed.
    regularization:
        Ridge term stabilizing the landmark-block inversion.
    backend:
        ``repro.linalg`` backend spec.  Nyström only ever eigensolves the
        dense l × l landmark block; the sparse route keeps the n × n
        affinity in CSR and densifies just the n × l cross block, so the
        landmark math is bit-identical across backends.

    Returns
    -------
    n × k real feature matrix (top approximate eigenvectors of the
    normalized affinity).
    """
    n = graph.num_nodes
    if not 1 <= num_clusters <= num_landmarks <= n:
        raise ClusteringError(
            f"need num_clusters <= num_landmarks <= n, got "
            f"{num_clusters}, {num_landmarks}, {n}"
        )
    rng = ensure_rng(seed)
    be = resolve_backend(backend, n)
    adjacency = graph.symmetrized_adjacency(backend=be)
    # normalized affinity D^{-1/2} A D^{-1/2}: its TOP eigenvectors equal
    # the Laplacian's BOTTOM ones
    degrees = np.maximum(np.asarray(adjacency.sum(axis=1)).ravel(), 1e-12)
    scale = 1.0 / np.sqrt(degrees)
    affinity = be.scale_columns(be.scale_rows(adjacency, scale), scale)
    landmarks = np.sort(rng.choice(n, size=num_landmarks, replace=False))
    if is_sparse_matrix(affinity):
        cross = affinity[:, landmarks].toarray()
        block = cross[landmarks, :]
    else:
        block = affinity[np.ix_(landmarks, landmarks)]
        cross = affinity[:, landmarks]
    values, vectors = np.linalg.eigh(block + regularization * np.eye(num_landmarks))
    order = np.argsort(values)[::-1][:num_clusters]
    top_values = values[order]
    top_vectors = vectors[:, order]
    safe = np.where(np.abs(top_values) > 1e-10, top_values, 1e-10)
    extension = cross @ top_vectors / safe[None, :]
    norms = np.linalg.norm(extension, axis=0, keepdims=True)
    return extension / np.where(norms > 1e-12, norms, 1.0)


class NystromSpectralClustering:
    """Landmark-sampled approximate spectral clustering.

    Parameters
    ----------
    num_clusters:
        k.
    num_landmarks:
        Landmark sample size (default 4·k·log(k+1) rounded, min 4k).
    backend:
        ``repro.linalg`` backend spec forwarded to
        :func:`nystrom_embedding`.
    seed:
        RNG seed for sampling and k-means.
    """

    def __init__(
        self,
        num_clusters: int,
        num_landmarks: int | None = None,
        kmeans_restarts: int = 4,
        backend="auto",
        seed=None,
    ):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.num_landmarks = num_landmarks
        self.kmeans_restarts = kmeans_restarts
        self.backend = backend
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster via the Nyström-approximated embedding."""
        landmarks = self.num_landmarks or min(
            graph.num_nodes, max(4 * self.num_clusters, 8)
        )
        landmarks = min(landmarks, graph.num_nodes)
        embedding = row_normalize(
            nystrom_embedding(
                graph,
                self.num_clusters,
                landmarks,
                seed=self.seed,
                backend=self.backend,
            )
        )
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="nystrom",
        )
