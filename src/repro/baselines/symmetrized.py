"""Direction-blind baseline: spectral clustering of the symmetrized graph.

This is textbook Ng–Jordan–Weiss spectral clustering applied to
``graph.symmetrized_adjacency()`` — the method every practitioner reaches
for first, and the baseline the Hermitian approach is designed to beat when
cluster structure lives in arc orientation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.linalg import resolve_backend
from repro.spectral.clustering import ClusteringResult
from repro.spectral.eigensolvers import lowest_eigenpairs
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans


def symmetrized_laplacian(
    graph: MixedGraph, regularization: float = 1e-12, backend="dense"
):
    """Normalized Laplacian I − D^{−1/2} A_sym D^{−1/2} of the symmetrized graph.

    ``backend`` follows the ``repro.linalg`` contract; the sparse route
    assembles CSR directly from the edge arrays.
    """
    be = resolve_backend(backend, graph.num_nodes)
    adjacency = graph.symmetrized_adjacency(backend=be)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    scale = 1.0 / np.sqrt(np.maximum(degrees, regularization))
    identity = be.identity(graph.num_nodes, dtype=float)
    return identity - be.scale_columns(be.scale_rows(adjacency, scale), scale)


class SymmetrizedSpectralClustering:
    """Classical spectral clustering that ignores arc directions.

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    backend:
        ``repro.linalg`` backend spec (``"auto"`` scales to sparse for
        large graphs).
    seed:
        RNG seed for k-means.
    """

    def __init__(
        self,
        num_clusters: int,
        kmeans_restarts: int = 4,
        backend="auto",
        seed=None,
    ):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.kmeans_restarts = kmeans_restarts
        self.backend = backend
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster the symmetrized graph."""
        be = resolve_backend(self.backend, graph.num_nodes)
        laplacian = symmetrized_laplacian(graph, backend=be)
        _, vectors = lowest_eigenpairs(laplacian, self.num_clusters, backend=be)
        embedding = row_normalize(vectors.real)
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="symmetrized",
        )
