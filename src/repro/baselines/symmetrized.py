"""Direction-blind baseline: spectral clustering of the symmetrized graph.

This is textbook Ng–Jordan–Weiss spectral clustering applied to
``graph.symmetrized_adjacency()`` — the method every practitioner reaches
for first, and the baseline the Hermitian approach is designed to beat when
cluster structure lives in arc orientation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.spectral.clustering import ClusteringResult
from repro.spectral.eigensolvers import dense_lowest_eigenpairs
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans


def symmetrized_laplacian(graph: MixedGraph, regularization: float = 1e-12):
    """Normalized Laplacian I − D^{−1/2} A_sym D^{−1/2} of the symmetrized graph."""
    adjacency = graph.symmetrized_adjacency()
    degrees = adjacency.sum(axis=1)
    scale = 1.0 / np.sqrt(np.maximum(degrees, regularization))
    return np.eye(graph.num_nodes) - scale[:, None] * adjacency * scale[None, :]


class SymmetrizedSpectralClustering:
    """Classical spectral clustering that ignores arc directions.

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    seed:
        RNG seed for k-means.
    """

    def __init__(self, num_clusters: int, kmeans_restarts: int = 4, seed=None):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.kmeans_restarts = kmeans_restarts
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster the symmetrized graph."""
        laplacian = symmetrized_laplacian(graph)
        _, vectors = dense_lowest_eigenpairs(laplacian, self.num_clusters)
        embedding = row_normalize(vectors.real)
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="symmetrized",
        )
