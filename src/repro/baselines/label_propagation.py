"""Label propagation: the no-linear-algebra community-detection floor.

Raghavan et al.'s asynchronous label propagation: every node repeatedly
adopts the weighted-majority label of its neighbourhood until fixpoint.
Near-linear time, no spectra, no k — the number of clusters is emergent.
Included as the "cheapest possible" comparator and as a direction-blind
foil (it runs on the symmetrized graph).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.utils.rng import ensure_rng


def label_propagation(
    graph: MixedGraph,
    max_sweeps: int = 100,
    seed=None,
) -> np.ndarray:
    """Run asynchronous label propagation; returns compacted labels.

    Parameters
    ----------
    graph:
        Input mixed graph (arc directions ignored).
    max_sweeps:
        Full-node-permutation sweeps before giving up (the algorithm
        almost always fixes within a handful).
    seed:
        Permutation/tie-break seed.

    Returns
    -------
    Integer labels, relabelled to 0..c−1 in first-appearance order.
    """
    if max_sweeps < 1:
        raise ClusteringError(f"max_sweeps must be >= 1, got {max_sweeps}")
    rng = ensure_rng(seed)
    adjacency = graph.symmetrized_adjacency()
    n = graph.num_nodes
    labels = np.arange(n)
    neighbors = [np.flatnonzero(adjacency[node]) for node in range(n)]
    for _ in range(max_sweeps):
        changed = False
        for node in rng.permutation(n):
            nbrs = neighbors[node]
            if nbrs.size == 0:
                continue
            weights: dict[int, float] = {}
            for neighbor in nbrs:
                lbl = int(labels[neighbor])
                weights[lbl] = weights.get(lbl, 0.0) + adjacency[node, neighbor]
            best_weight = max(weights.values())
            candidates = sorted(
                lbl for lbl, w in weights.items() if w >= best_weight - 1e-12
            )
            choice = candidates[int(rng.integers(len(candidates)))]
            if choice != labels[node]:
                labels[node] = choice
                changed = True
        if not changed:
            break
    # compact label ids
    mapping: dict[int, int] = {}
    compact = np.empty(n, dtype=int)
    for index, label in enumerate(labels):
        if label not in mapping:
            mapping[int(label)] = len(mapping)
        compact[index] = mapping[int(label)]
    return compact


@dataclass(frozen=True)
class PropagationResult:
    """Labels plus the emergent community count."""

    labels: np.ndarray
    method: str = "label-propagation"

    @property
    def num_communities(self) -> int:
        """Number of distinct labels the propagation settled on."""
        return int(self.labels.max()) + 1 if self.labels.size else 0


class LabelPropagationClustering:
    """Estimator-style wrapper so label propagation fits the method panel.

    Because the cluster count is emergent, ``fit`` reports whatever the
    algorithm found; the panel's metrics (ARI/NMI) handle differing
    cluster counts gracefully.
    """

    def __init__(self, num_clusters: int | None = None, seed=None):
        self.num_clusters = num_clusters  # advisory only
        self.seed = seed

    def fit(self, graph: MixedGraph) -> PropagationResult:
        """Run propagation and return the labels."""
        return PropagationResult(labels=label_propagation(graph, seed=self.seed))
