"""Classical baselines the quantum algorithm is compared against."""

from repro.baselines.symmetrized import (
    SymmetrizedSpectralClustering,
    symmetrized_laplacian,
)
from repro.baselines.rw_laplacian import (
    RandomWalkSpectralClustering,
    chung_laplacian,
    stationary_distribution,
    stationary_distribution_sparse,
    transition_matrix,
)
from repro.baselines.disim import DiSimClustering, disim_embedding
from repro.baselines.naive import AdjacencyKMeans
from repro.baselines.nystrom import NystromSpectralClustering, nystrom_embedding
from repro.baselines.label_propagation import (
    LabelPropagationClustering,
    PropagationResult,
    label_propagation,
)

__all__ = [
    "NystromSpectralClustering",
    "nystrom_embedding",
    "LabelPropagationClustering",
    "PropagationResult",
    "label_propagation",
    "SymmetrizedSpectralClustering",
    "symmetrized_laplacian",
    "RandomWalkSpectralClustering",
    "chung_laplacian",
    "stationary_distribution",
    "stationary_distribution_sparse",
    "transition_matrix",
    "DiSimClustering",
    "disim_embedding",
    "AdjacencyKMeans",
]
