"""Naive baseline: k-means directly on adjacency rows.

No spectral step at all — each node is represented by its row of the
symmetrized adjacency matrix.  This floor baseline shows how much of the
benchmark is solvable without any eigenstructure.
"""

from __future__ import annotations

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.spectral.clustering import ClusteringResult
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans


class AdjacencyKMeans:
    """k-means on raw (row-normalized) adjacency rows.

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    seed:
        RNG seed for k-means.
    """

    def __init__(self, num_clusters: int, kmeans_restarts: int = 4, seed=None):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.kmeans_restarts = kmeans_restarts
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster adjacency rows directly."""
        embedding = row_normalize(graph.symmetrized_adjacency())
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="adjacency-kmeans",
        )
