"""Chung's directed random-walk Laplacian baseline.

Chung (2005) defines a symmetric Laplacian for *strongly connected*
directed graphs from the stationary distribution Φ of the random walk:

    L = I − (Φ^{1/2} P Φ^{−1/2} + Φ^{−1/2} P^T Φ^{1/2}) / 2.

It uses direction through the walk dynamics (not through complex phases),
making it the strongest classical directed competitor in the comparison
tables.  Dangling nodes and weak connectivity are handled with the standard
teleportation trick (PageRank-style restart).

The teleported walk matrix is dense by construction (the restart adds a
rank-one uniform term to every row), so the sparse route keeps the walk
*implicit*: the stationary distribution comes from a matvec-only power
iteration (:func:`stationary_distribution_sparse`, exact), and the
Laplacian assembled for the eigensolve keeps only the sparse (1−α)·D⁻¹A
part of the walk.  Two dense contributions are dropped there: the
rank-one teleport smoothing (an O(α) spectral perturbation) and the
uniform jump rows of *dangling* nodes (an O(1) perturbation per dangling
row — significant on dangling-heavy graphs such as netlists with output
sinks).  Because the sparse Laplacian is therefore an approximation, the
estimator defaults to the exact dense route; pass ``backend="sparse"``
(or ``"auto"``) explicitly to trade exactness for scalability.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.linalg import resolve_backend
from repro.spectral.clustering import ClusteringResult
from repro.spectral.eigensolvers import lowest_eigenpairs
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans


def transition_matrix(graph: MixedGraph, teleport: float = 0.05) -> np.ndarray:
    """Row-stochastic walk matrix with teleportation ``teleport``."""
    if not 0.0 < teleport < 1.0:
        raise ClusteringError(f"teleport must be in (0, 1), got {teleport}")
    adjacency = graph.directed_adjacency()
    n = graph.num_nodes
    out_weight = adjacency.sum(axis=1)
    walk = np.empty((n, n))
    uniform = np.full(n, 1.0 / n)
    for i in range(n):
        if out_weight[i] > 0:
            walk[i] = adjacency[i] / out_weight[i]
        else:
            walk[i] = uniform
    return (1.0 - teleport) * walk + teleport * uniform[None, :]


def stationary_distribution(
    walk: np.ndarray, tolerance: float = 1e-12, max_iterations: int = 10000
) -> np.ndarray:
    """Left Perron vector of a row-stochastic matrix by power iteration."""
    n = walk.shape[0]
    phi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = phi @ walk
        if np.abs(updated - phi).max() < tolerance:
            return updated / updated.sum()
        phi = updated
    return phi / phi.sum()


def _sparse_walk_part(graph: MixedGraph):
    """Row-normalized sparse walk D⁻¹A (CSR) and the dangling-row mask."""
    adjacency = graph.directed_adjacency(backend="sparse")
    out_weight = np.asarray(adjacency.sum(axis=1)).ravel()
    dangling = out_weight <= 0.0
    inverse = np.where(dangling, 0.0, 1.0 / np.maximum(out_weight, 1e-300))
    backend = resolve_backend("sparse")
    return backend.scale_rows(adjacency, inverse), dangling


def stationary_distribution_sparse(
    graph: MixedGraph,
    teleport: float = 0.05,
    tolerance: float = 1e-12,
    max_iterations: int = 10000,
    walk_parts=None,
) -> np.ndarray:
    """Stationary distribution of the teleported walk via implicit matvecs.

    Mathematically identical to ``stationary_distribution(
    transition_matrix(graph, teleport))`` — the rank-one teleport and the
    dangling-row uniform jumps are applied as scalar corrections instead
    of dense matrix entries, so memory stays O(edges).

    ``walk_parts`` optionally supplies a precomputed ``(walk, dangling)``
    pair from :func:`_sparse_walk_part` so callers that already built the
    CSR walk (e.g. :func:`chung_laplacian`) don't assemble it twice.
    """
    if not 0.0 < teleport < 1.0:
        raise ClusteringError(f"teleport must be in (0, 1), got {teleport}")
    walk_part, dangling = walk_parts or _sparse_walk_part(graph)
    n = graph.num_nodes
    phi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        spread = (1.0 - teleport) * float(phi[dangling].sum()) + teleport
        updated = (1.0 - teleport) * (phi @ walk_part) + spread / n
        if np.abs(updated - phi).max() < tolerance:
            return updated / updated.sum()
        phi = updated
    return phi / phi.sum()


def chung_laplacian(graph: MixedGraph, teleport: float = 0.05, backend="dense"):
    """Chung's symmetric directed Laplacian with teleportation.

    The dense route reproduces the definition exactly.  The sparse route
    (``backend="sparse"``/large-``"auto"``) uses the exact stationary
    distribution but symmetrizes only the sparse (1−α)·D⁻¹A part of the
    walk, dropping the rank-one teleport smoothing *and* the dangling-row
    uniform jumps to preserve sparsity — see the module docstring for the
    error characterization.
    """
    be = resolve_backend(backend, graph.num_nodes)
    if be.name != "sparse":
        walk = transition_matrix(graph, teleport)
        phi = stationary_distribution(walk)
        sqrt_phi = np.sqrt(np.maximum(phi, 1e-15))
        scaled = (sqrt_phi[:, None] * walk) / sqrt_phi[None, :]
        symmetric = (scaled + scaled.T) / 2.0
        return np.eye(graph.num_nodes) - symmetric
    walk_part, dangling = _sparse_walk_part(graph)
    phi = stationary_distribution_sparse(
        graph, teleport, walk_parts=(walk_part, dangling)
    )
    sqrt_phi = np.sqrt(np.maximum(phi, 1e-15))
    scaled = be.scale_columns(be.scale_rows(walk_part, sqrt_phi), 1.0 / sqrt_phi)
    symmetric = (1.0 - teleport) * (scaled + scaled.T) / 2.0
    return be.identity(graph.num_nodes, dtype=float) - symmetric


class RandomWalkSpectralClustering:
    """Spectral clustering on Chung's directed Laplacian.

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    teleport:
        Restart probability regularizing reducible walks.
    backend:
        ``repro.linalg`` backend spec.  Defaults to ``"dense"`` (the
        exact Chung Laplacian); ``"sparse"``/``"auto"`` opt in to the
        approximate sparsity-preserving route described in the module
        docstring.
    seed:
        RNG seed for k-means.
    """

    def __init__(
        self,
        num_clusters: int,
        teleport: float = 0.05,
        kmeans_restarts: int = 4,
        backend="dense",
        seed=None,
    ):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.teleport = teleport
        self.kmeans_restarts = kmeans_restarts
        self.backend = backend
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster using the walk-based directed Laplacian."""
        be = resolve_backend(self.backend, graph.num_nodes)
        laplacian = chung_laplacian(graph, self.teleport, backend=be)
        _, vectors = lowest_eigenpairs(laplacian, self.num_clusters, backend=be)
        embedding = row_normalize(vectors.real)
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="random-walk",
        )
