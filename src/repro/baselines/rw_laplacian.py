"""Chung's directed random-walk Laplacian baseline.

Chung (2005) defines a symmetric Laplacian for *strongly connected*
directed graphs from the stationary distribution Φ of the random walk:

    L = I − (Φ^{1/2} P Φ^{−1/2} + Φ^{−1/2} P^T Φ^{1/2}) / 2.

It uses direction through the walk dynamics (not through complex phases),
making it the strongest classical directed competitor in the comparison
tables.  Dangling nodes and weak connectivity are handled with the standard
teleportation trick (PageRank-style restart).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.spectral.clustering import ClusteringResult
from repro.spectral.eigensolvers import dense_lowest_eigenpairs
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans


def transition_matrix(graph: MixedGraph, teleport: float = 0.05) -> np.ndarray:
    """Row-stochastic walk matrix with teleportation ``teleport``."""
    if not 0.0 < teleport < 1.0:
        raise ClusteringError(f"teleport must be in (0, 1), got {teleport}")
    adjacency = graph.directed_adjacency()
    n = graph.num_nodes
    out_weight = adjacency.sum(axis=1)
    walk = np.empty((n, n))
    uniform = np.full(n, 1.0 / n)
    for i in range(n):
        if out_weight[i] > 0:
            walk[i] = adjacency[i] / out_weight[i]
        else:
            walk[i] = uniform
    return (1.0 - teleport) * walk + teleport * uniform[None, :]


def stationary_distribution(
    walk: np.ndarray, tolerance: float = 1e-12, max_iterations: int = 10000
) -> np.ndarray:
    """Left Perron vector of a row-stochastic matrix by power iteration."""
    n = walk.shape[0]
    phi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = phi @ walk
        if np.abs(updated - phi).max() < tolerance:
            return updated / updated.sum()
        phi = updated
    return phi / phi.sum()


def chung_laplacian(graph: MixedGraph, teleport: float = 0.05) -> np.ndarray:
    """Chung's symmetric directed Laplacian with teleportation."""
    walk = transition_matrix(graph, teleport)
    phi = stationary_distribution(walk)
    sqrt_phi = np.sqrt(np.maximum(phi, 1e-15))
    scaled = (sqrt_phi[:, None] * walk) / sqrt_phi[None, :]
    symmetric = (scaled + scaled.T) / 2.0
    return np.eye(graph.num_nodes) - symmetric


class RandomWalkSpectralClustering:
    """Spectral clustering on Chung's directed Laplacian.

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    teleport:
        Restart probability regularizing reducible walks.
    seed:
        RNG seed for k-means.
    """

    def __init__(
        self,
        num_clusters: int,
        teleport: float = 0.05,
        kmeans_restarts: int = 4,
        seed=None,
    ):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.teleport = teleport
        self.kmeans_restarts = kmeans_restarts
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster using the walk-based directed Laplacian."""
        laplacian = chung_laplacian(graph, self.teleport)
        _, vectors = dense_lowest_eigenpairs(laplacian, self.num_clusters)
        embedding = row_normalize(vectors.real)
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="random-walk",
        )
