"""DiSim baseline: SVD co-clustering of the directed adjacency matrix.

Rohe et al. (2016) cluster directed graphs from the singular vectors of a
regularized graph Laplacian: left singular vectors capture "sending"
behaviour, right singular vectors "receiving" behaviour.  Concatenating
both gives an embedding sensitive to asymmetric connectivity patterns — a
second directed competitor for the comparison tables, structurally very
different from both the Hermitian and the walk-based approaches.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph
from repro.spectral.clustering import ClusteringResult
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import kmeans


def disim_embedding(
    graph: MixedGraph, num_clusters: int, regularization: float | None = None
) -> np.ndarray:
    """[left | right] singular-vector embedding of the regularized Laplacian.

    Parameters
    ----------
    graph:
        Input mixed graph.
    num_clusters:
        Number of singular directions kept per side.
    regularization:
        τ added to degrees (default: mean out-degree, per the DiSim paper).
    """
    if num_clusters < 1 or num_clusters > graph.num_nodes:
        raise ClusteringError(
            f"num_clusters must be in [1, {graph.num_nodes}], got {num_clusters}"
        )
    adjacency = graph.directed_adjacency()
    out_degree = adjacency.sum(axis=1)
    in_degree = adjacency.sum(axis=0)
    tau = regularization if regularization is not None else float(out_degree.mean())
    tau = max(tau, 1e-12)
    out_scale = 1.0 / np.sqrt(out_degree + tau)
    in_scale = 1.0 / np.sqrt(in_degree + tau)
    laplacian = out_scale[:, None] * adjacency * in_scale[None, :]
    left, _, right_t = np.linalg.svd(laplacian)
    return np.hstack([left[:, :num_clusters], right_t[:num_clusters, :].T])


class DiSimClustering:
    """Directed co-clustering via singular vectors (Rohe et al. 2016).

    Parameters
    ----------
    num_clusters:
        Number of clusters k.
    regularization:
        Degree regularizer τ (default: mean degree).
    seed:
        RNG seed for k-means.
    """

    def __init__(
        self,
        num_clusters: int,
        regularization: float | None = None,
        kmeans_restarts: int = 4,
        seed=None,
    ):
        if num_clusters < 1:
            raise ClusteringError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.regularization = regularization
        self.kmeans_restarts = kmeans_restarts
        self.seed = seed

    def fit(self, graph: MixedGraph) -> ClusteringResult:
        """Cluster from the co-embedding of sending/receiving profiles."""
        embedding = row_normalize(
            disim_embedding(graph, self.num_clusters, self.regularization)
        )
        km = kmeans(
            embedding,
            self.num_clusters,
            num_restarts=self.kmeans_restarts,
            seed=self.seed,
        )
        return ClusteringResult(
            labels=km.labels,
            embedding=embedding,
            kmeans=km,
            method="disim",
        )
