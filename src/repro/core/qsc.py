"""End-to-end quantum spectral clustering of mixed graphs.

:class:`QuantumSpectralClustering` chains the full pipeline of the paper:

1. Hermitian Laplacian 𝓛(θ) of the mixed graph (symmetric normalization,
   spectrum ⊂ [0, 2]), padded to 2^m dimension;
2. QPE eigenvalue histogram on the maximally mixed node register →
   projection threshold ν (no classical eigensolve involved);
3. batched readout (:mod:`repro.core.readout`): eigenvalue filtering of
   every |e_i> (QPE → post-selection on readouts ≤ ν → uncompute),
   amplitude estimation of the acceptance probabilities, and finite-shot
   tomography of the filtered states, vectorized across all rows —
   yielding a noisy reconstruction of the subspace projector Π_k;
4. q-means (δ-noisy k-means) on the real feature map of those rows.

Row i of Π_k = U_k U_k† is the isometric image of the classical spectral
embedding row, so with exact arithmetic this reproduces classical Hermitian
spectral clustering — the quantum noise sources (quantization, shots, δ)
are exactly what the experiments sweep.
"""

from __future__ import annotations

import numpy as np

from repro.core.autok import estimate_num_clusters_quantum
from repro.core.config import QSCConfig
from repro.core.projection import accepted_outcomes, select_threshold
from repro.core.qmeans import qmeans
from repro.core.qpe_engine import make_backend
from repro.core.readout import batched_readout
from repro.core.result import QSCResult
from repro.exceptions import ClusteringError
from repro.graphs.hermitian import hermitian_laplacian
from repro.graphs.mixed_graph import MixedGraph
from repro.spectral.embedding import complex_to_real_features, row_normalize
from repro.utils.rng import ensure_rng, spawn_rngs


class QuantumSpectralClustering:
    """The paper's algorithm as a scikit-learn-style estimator.

    Parameters
    ----------
    num_clusters:
        Number of clusters k, or ``"auto"`` to select k from the sampled
        QPE eigenvalue histogram (quantum eigengap rule — see
        ``repro.core.autok`` and experiment A4).
    config:
        Pipeline tunables; ``None`` uses :class:`QSCConfig` defaults.

    Examples
    --------
    >>> from repro.graphs import cyclic_flow_sbm
    >>> graph, truth = cyclic_flow_sbm(48, 3, seed=1)
    >>> result = QuantumSpectralClustering(3).fit(graph)
    >>> result.labels.shape
    (48,)
    """

    def __init__(self, num_clusters, config: QSCConfig | None = None):
        if num_clusters == "auto":
            self.num_clusters = "auto"
        else:
            if int(num_clusters) < 1:
                raise ClusteringError(
                    f"num_clusters must be >= 1 or 'auto', got {num_clusters}"
                )
            self.num_clusters = int(num_clusters)
        self.config = config or QSCConfig()

    def fit(self, graph: MixedGraph) -> QSCResult:
        """Run the full quantum pipeline on ``graph``.

        With ``num_clusters="auto"`` the cluster count is selected from the
        sampled QPE histogram by the quantum eigengap rule
        (:func:`repro.core.autok.estimate_num_clusters_quantum`) before the
        projection step — model selection stays end-to-end quantum.
        """
        cfg = self.config
        if self.num_clusters != "auto" and self.num_clusters > graph.num_nodes:
            raise ClusteringError(
                f"cannot form {self.num_clusters} clusters from "
                f"{graph.num_nodes} nodes"
            )
        master = ensure_rng(cfg.seed)
        rng_histogram, rng_rows, rng_qmeans = spawn_rngs(master, 3)
        laplacian = hermitian_laplacian(
            graph,
            theta=cfg.theta,
            normalization=cfg.normalization,
            backend=cfg.linalg_backend,
        )
        backend = make_backend(laplacian, cfg)

        histogram = backend.eigenvalue_histogram(cfg.histogram_shots, rng_histogram)
        if self.num_clusters == "auto":
            if graph.num_nodes < 4:
                raise ClusteringError(
                    "auto cluster selection needs at least four nodes"
                )
            num_clusters = estimate_num_clusters_quantum(
                histogram,
                graph.num_nodes,
                cfg.precision_bits,
                backend.lambda_scale,
            ).num_clusters
        else:
            num_clusters = self.num_clusters
        if cfg.eigenvalue_threshold is not None:
            threshold = float(cfg.eigenvalue_threshold)
            accepted = accepted_outcomes(
                threshold, cfg.precision_bits, backend.lambda_scale
            )
        else:
            selection = select_threshold(
                histogram,
                num_clusters,
                graph.num_nodes,
                cfg.precision_bits,
                backend.lambda_scale,
            )
            threshold = selection.threshold
            # Accept every readout below the threshold, not only the bins
            # that happened to receive histogram counts — non-dyadic
            # eigenphases spread QPE mass into neighbouring bins and those
            # tails belong to the subspace too.
            accepted = accepted_outcomes(
                threshold, cfg.precision_bits, backend.lambda_scale
            )
        if accepted.size == 0:
            raise ClusteringError(
                "eigenvalue filter accepted no QPE readouts; increase "
                "precision_bits or the threshold"
            )

        n = graph.num_nodes
        # Batched readout pipeline: eigenvalue filter, tomography, amplitude
        # estimation and phase anchoring for all rows at once, chunked to
        # bound peak memory.  Per-row RNG streams are spawned from rng_rows
        # inside, so results match a per-row loop over the scalar readout
        # APIs bit for bit at the same seed.
        readout = batched_readout(
            backend,
            accepted,
            cfg.shots,
            rng_rows,
            chunk_size=cfg.readout_chunk_size,
            draw_threads=cfg.draw_threads,
        )
        rows, norms = readout.rows, readout.norms

        features = complex_to_real_features(rows[:, :n])
        features = row_normalize(features)
        km = qmeans(
            features,
            num_clusters,
            delta=cfg.qmeans_delta,
            max_iterations=cfg.qmeans_iterations,
            num_restarts=cfg.kmeans_restarts,
            seed=rng_qmeans,
        )
        return QSCResult(
            labels=km.labels,
            embedding=features,
            row_norms=norms,
            eigenvalue_histogram=histogram,
            threshold=threshold,
            accepted_bins=np.asarray(accepted, dtype=int),
            qmeans=km,
            backend_name=backend.name,
        )


def quantum_spectral_clustering(
    graph: MixedGraph, num_clusters: int, config: QSCConfig | None = None
) -> np.ndarray:
    """Functional one-shot wrapper returning only the labels."""
    return QuantumSpectralClustering(num_clusters, config).fit(graph).labels
