"""End-to-end quantum spectral clustering of mixed graphs.

:class:`QuantumSpectralClustering` chains the full pipeline of the paper:

1. Hermitian Laplacian 𝓛(θ) of the mixed graph (symmetric normalization,
   spectrum ⊂ [0, 2]), padded to 2^m dimension;
2. QPE eigenvalue histogram on the maximally mixed node register →
   projection threshold ν (no classical eigensolve involved);
3. batched readout (:mod:`repro.core.readout`): eigenvalue filtering of
   every |e_i> (QPE → post-selection on readouts ≤ ν → uncompute),
   amplitude estimation of the acceptance probabilities, and finite-shot
   tomography of the filtered states, vectorized across all rows —
   yielding a noisy reconstruction of the subspace projector Π_k;
4. q-means (δ-noisy k-means) on the real feature map of those rows.

Row i of Π_k = U_k U_k† is the isometric image of the classical spectral
embedding row, so with exact arithmetic this reproduces classical Hermitian
spectral clustering — the quantum noise sources (quantization, shots, δ)
are exactly what the experiments sweep.

Since the staged-pipeline refactor the chain itself lives in
:mod:`repro.pipeline`: ``fit`` is a thin wrapper over
:class:`repro.pipeline.QSCPipeline`, which runs the same code as five
composable stages (``laplacian → threshold → readout → embedding →
qmeans``) with per-stage telemetry and checkpoint/resume support — and is
bit-identical to the historical monolithic ``fit`` at fixed seeds
(golden-pinned in ``tests/pipeline/test_golden.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import QSCConfig
from repro.core.result import QSCResult
from repro.graphs.mixed_graph import MixedGraph
from repro.pipeline.pipeline import QSCPipeline


class QuantumSpectralClustering:
    """The paper's algorithm as a scikit-learn-style estimator.

    Parameters
    ----------
    num_clusters:
        Number of clusters k, or ``"auto"`` to select k from the sampled
        QPE eigenvalue histogram (quantum eigengap rule — see
        ``repro.core.autok`` and experiment A4).
    config:
        Pipeline tunables; ``None`` uses :class:`QSCConfig` defaults.

    Examples
    --------
    >>> from repro.graphs import cyclic_flow_sbm
    >>> graph, truth = cyclic_flow_sbm(48, 3, seed=1)
    >>> result = QuantumSpectralClustering(3).fit(graph)
    >>> result.labels.shape
    (48,)
    """

    def __init__(self, num_clusters, config: QSCConfig | None = None):
        # QSCPipeline owns the argument validation; a fresh pipeline is
        # built per fit so estimator instances stay stateless/reusable.
        pipeline = QSCPipeline(num_clusters, config)
        self.num_clusters = pipeline.num_clusters
        self.config = pipeline.config

    def fit(self, graph: MixedGraph) -> QSCResult:
        """Run the full quantum pipeline on ``graph``.

        With ``num_clusters="auto"`` the cluster count is selected from the
        sampled QPE histogram by the quantum eigengap rule
        (:func:`repro.core.autok.estimate_num_clusters_quantum`) inside the
        threshold stage — model selection stays end-to-end quantum.

        Delegates to :meth:`repro.pipeline.QSCPipeline.run`; use the
        pipeline directly for stage checkpointing (``save_stages``),
        resume (``resume_from``) or stage-state reuse.
        """
        return QSCPipeline(self.num_clusters, self.config).run(graph)


def quantum_spectral_clustering(
    graph: MixedGraph, num_clusters: int, config: QSCConfig | None = None
) -> np.ndarray:
    """Functional one-shot wrapper returning only the labels."""
    return QuantumSpectralClustering(num_clusters, config).fit(graph).labels
