"""q-means: the δ-noisy quantum k-means clustering model.

Following the q-means construction (Kerenidis, Landman, Luongo & Prakash,
NeurIPS 2019), the quantum algorithm is equivalent to classical Lloyd
iteration with two bounded noise sources:

* every squared distance used for assignment carries additive error
  uniformly bounded by δ (swap-test / amplitude-estimation error), and
* every updated centroid is reported with an l2 perturbation of norm at
  most δ (vector-tomography error).

At δ = 0 the iteration *is* Lloyd's algorithm (property-tested against
``repro.spectral.kmeans``).  The closed-form noise model is used instead of
per-distance swap-test circuits so q-means scales to thousands of rows; the
circuit-level swap test itself lives in ``repro.quantum.swap_test`` and is
exercised by the examples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.spectral.kmeans import KMeansResult, kmeans_plusplus_init
from repro.utils.rng import ensure_rng


def noisy_assign_labels(
    points: np.ndarray,
    centroids: np.ndarray,
    delta: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Assignment under distance estimates with additive error <= δ."""
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    if delta > 0:
        distances = distances + rng.uniform(-delta, delta, size=distances.shape)
    return distances.argmin(axis=1)


def perturb_centroids(
    centroids: np.ndarray, delta: float, rng: np.random.Generator
) -> np.ndarray:
    """Add an l2-bounded perturbation of norm <= δ to each centroid."""
    if delta <= 0:
        return centroids
    noise = rng.normal(size=centroids.shape)
    norms = np.linalg.norm(noise, axis=1, keepdims=True)
    norms = np.where(norms > 0, norms, 1.0)
    radii = rng.uniform(0.0, delta, size=(centroids.shape[0], 1))
    return centroids + noise / norms * radii


def qmeans(
    points: np.ndarray,
    num_clusters: int,
    delta: float = 0.05,
    max_iterations: int = 30,
    num_restarts: int = 4,
    stability_window: int = 3,
    seed=None,
) -> KMeansResult:
    """δ-noisy k-means (the q-means execution model).

    Parameters
    ----------
    points:
        n × d real data matrix (the spectral embedding rows).
    num_clusters:
        k.
    delta:
        Noise bound δ of the quantum subroutines; 0 reduces to Lloyd.
    max_iterations:
        Iteration cap per restart.
    num_restarts:
        Independent q-means++ initializations; lowest noisy inertia wins.
    stability_window:
        Stop once assignments are unchanged for this many consecutive
        iterations (noise means single-step equality is too strict).
    seed:
        RNG seed or generator.

    Returns
    -------
    :class:`repro.spectral.kmeans.KMeansResult`
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ClusteringError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= num_clusters <= n:
        raise ClusteringError(f"num_clusters must be in [1, {n}], got {num_clusters}")
    if delta < 0:
        raise ClusteringError(f"delta must be >= 0, got {delta}")
    if max_iterations < 1 or num_restarts < 1 or stability_window < 1:
        raise ClusteringError("iteration parameters must be >= 1")
    rng = ensure_rng(seed)
    best: KMeansResult | None = None
    for _ in range(num_restarts):
        centroids = kmeans_plusplus_init(points, num_clusters, rng)
        labels = noisy_assign_labels(points, centroids, delta, rng)
        stable_steps = 0
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            centroids = np.empty((num_clusters, points.shape[1]))
            for cluster in range(num_clusters):
                members = points[labels == cluster]
                if members.size == 0:
                    centroids[cluster] = points[int(rng.integers(n))]
                else:
                    centroids[cluster] = members.mean(axis=0)
            centroids = perturb_centroids(centroids, delta, rng)
            new_labels = noisy_assign_labels(points, centroids, delta, rng)
            if np.array_equal(new_labels, labels):
                stable_steps += 1
                if stable_steps >= (1 if delta == 0 else stability_window):
                    converged = True
                    labels = new_labels
                    break
            else:
                stable_steps = 0
            labels = new_labels
        inertia = float(((points - centroids[labels]) ** 2).sum())
        candidate = KMeansResult(
            labels=labels,
            centroids=centroids,
            inertia=inertia,
            iterations=iterations,
            converged=converged,
        )
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    return best
