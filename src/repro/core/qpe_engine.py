"""QPE engines: the quantum eigenvalue-filtering machinery.

Both backends implement the same three-operation contract against a padded
Hermitian Laplacian:

* ``eigenvalue_histogram(shots, rng)`` — sampled QPE readout counts with the
  maximally mixed node register as input (each shot starts from a uniformly
  random node basis state), so every Laplacian eigenvector contributes equal
  expected mass: the k lowest eigenvalues own the first ≈ k/n of the
  histogram, which is what threshold selection relies on.
* ``project_row(i, accepted, rng)`` — the normalized filtered state
  Π_A |e_i> (A = accepted readout set) and its true acceptance probability.
* ``lambda_scale`` — the eigenvalue-to-phase scaling, φ = λ / λ_scale.

``CircuitQPEBackend`` realises the filter at gate level: run the QPE
circuit, zero the amplitudes of rejected ancilla readouts (the projective
measurement amplitude amplification post-selects on), and run the inverse
QPE circuit to uncompute the ancillas.  ``AnalyticQPEBackend`` computes the
identical statistics from the eigendecomposition and the closed-form QPE
response kernel — same output distribution, no 2^(m+p) state (see the
substitution table in DESIGN.md).  Their agreement is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ClusteringError
from repro.linalg import is_sparse_matrix, to_dense_array
from repro.quantum.hamiltonian import (
    SpectralDecomposition,
    trotter_evolution,
)
from repro.quantum.phase_estimation import (
    qpe_circuit,
    qpe_outcome_distribution,
)
from repro.quantum.statevector import Statevector
from repro.utils.linalg import next_power_of_two

# Padded diagonal entries sit at the very top of the normalized spectrum so
# the low-eigenvalue filter always rejects them.
PAD_EIGENVALUE = 2.0
# Eigenphases must stay strictly below 1; the scale leaves a small guard band
# above the spectral bound 2 of the symmetric normalized Laplacian.
LAMBDA_SCALE = 2.125


def pad_laplacian(laplacian):
    """Embed an n × n Laplacian into the next power-of-two dimension.

    Padded rows are decoupled (block diagonal) with eigenvalue
    :data:`PAD_EIGENVALUE`, i.e. top-of-spectrum — they can never leak into
    the low-eigenvalue cluster subspace.

    Accepts either representation: a dense array pads into a dense array
    (vectorized diagonal fill), a ``scipy.sparse`` matrix pads into CSR
    without densifying.
    """
    if is_sparse_matrix(laplacian):
        import scipy.sparse as sparse

        n = laplacian.shape[0]
        dim = next_power_of_two(max(n, 2))
        if dim == n:
            return laplacian.tocsr(copy=True).astype(complex)
        pad_block = sparse.identity(dim - n, dtype=complex) * PAD_EIGENVALUE
        return sparse.block_diag(
            (laplacian.astype(complex), pad_block), format="csr"
        )
    laplacian = np.asarray(laplacian, dtype=complex)
    n = laplacian.shape[0]
    dim = next_power_of_two(max(n, 2))
    if dim == n:
        return laplacian.copy()
    padded = np.zeros((dim, dim), dtype=complex)
    padded[:n, :n] = laplacian
    tail = np.arange(n, dim)
    padded[tail, tail] = PAD_EIGENVALUE
    return padded


class AnalyticQPEBackend:
    """Closed-form QPE statistics from the eigendecomposition.

    Parameters
    ----------
    laplacian:
        The (unpadded) Hermitian Laplacian of the graph — dense ndarray or
        ``scipy.sparse`` matrix (adapted through the ``repro.linalg``
        densify adapter: the spectral decomposition below is inherently
        dense, so sparse input costs one conversion).
    precision_bits:
        QPE ancilla bits p.

    Notes
    -----
    The eigendecomposition here plays the role of the quantum computer,
    not of a classical shortcut: every quantity exposed is exactly the
    measurement statistics the circuit backend produces, and nothing else
    (cross-validated in tests/core/test_qpe_engine.py).
    """

    name = "analytic"

    def __init__(self, laplacian, precision_bits: int):
        if precision_bits < 1:
            raise ClusteringError(
                f"precision_bits must be >= 1, got {precision_bits}"
            )
        laplacian = to_dense_array(laplacian, dtype=complex)
        self.num_nodes = laplacian.shape[0]
        self.precision_bits = precision_bits
        self.lambda_scale = LAMBDA_SCALE
        padded = pad_laplacian(laplacian)
        self.dim = padded.shape[0]
        decomposition = SpectralDecomposition.of(padded)
        self._eigenvalues = decomposition.eigenvalues
        self._eigenvectors = decomposition.eigenvectors
        phases = self._eigenvalues / self.lambda_scale
        if phases.max() >= 1.0 or phases.min() < -1e-9:
            raise ClusteringError(
                "Laplacian spectrum exceeds the QPE phase window; use the "
                "symmetric normalization"
            )
        # kernel[j, y] = Pr[readout y | eigenvector j]
        self._kernel = np.vstack(
            [
                qpe_outcome_distribution(phase, precision_bits)
                for phase in phases
            ]
        )

    @property
    def eigenvalues(self) -> np.ndarray:
        """The padded Laplacian spectrum (read-only copy, ascending)."""
        return self._eigenvalues.copy()

    def component_acceptance(self, accepted: np.ndarray) -> np.ndarray:
        """q_j = probability that eigencomponent j passes the readout filter.

        This is the per-eigenvector attenuation of the eigenvalue filter;
        experiments use it to quantify bulk leakage versus precision.
        """
        accepted = np.asarray(accepted, dtype=int)
        return self._kernel[:, accepted].sum(axis=1)

    def quantization_errors(self) -> np.ndarray:
        """|λ̂_j − λ_j| where λ̂_j is the modal QPE readout of component j."""
        modal_bins = self._kernel.argmax(axis=1)
        estimates = modal_bins / 2**self.precision_bits * self.lambda_scale
        return np.abs(estimates - self._eigenvalues)

    def node_outcome_distribution(self, node: int) -> np.ndarray:
        """Exact QPE readout distribution when the input is |e_node>."""
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        weights = np.abs(self._eigenvectors[node, :]) ** 2
        return weights @ self._kernel

    def eigenvalue_histogram(self, shots: int, rng) -> np.ndarray:
        """Sampled readout histogram with maximally mixed node input.

        The mixture over nodes collapses to a single matvec: the weight of
        eigencomponent j is Σ_{i<n} |V[i, j]|², so the loop over per-node
        distributions is replaced by one ``weights @ kernel`` product.
        """
        if shots < 1:
            raise ClusteringError(f"shots must be >= 1, got {shots}")
        weights = (
            np.abs(self._eigenvectors[: self.num_nodes, :]) ** 2
        ).sum(axis=0)
        mixture = (weights @ self._kernel) / self.num_nodes
        return rng.multinomial(shots, mixture).astype(float)

    def project_rows(
        self, nodes, accepted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched eigenvalue filter: all requested rows in one matmul.

        Row i of the result is the normalized filtered state Π_A|e_i>
        (zeros when the row has no mass in the subspace), paired with its
        exact acceptance probability.  Replaces the per-row
        :meth:`project_row` loop in the pipeline hot path — one
        (nodes × dim) @ (dim × dim) product instead of n matvecs.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ClusteringError("node index out of range")
        accepted = np.asarray(accepted, dtype=int)
        acceptance = self._kernel[:, accepted].sum(axis=1)
        # coefficient matrix C[i, j] = conj(V[node_i, j]) * sqrt(q_j)
        coefficients = (
            self._eigenvectors[nodes, :].conj() * np.sqrt(acceptance)[None, :]
        )
        probabilities = np.sum(np.abs(coefficients) ** 2, axis=1)
        filtered = coefficients @ self._eigenvectors.T
        norms = np.linalg.norm(filtered, axis=1)
        alive = probabilities >= 1e-15
        filtered[~alive] = 0.0
        probabilities = np.where(alive, probabilities, 0.0)
        safe = np.where(alive, norms, 1.0)
        return filtered / safe[:, None], probabilities

    def project_row(
        self, node: int, accepted: np.ndarray, rng=None
    ) -> tuple[np.ndarray, float]:
        """Filtered state Π_A|e_node> (normalized) and acceptance probability.

        Each eigencomponent j survives the readout filter with amplitude
        sqrt(q_j), q_j = Σ_{y∈A} kernel[j, y] — the coherent attenuation
        amplitude amplification applies after post-selection.
        """
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        states, probabilities = self.project_rows([node], accepted)
        return states[0], float(probabilities[0])


class CircuitQPEBackend:
    """Gate-level QPE filtering on the statevector simulator.

    Parameters
    ----------
    laplacian:
        The (unpadded) Hermitian Laplacian.
    precision_bits:
        QPE ancilla bits p.
    evolution:
        ``"exact"`` for the eigendecomposed exponential (oracle
        substitution), ``"trotter"`` for a product-formula unitary.
    trotter_steps / trotter_order:
        Product-formula parameters.

    Notes
    -----
    Memory is O(2^(m+p)); keep n·2^p below ~2^20.
    """

    name = "circuit"

    def __init__(
        self,
        laplacian,
        precision_bits: int,
        evolution: str = "exact",
        trotter_steps: int = 4,
        trotter_order: int = 2,
    ):
        if precision_bits < 1:
            raise ClusteringError(
                f"precision_bits must be >= 1, got {precision_bits}"
            )
        laplacian = to_dense_array(laplacian, dtype=complex)
        self.num_nodes = laplacian.shape[0]
        self.precision_bits = precision_bits
        self.lambda_scale = LAMBDA_SCALE
        padded = pad_laplacian(laplacian)
        self.dim = padded.shape[0]
        time = 2.0 * np.pi / self.lambda_scale
        if evolution == "exact":
            unitary = SpectralDecomposition.of(padded).evolution(time)
        elif evolution == "trotter":
            unitary = trotter_evolution(
                padded, time, steps=trotter_steps, order=trotter_order
            )
        else:
            raise ClusteringError(f"unknown evolution {evolution!r}")
        self._circuit = qpe_circuit(unitary, precision_bits)
        self._inverse_circuit = self._circuit.inverse()

    def _run_forward(self, input_state: np.ndarray) -> np.ndarray:
        total_dim = 2**self._circuit.num_qubits
        joint = np.zeros(total_dim, dtype=complex)
        joint[: self.dim] = input_state
        return self._circuit.run(Statevector(joint)).amplitudes

    def node_outcome_distribution(self, node: int) -> np.ndarray:
        """Exact QPE readout distribution when the input is |e_node>."""
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        basis = np.zeros(self.dim, dtype=complex)
        basis[node] = 1.0
        table = self._run_forward(basis).reshape(
            2**self.precision_bits, self.dim
        )
        return (np.abs(table) ** 2).sum(axis=1)

    def eigenvalue_histogram(self, shots: int, rng) -> np.ndarray:
        """Sampled readout histogram with maximally mixed node input."""
        if shots < 1:
            raise ClusteringError(f"shots must be >= 1, got {shots}")
        mixture = np.zeros(2**self.precision_bits)
        for node in range(self.num_nodes):
            mixture += self.node_outcome_distribution(node)
        mixture /= self.num_nodes
        return rng.multinomial(shots, mixture).astype(float)

    def project_row(
        self, node: int, accepted: np.ndarray, rng=None
    ) -> tuple[np.ndarray, float]:
        """Gate-level eigenvalue filter: QPE → readout projector → QPE†.

        The ancilla register is uncomputed by the inverse circuit; the
        system block with ancilla = |0...0> carries the filtered state
        (residual amplitude on other ancilla values is QPE leakage and is
        discarded by the final post-selection, exactly as on hardware).
        """
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        accepted = np.asarray(accepted, dtype=int)
        basis = np.zeros(self.dim, dtype=complex)
        basis[node] = 1.0
        joint = self._run_forward(basis)
        table = joint.reshape(2**self.precision_bits, self.dim)
        mask = np.zeros(2**self.precision_bits, dtype=bool)
        mask[accepted] = True
        table[~mask, :] = 0.0
        accept_probability = float(np.sum(np.abs(table) ** 2))
        if accept_probability < 1e-15:
            return np.zeros(self.dim, dtype=complex), 0.0
        normalized = table.ravel() / np.sqrt(accept_probability)
        uncomputed = self._inverse_circuit.run(Statevector(normalized)).amplitudes
        system_block = uncomputed.reshape(2**self.precision_bits, self.dim)[0]
        block_mass = float(np.sum(np.abs(system_block) ** 2))
        probability = accept_probability * block_mass
        if probability < 1e-15:
            return np.zeros(self.dim, dtype=complex), 0.0
        return system_block / np.sqrt(block_mass), probability

    def project_rows(
        self, nodes, accepted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`project_row` (sequential circuit runs inside).

        Gate-level simulation cannot share work across input rows, so this
        simply loops — it exists to give both backends the same batched
        interface the pipeline drives.
        """
        nodes = np.asarray(nodes, dtype=int)
        states = np.zeros((nodes.size, self.dim), dtype=complex)
        probabilities = np.zeros(nodes.size)
        for index, node in enumerate(nodes):
            states[index], probabilities[index] = self.project_row(
                int(node), accepted
            )
        return states, probabilities


def make_backend(laplacian, config) -> object:
    """Instantiate the backend requested by a :class:`QSCConfig`."""
    if config.backend == "analytic":
        return AnalyticQPEBackend(laplacian, config.precision_bits)
    return CircuitQPEBackend(
        laplacian,
        config.precision_bits,
        evolution=config.evolution,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
    )
