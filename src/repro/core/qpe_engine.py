"""QPE engines: the quantum eigenvalue-filtering machinery.

Both backends implement the same three-operation contract against a padded
Hermitian Laplacian:

* ``eigenvalue_histogram(shots, rng)`` — sampled QPE readout counts with the
  maximally mixed node register as input (each shot starts from a uniformly
  random node basis state), so every Laplacian eigenvector contributes equal
  expected mass: the k lowest eigenvalues own the first ≈ k/n of the
  histogram, which is what threshold selection relies on.
* ``project_rows(nodes, accepted)`` — the batched eigenvalue filter: the
  normalized filtered states Π_A |e_i> (A = accepted readout set) and their
  true acceptance probabilities for a whole block of rows at once.  This is
  the hot path the readout pipeline (:mod:`repro.core.readout`) drives;
  ``project_row`` is the single-row reference form.
* ``lambda_scale`` — the eigenvalue-to-phase scaling, φ = λ / λ_scale.

``CircuitQPEBackend`` realises the filter at gate level: run the QPE
circuit, zero the amplitudes of rejected ancilla readouts (the projective
measurement amplitude amplification post-selects on), and run the inverse
QPE circuit to uncompute the ancillas.  Its batched path runs every gate on
a *matrix* of basis columns instead of one statevector per node, and caches
the forward QPE application of all basis inputs when the table fits in
memory, so the forward circuit is simulated once per fit rather than once
per node.  ``AnalyticQPEBackend`` computes the identical statistics from
the eigendecomposition and the closed-form QPE response kernel — same
output distribution, no 2^(m+p) state (see the substitution table in
DESIGN.md).  Their agreement is property-tested.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ClusteringError
from repro.store import DEFAULT_MEMORY_BYTES, ContentStore, get_store
from repro.linalg import is_sparse_matrix, to_dense_array
from repro.linalg.array_backend import dispatched_matmul
from repro.quantum.hamiltonian import (
    SpectralDecomposition,
    trotter_evolution,
)
from repro.quantum.phase_estimation import (
    qpe_circuit,
    qpe_outcome_distributions,
)
from repro.quantum.statevector import Statevector
from repro.utils.linalg import next_power_of_two

# Padded diagonal entries sit at the very top of the normalized spectrum so
# the low-eigenvalue filter always rejects them.
PAD_EIGENVALUE = 2.0
# Eigenphases must stay strictly below 1; the scale leaves a small guard band
# above the spectral bound 2 of the symmetric normalized Laplacian.
LAMBDA_SCALE = 2.125
# Batched circuit passes process this many basis columns at a time unless a
# chunk size is configured; bounds peak memory at columns · 2^(p+m) amplitudes.
DEFAULT_MAX_BATCH_COLUMNS = 64
# Cache the joint forward table (2^p · dim · n complex entries) only below
# this size (~64 MiB); larger tables are recomputed chunk by chunk per pass.
FORWARD_TABLE_CACHE_MAX_ENTRIES = 1 << 22
# Default byte budget of the process-wide spectral cache below (~256 MiB of
# eigendecompositions and QPE kernels; a 1024-node graph costs ~16 MiB).
# This *is* the content store's memory-tier budget: the spectral cache is a
# view over the store, so the two budgets are one and the same knob.
SPECTRAL_CACHE_MAX_BYTES = DEFAULT_MEMORY_BYTES


def laplacian_fingerprint(laplacian: np.ndarray) -> str:
    """Content key of a dense Laplacian: hash of its shape, dtype and bytes.

    Two Laplacians share a fingerprint iff they are entry-for-entry
    identical, so any change to the underlying graph (an edge, a weight, a
    different θ or normalization) produces a different key and can never be
    served stale spectral data.  Hashing costs O(n²) — negligible next to
    the O(n³) eigendecomposition it stands in for.
    """
    laplacian = np.ascontiguousarray(laplacian)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(laplacian.shape).encode())
    digest.update(str(laplacian.dtype).encode())
    digest.update(laplacian.tobytes())
    return digest.hexdigest()


#: Store namespace of the spectral entries (eigendecompositions, kernels).
SPECTRAL_NAMESPACE = "spectral"


class SpectralCache:
    """Content-keyed cache of eigendecompositions and QPE kernels.

    Since the shared compute tier landed this is a thin *view* over the
    process-wide :class:`repro.store.ContentStore` (namespace
    ``"spectral"``): entries are keyed by Laplacian content
    (:func:`laplacian_fingerprint`) — plus the ancilla count for kernels —
    so sweep points that vary only shots, threshold or precision reuse
    the O(n³) eigendecomposition, and points that vary only
    shots/threshold additionally reuse the QPE response kernel.  The
    memory tier is a byte-bounded LRU exactly as before (an entry larger
    than the whole budget is simply not kept resident), and when the
    store has a disk root attached (``QSCConfig.store_dir`` /
    ``--store-dir``) a fresh process serves repeat Laplacians from disk
    instead of re-decomposing — the cross-process warm path.

    Cached arrays are marked read-only and shared between backend
    instances; callers must treat them as immutable (the backends do).
    The view is *transparent*: memory hit, disk hit or miss, the numbers
    produced are identical (golden-pinned in ``tests/store/``).

    The legacy counter shape is preserved: ``stats()["hits"]`` counts
    memory and disk hits together, ``entries``/``bytes`` describe the
    memory tier only.
    """

    def __init__(self, store: ContentStore | None = None, max_bytes: int | None = None):
        self._store = store if store is not None else get_store()
        if max_bytes is not None:
            self._store.configure(max_memory_bytes=max_bytes)

    @property
    def store(self) -> ContentStore:
        """The backing content store."""
        return self._store

    @property
    def max_bytes(self) -> int:
        """Memory-tier byte budget (the store's ``max_memory_bytes``)."""
        return self._store.max_memory_bytes

    @property
    def enabled(self) -> bool:
        """Whether lookups are served at all (store-wide switch)."""
        return self._store.enabled

    # -- bookkeeping ------------------------------------------------------

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, evictions, entries, bytes.

        ``hits`` merges memory- and disk-tier hits of the spectral
        namespace; ``evictions`` counts memory-tier evictions (the legacy
        meaning — disk evictions appear in the store's own stats).
        """
        stats = self._store.namespace_stats(SPECTRAL_NAMESPACE)
        return {
            "hits": stats["memory_hits"] + stats["disk_hits"],
            "misses": stats["misses"],
            "evictions": stats["memory_evictions"],
            "entries": stats["entries"],
            "bytes": stats["bytes"],
        }

    def clear(self, reset_stats: bool = True) -> None:
        """Drop the memory tier (and by default zero the counters).

        Disk-tier entries survive — clearing simulates a fresh worker
        process, which then serves repeat Laplacians as disk hits.
        """
        self._store.clear_memory(reset_stats=reset_stats)

    def configure(
        self, max_bytes: int | None = None, enabled: bool | None = None
    ) -> None:
        """Adjust the memory byte budget and/or switch caching off."""
        self._store.configure(max_memory_bytes=max_bytes, enabled=enabled)

    # -- the two cached products ------------------------------------------

    def decomposition(
        self, fingerprint: str, padded: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition ``(eigenvalues, eigenvectors)`` of ``padded``.

        ``padded`` may be ``None`` on a guaranteed hit (the caller already
        holds the fingerprint from an earlier call this process).
        """

        def build():
            if padded is None:
                raise ClusteringError("spectral cache miss with no matrix to decompose")
            decomposition = SpectralDecomposition.of(padded)
            return {
                "eigenvalues": decomposition.eigenvalues,
                "eigenvectors": decomposition.eigenvectors,
            }

        payload = self._store.get_or_create(
            SPECTRAL_NAMESPACE, f"decomposition@{fingerprint}", build
        )
        return payload["eigenvalues"], payload["eigenvectors"]

    def kernel(
        self,
        fingerprint: str,
        precision_bits: int,
        phases: np.ndarray,
    ) -> np.ndarray:
        """QPE response kernel ``kernel[j, y] = Pr[readout y | eigvec j]``.

        Keyed by (Laplacian content, ancilla count): a sweep point that
        changes only shots or the acceptance threshold reuses both the
        decomposition *and* this kernel; changing ``precision_bits`` reuses
        the decomposition and rebuilds only the kernel.

        A miss computes the full (eigenvalues × outcomes) response matrix
        in one :func:`~repro.quantum.phase_estimation.qpe_outcome_distributions`
        broadcast pass — there is no per-eigenvalue Python loop left on the
        kernel-build path.
        """

        def build():
            return {"kernel": qpe_outcome_distributions(phases, precision_bits)}

        payload = self._store.get_or_create(
            SPECTRAL_NAMESPACE,
            f"kernel@{fingerprint}@p{int(precision_bits)}",
            build,
        )
        return payload["kernel"]


#: The process-wide spectral cache ``AnalyticQPEBackend`` (and the circuit
#: backend's exact-evolution construction) consult — a view over the
#: process-wide content store, so attaching a ``store_dir`` makes repeat
#: Laplacians cross-process disk hits.  Parallel sweep workers each own an
#: independent memory tier but share the disk tier.
SPECTRAL_CACHE = SpectralCache()


def spectral_cache_stats() -> dict:
    """Hit/miss/eviction counters of :data:`SPECTRAL_CACHE`."""
    return SPECTRAL_CACHE.stats()


def clear_spectral_cache() -> None:
    """Empty :data:`SPECTRAL_CACHE`'s memory tier and reset its counters."""
    SPECTRAL_CACHE.clear()


def pad_laplacian(laplacian):
    """Embed an n × n Laplacian into the next power-of-two dimension.

    Padded rows are decoupled (block diagonal) with eigenvalue
    :data:`PAD_EIGENVALUE`, i.e. top-of-spectrum — they can never leak into
    the low-eigenvalue cluster subspace.

    Accepts either representation: a dense array pads into a dense array
    (vectorized diagonal fill), a ``scipy.sparse`` matrix pads into CSR
    without densifying.
    """
    if is_sparse_matrix(laplacian):
        import scipy.sparse as sparse

        n = laplacian.shape[0]
        dim = next_power_of_two(max(n, 2))
        if dim == n:
            return laplacian.tocsr(copy=True).astype(complex)
        pad_block = sparse.identity(dim - n, dtype=complex) * PAD_EIGENVALUE
        return sparse.block_diag((laplacian.astype(complex), pad_block), format="csr")
    laplacian = np.asarray(laplacian, dtype=complex)
    n = laplacian.shape[0]
    dim = next_power_of_two(max(n, 2))
    if dim == n:
        return laplacian.copy()
    padded = np.zeros((dim, dim), dtype=complex)
    padded[:n, :n] = laplacian
    tail = np.arange(n, dim)
    padded[tail, tail] = PAD_EIGENVALUE
    return padded


class AnalyticQPEBackend:
    """Closed-form QPE statistics from the eigendecomposition.

    Parameters
    ----------
    laplacian:
        The (unpadded) Hermitian Laplacian of the graph — dense ndarray or
        ``scipy.sparse`` matrix (adapted through the ``repro.linalg``
        densify adapter: the spectral decomposition below is inherently
        dense, so sparse input costs one conversion).
    precision_bits:
        QPE ancilla bits p.

    Notes
    -----
    The eigendecomposition here plays the role of the quantum computer,
    not of a classical shortcut: every quantity exposed is exactly the
    measurement statistics the circuit backend produces, and nothing else
    (cross-validated in tests/core/test_qpe_engine.py).

    Both the eigendecomposition and the QPE response kernel are served
    from :data:`SPECTRAL_CACHE`, keyed by Laplacian content — constructing
    a second backend for the same Laplacian (a sweep point that varies
    only shots or threshold, or a diagnostics pass after a fit) skips the
    O(n³) eigensolve and, at equal ``precision_bits``, the kernel build.
    The cached arrays are shared read-only; hit or miss, outputs are
    bit-identical.
    """

    name = "analytic"

    def __init__(self, laplacian, precision_bits: int):
        if precision_bits < 1:
            raise ClusteringError(f"precision_bits must be >= 1, got {precision_bits}")
        # read-only below (pad_laplacian copies), so skip the defensive copy
        laplacian = to_dense_array(laplacian, dtype=complex, copy=False)
        self.num_nodes = laplacian.shape[0]
        self.precision_bits = precision_bits
        self.lambda_scale = LAMBDA_SCALE
        padded = pad_laplacian(laplacian)
        self.dim = padded.shape[0]
        fingerprint = laplacian_fingerprint(padded)
        self._eigenvalues, self._eigenvectors = SPECTRAL_CACHE.decomposition(
            fingerprint, padded
        )
        phases = self._eigenvalues / self.lambda_scale
        if phases.max() >= 1.0 or phases.min() < -1e-9:
            raise ClusteringError(
                "Laplacian spectrum exceeds the QPE phase window; use the "
                "symmetric normalization"
            )
        # kernel[j, y] = Pr[readout y | eigenvector j]
        self._kernel = SPECTRAL_CACHE.kernel(fingerprint, precision_bits, phases)

    @property
    def eigenvalues(self) -> np.ndarray:
        """The padded Laplacian spectrum (read-only copy, ascending)."""
        return self._eigenvalues.copy()

    def component_acceptance(self, accepted: np.ndarray) -> np.ndarray:
        """q_j = probability that eigencomponent j passes the readout filter.

        This is the per-eigenvector attenuation of the eigenvalue filter;
        experiments use it to quantify bulk leakage versus precision.
        """
        accepted = np.asarray(accepted, dtype=int)
        return self._kernel[:, accepted].sum(axis=1)

    def quantization_errors(self) -> np.ndarray:
        """|λ̂_j − λ_j| where λ̂_j is the modal QPE readout of component j."""
        modal_bins = self._kernel.argmax(axis=1)
        estimates = modal_bins / 2**self.precision_bits * self.lambda_scale
        return np.abs(estimates - self._eigenvalues)

    def node_outcome_distribution(self, node: int) -> np.ndarray:
        """Exact QPE readout distribution when the input is |e_node>."""
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        weights = np.abs(self._eigenvectors[node, :]) ** 2
        return weights @ self._kernel

    def eigenvalue_histogram(self, shots: int, rng) -> np.ndarray:
        """Sampled readout histogram with maximally mixed node input.

        Parameters
        ----------
        shots:
            Number of QPE executions to sample (must be >= 1).
        rng:
            :class:`numpy.random.Generator` supplying the multinomial draw.

        Returns
        -------
        numpy.ndarray
            Length-``2**precision_bits`` float vector of readout counts,
            summing to ``shots``; entry ``y`` counts readouts of the
            eigenvalue bin ``y / 2**precision_bits * lambda_scale``.

        Notes
        -----
        The mixture over nodes collapses to a single matvec: the weight of
        eigencomponent j is Σ_{i<n} |V[i, j]|², so the loop over per-node
        distributions is replaced by one ``weights @ kernel`` product.
        """
        if shots < 1:
            raise ClusteringError(f"shots must be >= 1, got {shots}")
        weights = (np.abs(self._eigenvectors[: self.num_nodes, :]) ** 2).sum(axis=0)
        mixture = (weights @ self._kernel) / self.num_nodes
        return rng.multinomial(shots, mixture).astype(float)

    def project_rows(
        self, nodes, accepted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched eigenvalue filter: all requested rows in one matmul.

        Parameters
        ----------
        nodes:
            Integer array-like of ``K`` node indices in ``[0, num_nodes)``
            (any order, duplicates allowed).
        accepted:
            Integer array of accepted QPE readout outcomes in
            ``[0, 2**precision_bits)`` — the filter set A.

        Returns
        -------
        (states, probabilities):
            ``states`` is a ``(K, dim)`` complex matrix whose row ``i`` is
            the *normalized* filtered state Π_A|e_{nodes[i]}> (all zeros
            when the row has no mass in the subspace); ``probabilities``
            is the matching ``(K,)`` float vector of exact acceptance
            probabilities ``||Π_A e_{nodes[i]}||²`` (0 for dead rows).

        Notes
        -----
        Replaces the per-row :meth:`project_row` loop in the pipeline hot
        path — one (K × dim) @ (dim × dim) product instead of K matvecs.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ClusteringError("node index out of range")
        accepted = np.asarray(accepted, dtype=int)
        acceptance = self._kernel[:, accepted].sum(axis=1)
        # coefficient matrix C[i, j] = conj(V[node_i, j]) * sqrt(q_j)
        coefficients = (
            self._eigenvectors[nodes, :].conj() * np.sqrt(acceptance)[None, :]
        )
        probabilities = np.sum(np.abs(coefficients) ** 2, axis=1)
        filtered = coefficients @ self._eigenvectors.T
        norms = np.linalg.norm(filtered, axis=1)
        alive = probabilities >= 1e-15
        filtered[~alive] = 0.0
        probabilities = np.where(alive, probabilities, 0.0)
        safe = np.where(alive, norms, 1.0)
        return filtered / safe[:, None], probabilities

    def project_row(
        self, node: int, accepted: np.ndarray, rng=None
    ) -> tuple[np.ndarray, float]:
        """Filtered state Π_A|e_node> (normalized, length ``dim``) and its
        acceptance probability — the single-row form of
        :meth:`project_rows`.

        Each eigencomponent j survives the readout filter with amplitude
        sqrt(q_j), q_j = Σ_{y∈A} kernel[j, y] — the coherent attenuation
        amplitude amplification applies after post-selection.
        """
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        states, probabilities = self.project_rows([node], accepted)
        return states[0], float(probabilities[0])


class CircuitQPEBackend:
    """Gate-level QPE filtering on the statevector simulator.

    Parameters
    ----------
    laplacian:
        The (unpadded) Hermitian Laplacian.
    precision_bits:
        QPE ancilla bits p.
    evolution:
        ``"exact"`` for the eigendecomposed exponential (oracle
        substitution), ``"trotter"`` for a product-formula unitary.
    trotter_steps / trotter_order:
        Product-formula parameters.
    max_batch_columns:
        Basis columns simulated per batched circuit pass (``None`` uses
        :data:`DEFAULT_MAX_BATCH_COLUMNS`).  Peak memory per pass is
        ``max_batch_columns · 2^(p+m)`` complex amplitudes.

    Notes
    -----
    Memory is O(2^(m+p)) per simulated column; keep n·2^p below ~2^20.
    The forward QPE application of every basis input is computed in one
    batched pass (and cached when the joint table stays below
    :data:`FORWARD_TABLE_CACHE_MAX_ENTRIES` complex entries), so the
    eigenvalue histogram and the row filter never re-simulate the forward
    circuit node by node.
    """

    name = "circuit"

    def __init__(
        self,
        laplacian,
        precision_bits: int,
        evolution: str = "exact",
        trotter_steps: int = 4,
        trotter_order: int = 2,
        max_batch_columns: int | None = None,
    ):
        if precision_bits < 1:
            raise ClusteringError(f"precision_bits must be >= 1, got {precision_bits}")
        if max_batch_columns is None:
            max_batch_columns = DEFAULT_MAX_BATCH_COLUMNS
        if max_batch_columns < 1:
            raise ClusteringError(
                f"max_batch_columns must be >= 1, got {max_batch_columns}"
            )
        # read-only below (pad_laplacian copies), so skip the defensive copy
        laplacian = to_dense_array(laplacian, dtype=complex, copy=False)
        self.num_nodes = laplacian.shape[0]
        self.precision_bits = precision_bits
        self.lambda_scale = LAMBDA_SCALE
        self.max_batch_columns = int(max_batch_columns)
        padded = pad_laplacian(laplacian)
        self.dim = padded.shape[0]
        time = 2.0 * np.pi / self.lambda_scale
        if evolution == "exact":
            # The exact evolution only needs the spectrum, so it shares the
            # content-keyed decomposition cache with the analytic backend.
            eigenvalues, eigenvectors = SPECTRAL_CACHE.decomposition(
                laplacian_fingerprint(padded), padded
            )
            unitary = SpectralDecomposition(
                eigenvalues=eigenvalues, eigenvectors=eigenvectors
            ).evolution(time)
        elif evolution == "trotter":
            unitary = trotter_evolution(
                padded, time, steps=trotter_steps, order=trotter_order
            )
        else:
            raise ClusteringError(f"unknown evolution {evolution!r}")
        self._circuit = qpe_circuit(unitary, precision_bits)
        self._inverse_circuit = self._circuit.inverse()
        self._forward_table: np.ndarray | None = None
        self._outcome_table: np.ndarray | None = None

    def _run_forward(self, input_state: np.ndarray) -> np.ndarray:
        total_dim = 2**self._circuit.num_qubits
        joint = np.zeros(total_dim, dtype=complex)
        joint[: self.dim] = input_state
        return self._circuit.run(Statevector(joint)).amplitudes

    # -- batched circuit execution ----------------------------------------

    def _apply_columns(self, circuit, columns: np.ndarray) -> np.ndarray:
        """Apply ``circuit`` to many joint statevectors at once.

        ``columns`` is a ``(2**num_qubits, K)`` complex matrix whose
        columns are independent input states; the result has the same
        shape.  Each gate contracts against all K columns in a single
        matmul — the batch axis rides along as a trailing tensor axis, so
        per-column results match single-statevector simulation.
        """
        num_qubits = circuit.num_qubits
        count = columns.shape[1]
        tensor = np.ascontiguousarray(columns, dtype=complex).reshape(
            (2,) * num_qubits + (count,)
        )
        for op in circuit.operations:
            matrix = op.resolve_matrix()
            k = len(op.qubits)
            moved = np.moveaxis(tensor, op.qubits, range(k))
            shape = moved.shape
            contracted = matrix @ moved.reshape(2**k, -1)
            tensor = np.moveaxis(contracted.reshape(shape), range(k), op.qubits)
        return np.ascontiguousarray(tensor).reshape(2**num_qubits, count)

    def _forward_columns(self, nodes: np.ndarray) -> np.ndarray:
        """Forward QPE joint states for basis inputs |e_i>, i ∈ ``nodes``.

        Returns a ``(2^p, dim, K)`` array: slab ``[..., j]`` is the joint
        (ancilla, system) amplitude table after the forward circuit on
        basis input ``nodes[j]``.  Computed ``max_batch_columns`` at a
        time to bound memory.
        """
        total_dim = 2**self._circuit.num_qubits
        out = np.empty((2**self.precision_bits, self.dim, nodes.size), dtype=complex)
        flat = out.reshape(total_dim, nodes.size)
        for start in range(0, nodes.size, self.max_batch_columns):
            block = nodes[start : start + self.max_batch_columns]
            columns = np.zeros((total_dim, block.size), dtype=complex)
            columns[block, np.arange(block.size)] = 1.0
            flat[:, start : start + block.size] = self._apply_columns(
                self._circuit, columns
            )
        return out

    def _table_cacheable(self) -> bool:
        """Whether the full-basis forward table fits the memory budget."""
        entries = (2**self.precision_bits) * self.dim * self.dim
        return entries <= FORWARD_TABLE_CACHE_MAX_ENTRIES

    def _basis_forward(self, nodes: np.ndarray) -> np.ndarray:
        """Forward table slabs for ``nodes``, served from the cache when the
        full table fits :data:`FORWARD_TABLE_CACHE_MAX_ENTRIES`.

        The cached table covers *all* ``dim`` basis inputs (padded inputs
        included) so it doubles as U restricted to the input block.  The
        returned ``(2^p, dim, K)`` array is always a fresh copy the caller
        may mutate.
        """
        if self._table_cacheable():
            if self._forward_table is None:
                self._forward_table = self._forward_columns(np.arange(self.dim))
            return self._forward_table[:, :, nodes].copy()
        return self._forward_columns(nodes)

    def _uncompute_blocks(self, masked: np.ndarray) -> np.ndarray:
        """Ancilla-|0...0> output block of U† applied to ``masked`` columns.

        ``masked`` is ``(2^p · dim, K)``; the result is ``(dim, K)``.  Rows
        ``0..dim`` of U† are F† for F = U[:, 0..dim] (the forward basis
        table), so when the table is cached this is a single matmul; the
        uncached fallback simulates the inverse circuit gate by gate.
        """
        if self._table_cacheable():
            if self._forward_table is None:
                self._forward_table = self._forward_columns(np.arange(self.dim))
            flat = self._forward_table.reshape(
                (2**self.precision_bits) * self.dim, self.dim
            )
            dispatched = dispatched_matmul(flat.conj().T, masked)
            if dispatched is not None:
                return dispatched
            return flat.conj().T @ masked
        uncomputed = self._apply_columns(self._inverse_circuit, masked)
        return uncomputed.reshape(2**self.precision_bits, self.dim, masked.shape[1])[0]

    def _node_outcome_table(self) -> np.ndarray:
        """``(num_nodes, 2^p)`` exact readout distributions, one row per
        basis input; built once from the batched forward pass."""
        if self._outcome_table is None:
            if self._table_cacheable():
                if self._forward_table is None:
                    self._forward_table = self._forward_columns(np.arange(self.dim))
                # straight off the cached table — no slab copies
                slabs = self._forward_table[:, :, : self.num_nodes]
                self._outcome_table = (np.abs(slabs) ** 2).sum(axis=1).T
            else:
                table = np.empty((self.num_nodes, 2**self.precision_bits))
                for start in range(0, self.num_nodes, self.max_batch_columns):
                    block = np.arange(
                        start,
                        min(start + self.max_batch_columns, self.num_nodes),
                    )
                    joint = self._forward_columns(block)
                    table[block] = (np.abs(joint) ** 2).sum(axis=1).T
                self._outcome_table = table
        return self._outcome_table

    def node_outcome_distribution(self, node: int) -> np.ndarray:
        """Exact QPE readout distribution when the input is |e_node>."""
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        return self._node_outcome_table()[node].copy()

    def eigenvalue_histogram(self, shots: int, rng) -> np.ndarray:
        """Sampled readout histogram with maximally mixed node input.

        Parameters
        ----------
        shots:
            Number of QPE executions to sample (must be >= 1).
        rng:
            :class:`numpy.random.Generator` supplying the multinomial draw.

        Returns
        -------
        numpy.ndarray
            Length-``2**precision_bits`` float vector of readout counts
            summing to ``shots`` — same contract as the analytic backend.

        Notes
        -----
        Uses the cached batched forward pass, so the circuit is not
        re-simulated per node.
        """
        if shots < 1:
            raise ClusteringError(f"shots must be >= 1, got {shots}")
        mixture = self._node_outcome_table().sum(axis=0) / self.num_nodes
        return rng.multinomial(shots, mixture).astype(float)

    def project_row(
        self, node: int, accepted: np.ndarray, rng=None
    ) -> tuple[np.ndarray, float]:
        """Gate-level eigenvalue filter: QPE → readout projector → QPE†.

        Single-row reference implementation: simulates the forward and
        inverse circuits on one statevector, bypassing the batched path
        and its cache (:meth:`project_rows` is what the pipeline uses).
        Returns the normalized length-``dim`` filtered state and its
        acceptance probability.

        The ancilla register is uncomputed by the inverse circuit; the
        system block with ancilla = |0...0> carries the filtered state
        (residual amplitude on other ancilla values is QPE leakage and is
        discarded by the final post-selection, exactly as on hardware).
        """
        if not 0 <= node < self.num_nodes:
            raise ClusteringError(f"node {node} out of range")
        accepted = np.asarray(accepted, dtype=int)
        basis = np.zeros(self.dim, dtype=complex)
        basis[node] = 1.0
        joint = self._run_forward(basis)
        table = joint.reshape(2**self.precision_bits, self.dim)
        mask = np.zeros(2**self.precision_bits, dtype=bool)
        mask[accepted] = True
        table[~mask, :] = 0.0
        accept_probability = float(np.sum(np.abs(table) ** 2))
        if accept_probability < 1e-15:
            return np.zeros(self.dim, dtype=complex), 0.0
        normalized = table.ravel() / np.sqrt(accept_probability)
        uncomputed = self._inverse_circuit.run(Statevector(normalized)).amplitudes
        system_block = uncomputed.reshape(2**self.precision_bits, self.dim)[0]
        block_mass = float(np.sum(np.abs(system_block) ** 2))
        probability = accept_probability * block_mass
        if probability < 1e-15:
            return np.zeros(self.dim, dtype=complex), 0.0
        return system_block / np.sqrt(block_mass), probability

    def project_rows(
        self, nodes, accepted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched gate-level eigenvalue filter.

        Parameters
        ----------
        nodes:
            Integer array-like of ``K`` node indices in ``[0, num_nodes)``.
        accepted:
            Integer array of accepted QPE readouts in
            ``[0, 2**precision_bits)``.

        Returns
        -------
        (states, probabilities):
            ``(K, dim)`` complex matrix of normalized filtered states
            (zero rows where no amplitude survived) and the matching
            ``(K,)`` acceptance probabilities — the same contract as
            :meth:`AnalyticQPEBackend.project_rows`.

        Notes
        -----
        Runs forward QPE on all basis columns of a block at once (served
        from the forward-table cache when available) and masks rejected
        readouts.  The uncompute-and-postselect step needs only the
        ancilla-|0...0> output block of the inverse circuit, and rows
        ``0..dim`` of U† are exactly the conjugate transpose of the
        forward basis table F = U[:, 0..dim] — so the inverse circuit
        collapses to one ``F† @ (masked columns)`` matmul against the same
        cached table, instead of K more full statevector simulations.
        Blocks are ``max_batch_columns`` wide so memory stays bounded.
        """
        nodes = np.asarray(nodes, dtype=int)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ClusteringError("node index out of range")
        accepted = np.asarray(accepted, dtype=int)
        size = 2**self.precision_bits
        mask = np.zeros(size, dtype=bool)
        mask[accepted] = True
        states = np.zeros((nodes.size, self.dim), dtype=complex)
        probabilities = np.zeros(nodes.size)
        for start in range(0, nodes.size, self.max_batch_columns):
            stop = min(start + self.max_batch_columns, nodes.size)
            table = self._basis_forward(nodes[start:stop])
            table[~mask, :, :] = 0.0
            acceptance = np.sum(np.abs(table) ** 2, axis=(0, 1))
            alive = acceptance >= 1e-15
            safe_acceptance = np.where(alive, acceptance, 1.0)
            masked = (table / np.sqrt(safe_acceptance)).reshape(
                size * self.dim, stop - start
            )
            blocks = self._uncompute_blocks(masked)
            block_mass = np.sum(np.abs(blocks) ** 2, axis=0)
            probability = acceptance * block_mass
            live = alive & (probability >= 1e-15)
            safe_mass = np.where(live, block_mass, 1.0)
            block_states = (blocks / np.sqrt(safe_mass)).T
            block_states[~live] = 0.0
            states[start:stop] = block_states
            probabilities[start:stop] = np.where(live, probability, 0.0)
        return states, probabilities


def make_backend(laplacian, config) -> object:
    """Instantiate the QPE backend requested by a :class:`QSCConfig`.

    Parameters
    ----------
    laplacian:
        The (unpadded) n × n Hermitian Laplacian — dense ndarray or
        ``scipy.sparse`` matrix; both backends densify internally and pad
        to the next power-of-two dimension.
    config:
        A :class:`repro.core.config.QSCConfig`; ``config.backend`` picks
        ``"analytic"`` or ``"circuit"``, ``config.precision_bits`` sets the
        ancilla count, the ``evolution`` / ``trotter_*`` fields configure
        the circuit backend's Hamiltonian simulation, and
        ``config.readout_chunk_size`` (when set) can lower — never raise —
        the circuit backend's batched-pass width.

    Returns
    -------
    :class:`AnalyticQPEBackend` or :class:`CircuitQPEBackend` — both
    expose ``num_nodes``, ``dim``, ``lambda_scale``,
    ``eigenvalue_histogram``, ``project_rows`` / ``project_row`` and
    ``node_outcome_distribution`` with identical shape contracts.
    """
    if config.backend == "analytic":
        return AnalyticQPEBackend(laplacian, config.precision_bits)
    if config.readout_chunk_size is None:
        max_batch_columns = None
    else:
        # readout_chunk_size is a memory *bound*: it may shrink the
        # batched circuit passes but must never widen them beyond the
        # default, or a large readout chunk would inflate the very memory
        # it is meant to cap.
        max_batch_columns = min(config.readout_chunk_size, DEFAULT_MAX_BATCH_COLUMNS)
    return CircuitQPEBackend(
        laplacian,
        config.precision_bits,
        evolution=config.evolution,
        trotter_steps=config.trotter_steps,
        trotter_order=config.trotter_order,
        max_batch_columns=max_batch_columns,
    )
