"""The paper's core contribution: quantum spectral clustering of mixed graphs."""

from repro.core.config import QSCConfig
from repro.core.projection import (
    ThresholdSelection,
    accepted_outcomes,
    bin_value,
    select_threshold,
)
from repro.core.qpe_engine import (
    AnalyticQPEBackend,
    CircuitQPEBackend,
    LAMBDA_SCALE,
    PAD_EIGENVALUE,
    make_backend,
    pad_laplacian,
)
from repro.core.qmeans import noisy_assign_labels, perturb_centroids, qmeans
from repro.core.readout import (
    ReadoutResult,
    batched_readout,
    canonicalize_row_phases,
)
from repro.core.qsc import QuantumSpectralClustering, quantum_spectral_clustering
from repro.core.result import QSCResult
from repro.core.runtime_model import RuntimeSample, fitted_exponent, profile_graph
from repro.core.autok import (
    AutoKResult,
    eigenvalues_from_histogram,
    estimate_num_clusters_quantum,
)

__all__ = [
    "AutoKResult",
    "eigenvalues_from_histogram",
    "estimate_num_clusters_quantum",
    "QSCConfig",
    "ThresholdSelection",
    "accepted_outcomes",
    "bin_value",
    "select_threshold",
    "AnalyticQPEBackend",
    "CircuitQPEBackend",
    "LAMBDA_SCALE",
    "PAD_EIGENVALUE",
    "make_backend",
    "pad_laplacian",
    "noisy_assign_labels",
    "perturb_centroids",
    "qmeans",
    "ReadoutResult",
    "batched_readout",
    "canonicalize_row_phases",
    "QuantumSpectralClustering",
    "quantum_spectral_clustering",
    "QSCResult",
    "RuntimeSample",
    "fitted_exponent",
    "profile_graph",
]
