"""Low-eigenspace threshold selection from sampled QPE histograms.

The pipeline must decide which QPE readouts y count as "low eigenvalue"
without peeking at the exact spectrum.  :func:`select_threshold` does this
from the *sampled* global eigenvalue histogram (QPE run on the uniform
superposition over nodes, measured ``histogram_shots`` times): each of the
n eigenvectors contributes ≈ shots/n counts concentrated near its
eigenphase, so the k lowest eigenvalues account for the first ≈ k/n of the
probability mass.  The threshold is placed in the widest empty gap after
that mass is covered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError


@dataclass(frozen=True)
class ThresholdSelection:
    """Outcome of histogram-based threshold selection.

    Attributes
    ----------
    threshold:
        Eigenvalue cut-off ν: readouts with λ(y) <= ν are kept.
    accepted_bins:
        Readout integers classified as low.
    histogram:
        The counts the decision was made from (index = readout y).
    """

    threshold: float
    accepted_bins: np.ndarray
    histogram: np.ndarray


def bin_value(outcome: int, precision_bits: int, lambda_scale: float) -> float:
    """Convert a QPE readout integer to an eigenvalue estimate."""
    return outcome / 2**precision_bits * lambda_scale


def select_threshold(
    histogram: np.ndarray,
    num_clusters: int,
    num_nodes: int,
    precision_bits: int,
    lambda_scale: float,
) -> ThresholdSelection:
    """Pick the projection threshold ν from a sampled eigenvalue histogram.

    Parameters
    ----------
    histogram:
        Counts per readout y (length 2^p).
    num_clusters:
        Target subspace dimension k.
    num_nodes:
        Number of graph nodes n (padding excluded) — sets the expected
        mass per eigenvector.
    precision_bits / lambda_scale:
        Conversion from readout to eigenvalue.

    Raises
    ------
    ClusteringError:
        If the histogram is empty or k is infeasible.
    """
    histogram = np.asarray(histogram, dtype=float)
    total = histogram.sum()
    if total <= 0:
        raise ClusteringError("empty eigenvalue histogram")
    if not 1 <= num_clusters <= num_nodes:
        raise ClusteringError(
            f"num_clusters must be in [1, {num_nodes}], got {num_clusters}"
        )
    occupied = np.flatnonzero(histogram)
    target_mass = (num_clusters - 0.5) / num_nodes * total
    cumulative = 0.0
    boundary_index = len(occupied) - 1
    for position, outcome in enumerate(occupied):
        cumulative += histogram[outcome]
        if cumulative >= target_mass:
            boundary_index = position
            break
    if boundary_index >= len(occupied) - 1:
        # Everything sampled is "low" — accept all occupied bins; the
        # threshold sits one bin above the highest occupied one.
        last = occupied[-1]
        threshold = bin_value(int(last) + 1, precision_bits, lambda_scale)
        accepted = occupied
    else:
        low_bin = int(occupied[boundary_index])
        high_bin = int(occupied[boundary_index + 1])
        threshold = bin_value(
            low_bin + (high_bin - low_bin) / 2.0, precision_bits, lambda_scale
        )
        accepted = occupied[: boundary_index + 1]
    return ThresholdSelection(
        threshold=float(threshold),
        accepted_bins=np.asarray(accepted, dtype=int),
        histogram=histogram,
    )


def accepted_outcomes(
    threshold: float, precision_bits: int, lambda_scale: float
) -> np.ndarray:
    """All readout integers whose eigenvalue estimate is <= ``threshold``."""
    if threshold <= 0:
        raise ClusteringError(f"threshold must be positive, got {threshold}")
    size = 2**precision_bits
    values = np.arange(size) / size * lambda_scale
    return np.flatnonzero(values <= threshold)
