"""Batched QPE readout: filter, tomograph, and shot-sample all rows at once.

This module is the pipeline stage between the QPE backend and the q-means
clustering step.  For every node ``i`` the paper's algorithm prepares
``|e_i>``, applies the eigenvalue filter (QPE → post-selection on accepted
readouts → uncompute), estimates the acceptance probability by amplitude
estimation, and reconstructs the filtered state by finite-shot tomography.
The seed implementation walked nodes one at a time; :func:`batched_readout`
runs the same computation as four batched stages:

1. **filter** — ``backend.project_rows`` returns the normalized filtered
   states and exact acceptance probabilities for a whole block of rows in
   one call (a single matmul on the analytic backend, one batched circuit
   pass on the circuit backend);
2. **tomography** — :func:`repro.quantum.measurement.tomography_estimate_batch`
   vectorizes magnitude and phase estimation across the block;
3. **amplitude estimation** — binomial shot noise on the acceptance
   probabilities, one draw per row;
4. **phase anchoring** — :func:`canonicalize_row_phases` rotates every row
   so its diagonal component is real-positive, recovering the projector's
   relative phases across rows.

Determinism contract: per-row RNG streams are spawned with
:func:`repro.utils.rng.spawn_rngs` from the single ``rng`` argument, and row
``i`` consumes exactly the draws a per-row loop over the scalar APIs
(``project_row`` + ``tomography_estimate`` + ``binomial``) would take from
the same generator — so the batched pipeline is bit-identical to that loop
at the same seed, regardless of ``chunk_size`` (chunking changes only how
many rows are in flight, never which generator serves which row).  This is
pinned in ``tests/core/test_readout.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError
from repro.quantum.measurement import tomography_estimate_batch
from repro.utils.rng import run_per_stream, spawn_rngs


@dataclass(frozen=True)
class ReadoutResult:
    """Output of the batched readout stage.

    Attributes
    ----------
    rows:
        ``(n, dim)`` complex matrix; row ``i`` is the tomography estimate of
        the filtered state scaled by the estimated acceptance amplitude —
        the noisy reconstruction of row ``i`` of the subspace projector.
    norms:
        ``(n,)`` estimated acceptance amplitudes ``sqrt(p̂_i)`` (amplitude-
        estimation output; becomes ``QSCResult.row_norms``).
    probabilities:
        ``(n,)`` exact acceptance probabilities from the filter stage
        (pre-shot-noise; useful for diagnostics and variance studies).
    """

    rows: np.ndarray
    norms: np.ndarray
    probabilities: np.ndarray


def canonicalize_row_phases(rows: np.ndarray) -> np.ndarray:
    """Rotate each row's global phase so its diagonal entry is real-positive.

    Tomography fixes each row only up to a global phase.  Row ``i`` of the
    projector Π_A has a *canonical* phase: its diagonal component
    ``Π[i, i] = ||Π_A e_i||²`` is real and non-negative, so rotating the
    estimate until component ``i`` is real-positive recovers the true
    relative phases across rows (up to shot noise).

    Parameters
    ----------
    rows:
        ``(n, dim)`` complex matrix with ``dim >= n``; anchor of row ``i``
        is column ``i``.  Rows whose anchor magnitude is below ``1e-12``
        (no diagonal mass survived the filter) are left untouched.

    Returns
    -------
    A new ``(n, dim)`` matrix; the input is not modified.
    """
    rows = np.array(rows, copy=True)
    n = rows.shape[0]
    if rows.shape[1] < n:
        raise ClusteringError(
            f"rows matrix {rows.shape} has no diagonal anchor for every row"
        )
    # The rotation factors are computed with *scalar* abs and division on
    # purpose: NumPy's array-path complex absolute value and division round
    # differently from the scalar path by an ulp, and bit-compatibility
    # with the historical per-row loop requires the scalar results.  Only
    # the O(n · dim) row multiplications are vectorized.
    fix: list[int] = []
    rotations: list[complex] = []
    for row in range(n):
        anchor = rows[row, row]
        magnitude = abs(anchor)
        if magnitude > 1e-12:
            fix.append(row)
            rotations.append(np.conj(anchor / magnitude))
    if fix:
        rows[fix] = rows[fix] * np.asarray(rotations)[:, None]
    return rows


def readout_span(
    backend,
    accepted: np.ndarray,
    shots: int,
    row_rngs,
    start: int,
    stop: int,
    *,
    chunk_size: int | None = None,
    draw_threads: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Filter + tomography + amplitude estimation for rows ``[start, stop)``.

    The chunk loop of :func:`batched_readout`, factored over an arbitrary
    contiguous row span so the sharded readout path
    (:mod:`repro.pipeline.sharding`) runs the *same* code per shard that
    the unsharded stage runs over all rows.

    Parameters
    ----------
    row_rngs:
        Per-row generators indexed **locally**: ``row_rngs[i]`` serves
        absolute row ``start + i``.  Callers slice the full
        :func:`~repro.utils.rng.spawn_rngs` layout, so row ``start + i``
        consumes exactly the stream it would in an unsharded pass —
        the span decomposition provably cannot change any bit.
    start, stop:
        Absolute row range (``backend.project_rows`` node indices).
    chunk_size:
        Rows per filter/tomography block *within* the span; ``None``
        processes the whole span in one block.

    Returns
    -------
    ``(rows, norms, probabilities)`` of local length ``stop - start``,
    **without** phase canonicalization (that is row-local and applied once
    by the caller after any merge).
    """
    if shots < 0:
        raise ClusteringError(f"shots must be non-negative, got {shots}")
    span_rows = stop - start
    rows = np.zeros((span_rows, backend.dim), dtype=complex)
    norms = np.zeros(span_rows)
    probabilities = np.zeros(span_rows)
    if span_rows == 0:
        return rows, norms, probabilities
    if chunk_size is None:
        chunk_size = span_rows
    if chunk_size < 1:
        raise ClusteringError(f"chunk_size must be >= 1, got {chunk_size}")
    accepted = np.asarray(accepted, dtype=int)
    for block_start in range(start, stop, chunk_size):
        nodes = np.arange(block_start, min(block_start + chunk_size, stop))
        local = nodes - start
        filtered, block_probabilities = backend.project_rows(nodes, accepted)
        probabilities[local] = block_probabilities
        alive = np.flatnonzero(block_probabilities > 0.0)
        if alive.size == 0:
            continue  # no row in this block has mass in the subspace
        alive_local = local[alive]
        estimates = tomography_estimate_batch(
            filtered[alive],
            shots,
            [row_rngs[index] for index in alive_local],
            draw_threads=draw_threads,
        )
        if shots > 0:
            # Amplitude estimation of the acceptance probability: binomial
            # shot noise at the same budget, one draw per row from that
            # row's own stream (after its tomography draws, as in the seed
            # loop) — chunked/threaded like the tomography draws, which
            # cannot change any stream's output.
            estimated = np.empty(alive.size)
            clipped = np.minimum(block_probabilities[alive], 1.0)

            def draw_amplitudes(draw_start: int, draw_stop: int) -> None:
                for index in range(draw_start, draw_stop):
                    estimated[index] = (
                        row_rngs[alive_local[index]].binomial(
                            shots, clipped[index]
                        )
                        / shots
                    )

            run_per_stream(alive.size, draw_amplitudes, threads=draw_threads)
        else:
            estimated = block_probabilities[alive]
        amplitudes = np.sqrt(estimated)
        rows[alive_local] = amplitudes[:, None] * estimates
        norms[alive_local] = amplitudes
    return rows, norms, probabilities


def batched_readout(
    backend,
    accepted: np.ndarray,
    shots: int,
    rng,
    *,
    chunk_size: int | None = None,
    canonical_phases: bool = True,
    draw_threads: int | None = None,
) -> ReadoutResult:
    """Run the full readout stage for every node of ``backend``.

    Parameters
    ----------
    backend:
        A QPE backend (``AnalyticQPEBackend`` or ``CircuitQPEBackend``)
        exposing ``num_nodes``, ``dim`` and ``project_rows``.
    accepted:
        Integer array of accepted QPE readout outcomes (the eigenvalue
        filter set A).
    shots:
        Per-node measurement budget for tomography and amplitude
        estimation; ``0`` means noiseless readout.
    rng:
        Seed or generator; per-row streams are spawned from it exactly as
        the seed loop did, so results are reproducible and chunk-invariant.
    chunk_size:
        Rows processed per filter/tomography block.  ``None`` processes all
        ``num_nodes`` rows in one block; smaller values bound peak memory
        (the circuit backend materialises ``chunk × 2^(p+m)`` amplitudes
        per block).  Chunking never changes the result.
    canonical_phases:
        Apply :func:`canonicalize_row_phases` before returning (the
        pipeline default; disable to inspect raw tomography output).
    draw_threads:
        Thread count for the per-row RNG draw stages (tomography and
        amplitude estimation).  Row streams are independent, so any value
        produces bit-identical output; ``None`` (default) stays serial.
        Exposed as ``QSCConfig.draw_threads`` / ``--draw-threads``.

    Returns
    -------
    :class:`ReadoutResult` with dead rows (zero acceptance probability)
    left as zero vectors.
    """
    num_nodes = int(backend.num_nodes)
    if shots < 0:
        raise ClusteringError(f"shots must be non-negative, got {shots}")
    row_rngs = spawn_rngs(rng, num_nodes)
    rows, norms, probabilities = readout_span(
        backend,
        accepted,
        shots,
        row_rngs,
        0,
        num_nodes,
        chunk_size=chunk_size,
        draw_threads=draw_threads,
    )
    if canonical_phases:
        rows = canonicalize_row_phases(rows)
    return ReadoutResult(rows=rows, norms=norms, probabilities=probabilities)
