"""Configuration for the quantum spectral clustering pipeline."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.generators import GENERATOR_VERSIONS
from repro.linalg import BACKEND_NAMES as LINALG_BACKENDS

BACKENDS = ("circuit", "analytic")
EVOLUTIONS = ("exact", "trotter")
#: Failure policies of the sharded-readout supervisor (the canonical
#: vocabulary — :mod:`repro.pipeline.supervisor` re-exports it).
SHARD_FAILURE_MODES = ("raise", "degrade")


@dataclass(frozen=True)
class QSCConfig:
    """All tunables of the quantum pipeline in one place.

    Attributes
    ----------
    precision_bits:
        QPE ancilla bits p — eigenvalues are resolved to λ_scale / 2^p.
    shots:
        Measurement budget per node for row tomography (0 = noiseless
        readout, the asymptotic-shots limit).
    readout_chunk_size:
        Rows per block in the batched readout pipeline
        (:mod:`repro.core.readout`).  ``None`` (default) processes all
        rows in one readout block; the circuit backend's internal circuit
        passes stay capped at 64 simulated columns either way, and a
        finite chunk can only lower that cap, never raise it — so smaller
        values strictly bound peak memory (each live filter block is
        ``chunk × dim`` amplitudes).  Chunking never changes results.
        Exposed on the CLI as ``--readout-chunk-size``.
    readout_shards:
        Split the readout stage into this many deterministic row shards
        executed by the supervised work queue
        (:mod:`repro.pipeline.sharding`).  ``None`` (default) runs the
        classic unsharded stage; any count produces bit-identical results
        because each shard consumes exactly the per-row RNG streams it
        owns and shards merge in index order.  With ``save_stages`` each
        shard checkpoints as ``readout.shard-<i>.npz``, so a crashed run
        resumes recomputing only the missing shards.  Exposed on the CLI
        as ``--readout-shards``.
    shard_timeout:
        Per-attempt wall-clock deadline (seconds) for one readout shard;
        a worker past it is killed and the shard retried.  ``None``
        (default) disables the deadline.  Exposed as ``--shard-timeout``.
    shard_retries:
        Extra attempts a failed/hung shard gets before the run's
        ``shard_failure_mode`` policy applies (default 2 → up to three
        attempts).  Exposed as ``--shard-retries``.
    shard_failure_mode:
        ``"raise"`` (default) aborts the fit when a shard exhausts its
        retries; ``"degrade"`` returns partial results with the failed
        shards' rows zeroed and their indices recorded in the readout
        stage's ``incomplete_shards`` telemetry.
    shard_workers:
        Concurrent worker processes for the sharded readout stage.
        ``None`` (default) caps in-flight attempts at ``os.cpu_count()``
        — each worker inherits ``draw_threads``, so launching one process
        per shard regardless of core count would oversubscribe the host
        at high shard counts.  Worker concurrency never changes results
        (shards merge in index order).  Exposed as ``--shard-workers``.
    store_dir:
        Root directory of the shared content-addressed compute store
        (:mod:`repro.store`).  ``None`` (default) keeps the store
        memory-only (per process); a path attaches the on-disk tier, so
        spectral eigendecompositions / QPE kernels and stage/shard
        checkpoints written by *any* process serve later runs as disk
        hits.  Purely an execution knob: a warm store is bit-transparent
        (hit or miss, outputs are identical) and the field never enters
        checkpoint fingerprints.  Exposed on the CLI as ``--store-dir``.
    draw_threads:
        Thread count for the readout pipeline's per-row RNG draw stages
        (tomography magnitudes/phases and amplitude estimation).  Row
        streams are independent and NumPy generators release the GIL while
        sampling, so any value — including ``None``/1 (serial, the
        default) — produces bit-identical results; larger values overlap
        the draw-bound part of the fit on multicore hosts.  Exposed on the
        CLI as ``--draw-threads``.
    generator_version:
        Seed contract of the synthetic-graph generators
        (:data:`repro.graphs.generators.GENERATOR_VERSIONS`): ``"v1"``
        (default) is the byte-stable legacy per-pair stream, ``"v2"`` the
        vectorized block-wise stream.  The clustering pipeline itself
        never samples graphs — the field travels with the config so
        experiment sweeps record which generator contract produced their
        inputs, and is exposed on the CLI as ``--generator-version``.
    histogram_shots:
        Shots spent on the global eigenvalue histogram used to pick the
        projection threshold.
    backend:
        ``"circuit"`` (full statevector QPE, n ≲ 64) or ``"analytic"``
        (closed-form QPE statistics, scales to thousands of nodes).
    linalg_backend:
        Matrix-representation backend for Laplacian construction:
        ``"auto"`` (default — dense below 256 nodes, sparse CSR with the
        LOBPCG midrange eigensolver up to 4096, sparse + ``eigsh``
        beyond), ``"dense"``, ``"sparse"``, or ``"array"`` (array-API
        device arrays — CuPy/torch when importable, numpy fallback —
        which also routes the QPE/tomography hot paths through the
        device); see ``repro.linalg``.  Exposed on the CLI as
        ``--backend``.
    evolution:
        ``"exact"`` Hamiltonian exponential or ``"trotter"`` product
        formula (circuit backend only).
    trotter_steps / trotter_order:
        Product-formula parameters when ``evolution="trotter"``.
    theta:
        Hermitian phase angle assigned to arcs.
    normalization:
        Laplacian normalization (the pipeline requires ``"symmetric"`` so
        the spectrum is bounded by 2 and eigenphases fit in [0, 1)).
    eigenvalue_threshold:
        Explicit projection threshold ν; ``None`` selects it from the
        sampled eigenvalue histogram (end-to-end quantum mode).
    qmeans_delta:
        Noise parameter δ of the q-means clustering step.
    qmeans_iterations:
        q-means iteration cap.
    kmeans_restarts:
        Independent q-means restarts.
    seed:
        Master seed; all stochastic stages derive their streams from it.
    """

    precision_bits: int = 6
    shots: int = 2048
    histogram_shots: int = 4096
    readout_chunk_size: int | None = None
    readout_shards: int | None = None
    shard_timeout: float | None = None
    shard_retries: int = 2
    shard_failure_mode: str = "raise"
    shard_workers: int | None = None
    store_dir: str | None = None
    draw_threads: int | None = None
    generator_version: str = "v1"
    backend: str = "analytic"
    linalg_backend: str = "auto"
    evolution: str = "exact"
    trotter_steps: int = 4
    trotter_order: int = 2
    theta: float = float(np.pi / 2)
    normalization: str = "symmetric"
    eigenvalue_threshold: float | None = None
    qmeans_delta: float = 0.05
    qmeans_iterations: int = 30
    kmeans_restarts: int = 4
    seed: int | None = 7

    def __post_init__(self):
        if self.precision_bits < 1:
            raise ClusteringError(
                f"precision_bits must be >= 1, got {self.precision_bits}"
            )
        if self.shots < 0 or self.histogram_shots < 1:
            raise ClusteringError("invalid shot budgets")
        if self.readout_chunk_size is not None and self.readout_chunk_size < 1:
            raise ClusteringError(
                f"readout_chunk_size must be >= 1 or None, "
                f"got {self.readout_chunk_size}"
            )
        if self.readout_shards is not None and self.readout_shards < 1:
            raise ClusteringError(
                f"readout_shards must be >= 1 or None, got {self.readout_shards}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ClusteringError(
                f"shard_timeout must be positive or None, got {self.shard_timeout}"
            )
        if self.shard_retries < 0:
            raise ClusteringError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if self.shard_failure_mode not in SHARD_FAILURE_MODES:
            raise ClusteringError(
                f"shard_failure_mode must be one of {SHARD_FAILURE_MODES}, "
                f"got {self.shard_failure_mode!r}"
            )
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ClusteringError(
                f"shard_workers must be >= 1 or None, got {self.shard_workers}"
            )
        if self.store_dir is not None and not str(self.store_dir).strip():
            raise ClusteringError(
                "store_dir must be a non-empty path or None"
            )
        if self.draw_threads is not None and self.draw_threads < 1:
            raise ClusteringError(
                f"draw_threads must be >= 1 or None, got {self.draw_threads}"
            )
        if self.generator_version not in GENERATOR_VERSIONS:
            raise ClusteringError(
                f"generator_version must be one of {GENERATOR_VERSIONS}, "
                f"got {self.generator_version!r}"
            )
        if self.backend not in BACKENDS:
            raise ClusteringError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.linalg_backend not in LINALG_BACKENDS:
            raise ClusteringError(
                f"linalg_backend must be one of {LINALG_BACKENDS}, "
                f"got {self.linalg_backend!r}"
            )
        if self.evolution not in EVOLUTIONS:
            raise ClusteringError(
                f"evolution must be one of {EVOLUTIONS}, got {self.evolution!r}"
            )
        if self.normalization != "symmetric":
            raise ClusteringError(
                "the quantum pipeline requires the symmetric normalization "
                "(bounded spectrum); baselines cover the others"
            )
        if self.trotter_steps < 1 or self.trotter_order not in (1, 2):
            raise ClusteringError("invalid Trotter parameters")
        if self.qmeans_delta < 0:
            raise ClusteringError(f"qmeans_delta must be >= 0, got {self.qmeans_delta}")
        if self.eigenvalue_threshold is not None and self.eigenvalue_threshold <= 0:
            raise ClusteringError("eigenvalue_threshold must be positive")

    def with_updates(self, **kwargs) -> "QSCConfig":
        """A modified copy — convenient for parameter sweeps."""
        return replace(self, **kwargs)
