"""Result record of the end-to-end quantum pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spectral.kmeans import KMeansResult


@dataclass(frozen=True)
class QSCResult:
    """Everything the quantum spectral clustering run produced.

    Attributes
    ----------
    labels:
        Cluster index per node (the clustering answer).
    embedding:
        Real feature matrix the q-means step clustered (n × 2n: the
        tomography reconstruction of each filtered row, scaled by its
        estimated norm, split into real and imaginary parts).
    row_norms:
        Estimated norm ||Π_A e_i|| per node (amplitude-estimation output).
    eigenvalue_histogram:
        Sampled QPE histogram the threshold was selected from.
    threshold:
        Eigenvalue cut-off ν actually used.
    accepted_bins:
        QPE readout integers classified as low.
    qmeans:
        The underlying q-means result.
    backend_name:
        Which QPE backend produced the rows.
    method:
        Method tag for experiment tables.
    profile:
        Per-stage telemetry of the staged pipeline run that produced this
        result: one dict per stage (``stage``, ``seconds``, ``source``,
        ``cache_hits``, ``cache_misses`` — see
        :mod:`repro.pipeline.telemetry`).  Excluded from equality because
        wall times differ between otherwise identical runs.
    """

    labels: np.ndarray
    embedding: np.ndarray
    row_norms: np.ndarray
    eigenvalue_histogram: np.ndarray
    threshold: float
    accepted_bins: np.ndarray
    qmeans: KMeansResult
    backend_name: str
    method: str = field(default="quantum-hermitian")
    profile: tuple = field(default=(), compare=False, repr=False)

    @property
    def num_nodes(self) -> int:
        """Number of clustered nodes."""
        return int(self.labels.size)

    @property
    def subspace_mass(self) -> float:
        """Mean acceptance probability — how much amplitude survived the
        eigenvalue filter (≈ k/n for a well-separated spectrum)."""
        return float(np.mean(self.row_norms**2))
