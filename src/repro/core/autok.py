"""End-to-end quantum model selection: choosing k from QPE histograms.

The classical eigengap heuristic needs the exact spectrum; the quantum
pipeline only ever sees *sampled, quantized* eigenvalues.  This module
ports the heuristic to that setting: the QPE histogram over the maximally
mixed node register assigns ≈ shots/n counts per eigenvector, so merging
adjacent occupied bins into "eigenvalue groups" and scanning cumulative
group masses yields estimated eigenvalue positions; the largest gap
between consecutive estimates in the low spectrum selects k.

This makes the *entire* pipeline — model selection included — run on
measurement data alone (experiment A4).  In the staged pipeline this is
the auto-k branch of the ``threshold`` stage
(:class:`repro.pipeline.stages.ThresholdStage`): when the requested
cluster count is ``"auto"``, the stage feeds its sampled histogram through
:func:`estimate_num_clusters_quantum` before selecting the projection
threshold, and the chosen k travels with the stage's checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.projection import bin_value
from repro.exceptions import ClusteringError


@dataclass(frozen=True)
class AutoKResult:
    """Outcome of quantum model selection.

    Attributes
    ----------
    num_clusters:
        Selected k.
    eigenvalue_estimates:
        Per-eigenvector eigenvalue estimates recovered from the histogram
        (length ≈ n, ascending).
    gaps:
        Consecutive gaps of those estimates.
    """

    num_clusters: int
    eigenvalue_estimates: np.ndarray
    gaps: np.ndarray


def eigenvalues_from_histogram(
    histogram: np.ndarray,
    num_nodes: int,
    precision_bits: int,
    lambda_scale: float,
) -> np.ndarray:
    """Recover ≈ n eigenvalue estimates from a mixed-input QPE histogram.

    Each eigenvector contributes total/n expected counts near its
    eigenphase.  Scanning bins in ascending order and slicing the
    cumulative mass into n equal quantiles assigns each eigenvector the
    (weighted) bin value at its quantile — robust to kernel leakage
    because leakage is symmetric around each peak.
    """
    histogram = np.asarray(histogram, dtype=float)
    total = histogram.sum()
    if total <= 0:
        raise ClusteringError("empty histogram")
    if num_nodes < 2:
        raise ClusteringError("need at least two nodes")
    per_eigenvector = total / num_nodes
    estimates = []
    cumulative = 0.0
    next_quantile = per_eigenvector / 2.0  # median of each eigenvector's mass
    for outcome, count in enumerate(histogram):
        if count <= 0:
            continue
        value = bin_value(outcome, precision_bits, lambda_scale)
        cumulative += count
        while next_quantile <= cumulative and len(estimates) < num_nodes:
            estimates.append(value)
            next_quantile += per_eigenvector
    while len(estimates) < num_nodes:
        estimates.append(
            bin_value(int(np.flatnonzero(histogram)[-1]), precision_bits, lambda_scale)
        )
    return np.asarray(estimates)


def estimate_num_clusters_quantum(
    histogram: np.ndarray,
    num_nodes: int,
    precision_bits: int,
    lambda_scale: float,
    k_min: int = 2,
    k_max: int | None = None,
) -> AutoKResult:
    """Eigengap model selection on sampled QPE data.

    Parameters
    ----------
    histogram:
        QPE readout counts with maximally mixed node input.
    num_nodes:
        Graph size n.
    precision_bits / lambda_scale:
        Readout-to-eigenvalue conversion.
    k_min / k_max:
        Search window (``k_max`` defaults to n // 2).

    Returns
    -------
    :class:`AutoKResult`
    """
    estimates = eigenvalues_from_histogram(
        histogram, num_nodes, precision_bits, lambda_scale
    )
    limit = k_max if k_max is not None else max(num_nodes // 2, k_min)
    limit = min(limit, estimates.size - 1)
    if k_min < 1 or k_min > limit:
        raise ClusteringError(f"invalid window [{k_min}, {limit}]")
    gaps = np.diff(estimates)
    window = gaps[k_min - 1 : limit]
    chosen = int(np.argmax(window)) + k_min
    return AutoKResult(
        num_clusters=chosen,
        eigenvalue_estimates=estimates,
        gaps=gaps,
    )
