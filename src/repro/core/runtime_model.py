"""Runtime comparison model for the scaling experiment (F3).

Combines *measured* classical eigendecomposition times with the *modeled*
quantum step counts from ``repro.quantum.resources`` (a simulator cannot
clock quantum hardware — the original evaluation compares step-count
proxies too, see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graphs.hermitian import hermitian_laplacian
from repro.graphs.mixed_graph import MixedGraph
from repro.quantum.resources import (
    classical_pipeline_step_count,
    quantum_pipeline_step_count,
)
from repro.spectral.eigensolvers import (
    dense_lowest_eigenpairs,
    lanczos_lowest_eigenpairs,
)


@dataclass(frozen=True)
class RuntimeSample:
    """One row of the runtime-scaling table.

    Attributes
    ----------
    num_nodes / num_edges:
        Graph size.
    quantum_steps:
        Modeled elementary-operation count of the quantum pipeline.
    classical_steps:
        Modeled step count of dense classical spectral clustering (O(n³)).
    dense_seconds / lanczos_seconds:
        Measured wall-clock of the two classical eigensolvers.
    """

    num_nodes: int
    num_edges: int
    quantum_steps: float
    classical_steps: float
    dense_seconds: float
    lanczos_seconds: float


def profile_graph(
    graph: MixedGraph,
    num_clusters: int,
    precision_bits: int = 6,
    shots: int = 256,
) -> RuntimeSample:
    """Measure classical solvers and model quantum steps for one graph."""
    laplacian = hermitian_laplacian(graph)
    start = time.perf_counter()
    dense_lowest_eigenpairs(laplacian, num_clusters)
    dense_seconds = time.perf_counter() - start
    start = time.perf_counter()
    lanczos_lowest_eigenpairs(laplacian, num_clusters, seed=0)
    lanczos_seconds = time.perf_counter() - start
    num_edges = graph.num_edges + graph.num_arcs
    quantum = quantum_pipeline_step_count(
        graph.num_nodes,
        num_edges,
        num_clusters,
        precision_bits,
        shots,
    )
    classical = classical_pipeline_step_count(graph.num_nodes, num_clusters)
    return RuntimeSample(
        num_nodes=graph.num_nodes,
        num_edges=num_edges,
        quantum_steps=quantum,
        classical_steps=classical,
        dense_seconds=dense_seconds,
        lanczos_seconds=lanczos_seconds,
    )


def fitted_exponent(sizes, values) -> float:
    """Least-squares slope of log(values) against log(sizes).

    The runtime figure quotes growth exponents; ~1 for the quantum proxy
    (edge-dominated) versus ~3 for dense classical clustering.
    """
    sizes = np.asarray(sizes, dtype=float)
    values = np.asarray(values, dtype=float)
    mask = (sizes > 0) & (values > 0)
    if mask.sum() < 2:
        raise ValueError("need at least two positive samples to fit a slope")
    slope, _ = np.polyfit(np.log(sizes[mask]), np.log(values[mask]), 1)
    return float(slope)
