"""The shared content-addressed compute store.

:class:`ContentStore` is the persistence tier underneath every cached
computation in the repo: spectral eigendecompositions and QPE kernels
(:mod:`repro.core.qpe_engine` keeps ``SPECTRAL_CACHE`` as a thin view over
it), whole stage checkpoints, and per-shard readout checkpoints
(:mod:`repro.pipeline.pipeline` / :mod:`repro.pipeline.sharding` resolve
through it, with classic per-run directories kept as a compatibility
alias).  Entries are **content-addressed**: the key of an entry is derived
from fingerprints of everything its payload depends on (Laplacian bytes,
run-context digests, shard layout), so a warm store can serve repeat
traffic across a fleet of worker processes and never serve stale bits.

Two tiers:

* an **in-memory LRU tier** (per process) bounded by ``max_memory_bytes``
  — the moral successor of the PR 3 spectral cache, still serving
  read-only shared arrays on process-local repeat lookups;
* an optional **on-disk tier** (shared between processes) bounded by
  ``max_disk_bytes``, attached with :meth:`ContentStore.attach` or the
  module-level :func:`configure_store` (what ``QSCConfig.store_dir`` /
  ``--store-dir`` call).

Failure behavior is the contract (tested in ``tests/store/``):

* **atomic writes** — payloads land in a temp file in the final entry's
  directory and are published with :func:`os.replace`; a writer crashing
  mid-put leaves a stale temp file (reaped by :meth:`gc`), never a
  half-written entry;
* **integrity-checked reads** — every entry carries a blake2b digest of
  its payload bytes plus its own (namespace, key) identity; a corrupt,
  truncated or misplaced entry is detected on read, evicted, counted in
  ``corrupt_evictions`` and recomputed — wrong bits are never served;
* **locked eviction** — byte-budget enforcement and :meth:`gc` take an
  exclusive ``flock`` on ``<root>/.lock`` so concurrent workers never
  race each other's eviction sweeps (readers need no lock: whole-file
  reads of an atomically-replaced file are torn-proof, and an entry
  unlinked mid-read simply reads as a miss).

The store is deliberately *transparent*: hit or miss, memory or disk, the
arrays handed back are bit-identical to recomputation — golden-pinned in
``tests/store/test_store_golden.py``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import re
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from repro.exceptions import StoreError

try:  # POSIX file locking; the store degrades to lockless on other OSes.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

#: Magic prefix of every on-disk entry (8 bytes, versioned).
MAGIC = b"RCAS0001"
#: Default byte budget of the in-memory LRU tier (~256 MiB).
DEFAULT_MEMORY_BYTES = 256 << 20
#: Default byte budget of the on-disk tier (~2 GiB).
DEFAULT_DISK_BYTES = 2 << 30
#: Monotonic counters every namespace tracks (deltas are meaningful, so
#: the sweep runner brackets them per task exactly like cache counters).
COUNTER_KEYS = (
    "memory_hits",
    "disk_hits",
    "misses",
    "memory_evictions",
    "disk_evictions",
    "corrupt_evictions",
)

#: Namespace of served job artifacts — validated ``repro.sweep/1``
#: dictionaries the service layer stores under the job's content
#: fingerprint (see :func:`repro.experiments.runner.job_fingerprint`),
#: wrapped via :func:`encode_json_payload` so repeat submissions of the
#: same job resolve without recomputing anything.
JOB_NAMESPACE = "job"

#: Namespace of the durable service job table — one JSON row per
#: submitted job plus one index entry (see
#: :mod:`repro.service.jobtable`), written through the same atomic
#: temp-file + checksum path as every other entry so a job row is either
#: fully the old version or fully the new one after any crash.
JOBTABLE_NAMESPACE = "jobtable"

#: File suffix of on-disk entries.
_ENTRY_SUFFIX = ".cas"
#: Prefix of in-flight temp files (same directory as their entry).
_TMP_PREFIX = ".tmp-"
#: Payload field carrying the entry's own (namespace, key) identity.
_ENTRY_KEY = "__store_entry__"

_DIGEST_BYTES = 16
_HEADER_BYTES = len(MAGIC) + 2 * _DIGEST_BYTES
_NAMESPACE_RE = re.compile(r"^[a-z0-9_-]+$")


def content_key(namespace: str, key: str) -> str:
    """Stable 32-hex address of one ``(namespace, key)`` pair.

    Keys are arbitrary strings (fingerprints, composite ``name@digest``
    forms); hashing them keeps every on-disk filename fixed-width and
    path-safe regardless of what callers embed in the key.
    """
    digest = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    digest.update(namespace.encode())
    digest.update(b"\x00")
    digest.update(key.encode())
    return digest.hexdigest()


def _entry_identity(namespace: str, key: str) -> str:
    return f"{namespace}\x00{key}"


def encode_payload(namespace: str, key: str, payload: dict) -> bytes:
    """Serialize a payload into the checksummed on-disk entry format.

    Layout: ``MAGIC`` (8 bytes) + blake2b-16 hex digest of the body (32
    ASCII bytes) + the body (an uncompressed ``.npz`` archive of the
    payload arrays plus the entry's own identity).  The digest covers the
    *entire* body, so any bit flip or truncation is detected before numpy
    ever parses the archive.
    """
    arrays = {name: np.asarray(value) for name, value in payload.items()}
    arrays[_ENTRY_KEY] = np.asarray(_entry_identity(namespace, key))
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    body = buffer.getvalue()
    digest = hashlib.blake2b(body, digest_size=_DIGEST_BYTES)
    return MAGIC + digest.hexdigest().encode("ascii") + body


def decode_payload(blob: bytes, namespace: str | None = None, key: str | None = None) -> dict:
    """Parse and integrity-check one on-disk entry; raises :class:`StoreError`.

    Verifies, in order: the magic header, the payload digest, archive
    readability, and — when ``namespace``/``key`` are given — that the
    entry actually belongs to the requested address (a guard against
    renamed or cross-linked entry files).  Any failure raises
    :class:`~repro.exceptions.StoreError`; callers evict and recompute.
    """
    if len(blob) < _HEADER_BYTES or blob[: len(MAGIC)] != MAGIC:
        raise StoreError("store entry is truncated or has a bad header")
    stored = blob[len(MAGIC) : _HEADER_BYTES]
    body = blob[_HEADER_BYTES:]
    actual = hashlib.blake2b(body, digest_size=_DIGEST_BYTES).hexdigest()
    if actual.encode("ascii") != stored:
        raise StoreError("store entry failed its integrity checksum")
    try:
        with np.load(io.BytesIO(body), allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
    except Exception as error:  # any unreadable archive is corruption
        raise StoreError(f"store entry payload is unreadable: {error}") from error
    identity = str(payload.pop(_ENTRY_KEY, ""))
    if namespace is not None and identity != _entry_identity(namespace, key):
        raise StoreError("store entry belongs to a different namespace/key")
    return payload


def encode_json_payload(value) -> dict:
    """Wrap a JSON-serializable value as a store payload.

    The store's native payloads are dicts of numpy arrays; JSON documents
    (job artifacts) ride along as one uint8 byte array of their canonical
    serialization, gaining the same checksum/atomic-write/eviction
    machinery as every other entry.
    """
    data = json.dumps(value, sort_keys=True).encode("utf-8")
    return {"json": np.frombuffer(data, dtype=np.uint8).copy()}


def decode_json_payload(payload: dict):
    """Invert :func:`encode_json_payload`; raises :class:`StoreError`."""
    array = payload.get("json")
    if array is None:
        raise StoreError("store payload carries no JSON document")
    try:
        return json.loads(bytes(np.asarray(array, dtype=np.uint8)).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise StoreError(f"store JSON payload is unreadable: {error}") from error


def _payload_nbytes(payload: dict) -> int:
    return int(sum(np.asarray(value).nbytes for value in payload.values()))


class ContentStore:
    """Two-tier (memory LRU + shared disk) content-addressed store.

    Parameters
    ----------
    root:
        Directory of the shared on-disk tier; ``None`` (default) runs
        memory-only.  Created on attach if needed.
    max_memory_bytes:
        Byte budget of the in-memory LRU tier; least-recently-used
        entries are evicted first, and an entry larger than the whole
        budget is simply not kept resident.
    max_disk_bytes:
        Byte budget of the on-disk tier, enforced under an exclusive
        file lock after writes (oldest-``mtime`` entries evicted first;
        reads bump ``mtime``, so this approximates cross-process LRU).
    """

    def __init__(
        self,
        root=None,
        max_memory_bytes: int = DEFAULT_MEMORY_BYTES,
        max_disk_bytes: int = DEFAULT_DISK_BYTES,
    ):
        self.max_memory_bytes = 0
        self.max_disk_bytes = 0
        self.enabled = True
        self._root: pathlib.Path | None = None
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._bytes = 0
        self._counters: dict[str, dict] = {}
        self.configure(
            max_memory_bytes=max_memory_bytes, max_disk_bytes=max_disk_bytes
        )
        if root is not None:
            self.attach(root)

    # -- configuration -----------------------------------------------------

    @property
    def root(self) -> pathlib.Path | None:
        """Directory of the on-disk tier, or ``None`` when memory-only."""
        return self._root

    def attach(self, root, max_disk_bytes: int | None = None) -> None:
        """Attach (and create if needed) the shared on-disk tier."""
        path = pathlib.Path(root)
        path.mkdir(parents=True, exist_ok=True)
        self._root = path
        if max_disk_bytes is not None:
            self.configure(max_disk_bytes=max_disk_bytes)

    def detach(self) -> None:
        """Drop the on-disk tier (files stay on disk; memory tier stays)."""
        self._root = None

    def configure(
        self,
        max_memory_bytes: int | None = None,
        max_disk_bytes: int | None = None,
        enabled: bool | None = None,
    ) -> None:
        """Adjust byte budgets and/or switch the store off entirely."""
        if max_memory_bytes is not None:
            if max_memory_bytes < 0:
                raise StoreError(
                    f"max_bytes must be >= 0, got {max_memory_bytes}"
                )
            self.max_memory_bytes = int(max_memory_bytes)
            self._shrink_memory()
        if max_disk_bytes is not None:
            if max_disk_bytes < 0:
                raise StoreError(f"max_bytes must be >= 0, got {max_disk_bytes}")
            self.max_disk_bytes = int(max_disk_bytes)
        if enabled is not None:
            self.enabled = bool(enabled)

    # -- counters ----------------------------------------------------------

    def _count(self, namespace: str, counter: str, amount: int = 1) -> None:
        bucket = self._counters.setdefault(
            namespace, {key: 0 for key in COUNTER_KEYS}
        )
        bucket[counter] += amount

    def counters(self) -> dict:
        """Flat monotonic counter totals across every namespace.

        Deltas of this dict are meaningful across any code region — the
        sweep runner brackets them per task (inside the executing worker
        process) exactly like the spectral-cache counters.
        """
        totals = {key: 0 for key in COUNTER_KEYS}
        for bucket in self._counters.values():
            for key in COUNTER_KEYS:
                totals[key] += bucket[key]
        return totals

    def namespace_stats(self, namespace: str) -> dict:
        """Counters plus memory-tier occupancy of one namespace."""
        bucket = self._counters.get(namespace, {key: 0 for key in COUNTER_KEYS})
        stats = dict(bucket)
        entries = 0
        nbytes = 0
        for (ns, _), (_, size) in self._entries.items():
            if ns == namespace:
                entries += 1
                nbytes += size
        stats["entries"] = entries
        stats["bytes"] = nbytes
        return stats

    def stats(self) -> dict:
        """Full snapshot: budgets, per-namespace counters, tier occupancy."""
        return {
            "root": None if self._root is None else str(self._root),
            "enabled": self.enabled,
            "max_memory_bytes": self.max_memory_bytes,
            "max_disk_bytes": self.max_disk_bytes,
            "memory": {"entries": len(self._entries), "bytes": self._bytes},
            "namespaces": {
                namespace: dict(bucket)
                for namespace, bucket in sorted(self._counters.items())
            },
            "totals": self.counters(),
        }

    def clear_memory(self, reset_stats: bool = True) -> None:
        """Drop the memory tier (and by default zero every counter).

        Disk entries survive — this is exactly what a fresh worker
        process looks like, which is how the warm-store tests simulate
        cross-process traffic without forking.
        """
        self._entries.clear()
        self._bytes = 0
        if reset_stats:
            self._counters = {}

    # -- memory tier -------------------------------------------------------

    def _shrink_memory(self) -> None:
        while self._bytes > self.max_memory_bytes and self._entries:
            (namespace, _), (_, nbytes) = self._entries.popitem(last=False)
            self._bytes -= nbytes
            self._count(namespace, "memory_evictions")

    def _memory_insert(self, namespace: str, key: str, payload: dict) -> None:
        nbytes = _payload_nbytes(payload)
        if nbytes > self.max_memory_bytes:
            return
        previous = self._entries.pop((namespace, key), None)
        if previous is not None:
            self._bytes -= previous[1]
        self._entries[(namespace, key)] = (payload, nbytes)
        self._bytes += nbytes
        self._shrink_memory()

    # -- disk tier ---------------------------------------------------------

    def _entry_path(self, namespace: str, key: str) -> pathlib.Path:
        if not _NAMESPACE_RE.match(namespace):
            raise StoreError(
                f"namespace must match {_NAMESPACE_RE.pattern}, got {namespace!r}"
            )
        name = content_key(namespace, key)
        return self._root / namespace / name[:2] / f"{name}{_ENTRY_SUFFIX}"

    @contextmanager
    def _locked(self):
        """Exclusive cross-process lock for eviction/gc sweeps."""
        if self._root is None or fcntl is None:
            yield
            return
        lock_path = self._root / ".lock"
        with open(lock_path, "w", encoding="utf-8") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _scan_disk(self) -> list:
        """Every on-disk entry as ``(path, size, mtime)`` (stale files skipped)."""
        entries = []
        if self._root is None:
            return entries
        for namespace_dir in sorted(self._root.iterdir()):
            if not namespace_dir.is_dir():
                continue
            for bucket in sorted(namespace_dir.iterdir()):
                if not bucket.is_dir():
                    continue
                for path in sorted(bucket.iterdir()):
                    if path.suffix != _ENTRY_SUFFIX:
                        continue
                    try:
                        status = path.stat()
                    except OSError:
                        continue
                    entries.append((path, status.st_size, status.st_mtime))
        return entries

    def _evict_corrupt(self, path: pathlib.Path, namespace: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self._count(namespace, "corrupt_evictions")

    def _disk_get(self, namespace: str, key: str) -> dict | None:
        if self._root is None:
            return None
        path = self._entry_path(namespace, key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            payload = decode_payload(blob, namespace, key)
        except StoreError:
            # Corrupt/truncated/misaddressed: evict so the recomputed
            # value can be re-published, and never serve the bad bits.
            self._evict_corrupt(path, namespace)
            return None
        try:
            os.utime(path)  # bump mtime: approximate cross-process LRU
        except OSError:
            pass
        return payload

    def _disk_put(self, namespace: str, key: str, payload: dict) -> None:
        if self._root is None:
            return
        blob = encode_payload(namespace, key, payload)
        if len(blob) > self.max_disk_bytes:
            return
        path = self._entry_path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(prefix=_TMP_PREFIX, dir=path.parent)
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._enforce_disk_budget()

    def _enforce_disk_budget(self, max_bytes: int | None = None) -> int:
        """Evict oldest entries until the disk tier fits its budget."""
        if self._root is None:
            return 0
        budget = self.max_disk_bytes if max_bytes is None else int(max_bytes)
        total = sum(size for _, size, _ in self._scan_disk())
        if total <= budget:
            return 0
        evicted = 0
        with self._locked():
            entries = self._scan_disk()  # rescan under the lock
            total = sum(size for _, size, _ in entries)
            entries.sort(key=lambda entry: entry[2])
            for path, size, _ in entries:
                if total <= budget:
                    break
                try:
                    path.unlink()
                    self._count(path.parent.parent.name, "disk_evictions")
                    evicted += 1
                except OSError:
                    pass
                total -= size
        return evicted

    # -- the public entry API ----------------------------------------------

    def get(self, namespace: str, key: str, memory: bool = False) -> dict | None:
        """Look ``(namespace, key)`` up; ``None`` on a (counted) miss.

        ``memory=True`` also consults/populates the memory LRU tier —
        the spectral path; stage/shard checkpoints stay disk-only.
        """
        if not self.enabled:
            return None
        if memory:
            cached = self._entries.get((namespace, key))
            if cached is not None:
                self._entries.move_to_end((namespace, key))
                self._count(namespace, "memory_hits")
                return cached[0]
        payload = self._disk_get(namespace, key)
        if payload is not None:
            self._count(namespace, "disk_hits")
            if memory:
                for array in payload.values():
                    array.setflags(write=False)
                self._memory_insert(namespace, key, payload)
            return payload
        self._count(namespace, "misses")
        return None

    def put(self, namespace: str, key: str, payload: dict, memory: bool = False) -> None:
        """Publish a payload (atomic disk write; optional memory residence)."""
        if not self.enabled:
            return
        payload = {name: np.asarray(value) for name, value in payload.items()}
        if memory:
            for array in payload.values():
                array.setflags(write=False)
            self._memory_insert(namespace, key, payload)
        self._disk_put(namespace, key, payload)

    def get_or_create(self, namespace: str, key: str, builder, memory: bool = True):
        """Serve ``(namespace, key)`` from memory, then disk, else build it.

        On a miss the built payload is frozen read-only, kept resident
        (``memory=True``) and published to the disk tier; hit or miss,
        the arrays returned are bit-identical.  A disabled store calls
        ``builder`` directly and stores/counts nothing.
        """
        if not self.enabled:
            return builder()
        if memory:
            cached = self._entries.get((namespace, key))
            if cached is not None:
                self._entries.move_to_end((namespace, key))
                self._count(namespace, "memory_hits")
                return cached[0]
        payload = self._disk_get(namespace, key)
        if payload is not None:
            self._count(namespace, "disk_hits")
            for array in payload.values():
                array.setflags(write=False)
            if memory:
                self._memory_insert(namespace, key, payload)
            return payload
        self._count(namespace, "misses")
        payload = {name: np.asarray(value) for name, value in builder().items()}
        for array in payload.values():
            array.setflags(write=False)
        if memory:
            self._memory_insert(namespace, key, payload)
        self._disk_put(namespace, key, payload)
        return payload

    # -- operations (the `repro store` subcommand) -------------------------

    def disk_report(self) -> dict:
        """Entry counts and byte totals of the on-disk tier, per namespace."""
        report = {"entries": 0, "bytes": 0, "namespaces": {}}
        for path, size, _ in self._scan_disk():
            namespace = path.parent.parent.name
            bucket = report["namespaces"].setdefault(
                namespace, {"entries": 0, "bytes": 0}
            )
            bucket["entries"] += 1
            bucket["bytes"] += size
            report["entries"] += 1
            report["bytes"] += size
        return report

    def verify(self) -> dict:
        """Integrity-check every on-disk entry without modifying anything."""
        report = {"checked": 0, "ok": 0, "corrupt": []}
        for path, _, _ in self._scan_disk():
            report["checked"] += 1
            try:
                decode_payload(path.read_bytes())
            except (StoreError, OSError):
                report["corrupt"].append(str(path))
            else:
                report["ok"] += 1
        return report

    def gc(self, max_bytes: int | None = None, tmp_grace_seconds: float = 60.0) -> dict:
        """Heal and shrink the disk tier.

        Removes corrupt entries, reaps stale temp files left by crashed
        writers (older than ``tmp_grace_seconds``, so a live writer's
        in-flight file survives), then enforces the byte budget
        (``max_bytes`` overrides the configured ``max_disk_bytes``).
        """
        report = {"corrupt_removed": 0, "temp_removed": 0, "evicted": 0}
        if self._root is None:
            return report
        with self._locked():
            cutoff = time.time() - tmp_grace_seconds
            for namespace_dir in sorted(self._root.iterdir()):
                if not namespace_dir.is_dir():
                    continue
                for bucket in sorted(namespace_dir.iterdir()):
                    if not bucket.is_dir():
                        continue
                    for path in sorted(bucket.iterdir()):
                        if path.name.startswith(_TMP_PREFIX):
                            try:
                                if path.stat().st_mtime <= cutoff:
                                    path.unlink()
                                    report["temp_removed"] += 1
                            except OSError:
                                pass
            for path, _, _ in self._scan_disk():
                try:
                    decode_payload(path.read_bytes())
                except (StoreError, OSError):
                    self._evict_corrupt(path, path.parent.parent.name)
                    report["corrupt_removed"] += 1
        report["evicted"] = self._enforce_disk_budget(max_bytes)
        usage = self.disk_report()
        report["entries"] = usage["entries"]
        report["bytes"] = usage["bytes"]
        return report


# -- the process-wide store ------------------------------------------------

_UNSET = object()

#: The process-wide store every consumer shares: ``SPECTRAL_CACHE`` is a
#: view over it, and the pipeline/sharding checkpoint paths resolve
#: through it once a disk root is attached (``QSCConfig.store_dir``).
GLOBAL_STORE = ContentStore()


def get_store() -> ContentStore:
    """The process-wide :data:`GLOBAL_STORE`."""
    return GLOBAL_STORE


def active_store() -> ContentStore | None:
    """The global store when it is enabled *and* has a disk root attached.

    The pipeline and sharding checkpoint paths only consult the store in
    that state — a memory-only store adds nothing over the per-run
    directories they already handle.
    """
    store = GLOBAL_STORE
    if store.enabled and store.root is not None:
        return store
    return None


def configure_store(
    root=_UNSET,
    max_memory_bytes: int | None = None,
    max_disk_bytes: int | None = None,
    enabled: bool | None = None,
) -> ContentStore:
    """Configure the process-wide store; returns it.

    ``root`` attaches the shared on-disk tier (``None`` detaches it);
    omit it to leave the current attachment alone.  Worker processes call
    this from ``QSCPipeline.run`` whenever a config carries
    ``store_dir``, so the store propagates under any multiprocessing
    start method.
    """
    store = GLOBAL_STORE
    if root is not _UNSET:
        if root is None:
            store.detach()
        else:
            store.attach(root)
    store.configure(
        max_memory_bytes=max_memory_bytes,
        max_disk_bytes=max_disk_bytes,
        enabled=enabled,
    )
    return store


def store_counters() -> dict:
    """Flat monotonic counters of the global store (for delta bracketing)."""
    return GLOBAL_STORE.counters()


def store_stats() -> dict:
    """Full stats snapshot of the global store."""
    return GLOBAL_STORE.stats()
