"""Shared content-addressed compute store (memory LRU + on-disk tier).

See :mod:`repro.store.content_store` for the design; the public surface
is re-exported here:

* :class:`ContentStore` — the two-tier store itself;
* :func:`get_store` / :func:`active_store` / :func:`configure_store` —
  the process-wide instance the spectral cache and checkpoint paths
  share (``QSCConfig.store_dir`` / ``--store-dir`` configure it);
* :func:`store_counters` / :func:`store_stats` — counter snapshots (the
  sweep runner brackets :func:`store_counters` deltas per task).
"""

from repro.store.content_store import (
    COUNTER_KEYS,
    DEFAULT_DISK_BYTES,
    DEFAULT_MEMORY_BYTES,
    JOB_NAMESPACE,
    JOBTABLE_NAMESPACE,
    ContentStore,
    active_store,
    configure_store,
    content_key,
    decode_json_payload,
    decode_payload,
    encode_json_payload,
    encode_payload,
    get_store,
    store_counters,
    store_stats,
)

__all__ = [
    "COUNTER_KEYS",
    "DEFAULT_DISK_BYTES",
    "DEFAULT_MEMORY_BYTES",
    "JOB_NAMESPACE",
    "JOBTABLE_NAMESPACE",
    "ContentStore",
    "active_store",
    "configure_store",
    "content_key",
    "decode_json_payload",
    "decode_payload",
    "encode_json_payload",
    "encode_payload",
    "get_store",
    "store_counters",
    "store_stats",
]
