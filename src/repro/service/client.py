"""Blocking JSON-line client for the job service (stdlib sockets only).

The client the tests, the docs snippets and the CI smoke driver share.
Each call opens one fresh connection — the protocol is stateless per
request, so there is no connection lifecycle to manage and a killed
server never wedges a client between calls.

>>> client = ServiceClient("127.0.0.1", 8831)        # doctest: +SKIP
>>> job = client.submit({"experiment": "fig1", "trials": 1})
>>> transcript = client.events(job["job"])           # blocks to terminal
>>> artifact = client.artifact(job["job"])
"""

from __future__ import annotations

import socket

from repro.exceptions import ServiceError
from repro.service.protocol import decode_line, encode_line


class ServiceClient:
    """Talk to a :class:`~repro.service.server.JobServer` synchronously.

    Parameters
    ----------
    host / port:
        Where the server listens (the ``repro serve`` readiness line).
    timeout:
        Per-socket-operation timeout in seconds.  For :meth:`events` it
        bounds the silence *between* events, not the whole stream.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    def _connect(self):
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _call(self, message: dict) -> dict:
        """One request/one reply; raises :class:`ServiceError` on ok=false."""
        with self._connect() as sock, sock.makefile("rwb") as stream:
            stream.write(encode_line(message))
            stream.flush()
            raw = stream.readline()
        if not raw:
            raise ServiceError("server closed the connection without replying")
        reply = decode_line(raw)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "unspecified server error"))
        return reply

    def ping(self) -> bool:
        """True when the server answers."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def submit(self, job: dict) -> dict:
        """Submit a job object; returns its status (``job`` is the id)."""
        return self._call({"op": "submit", "spec": job})

    def status(self, job_id: str) -> dict:
        """Current status of one job."""
        return self._call({"op": "status", "job": job_id})

    def jobs(self) -> list[dict]:
        """Statuses of every job, in submission order."""
        return self._call({"op": "jobs"})["jobs"]

    def artifact(self, job_id: str) -> dict:
        """The finished ``repro.sweep/1`` artifact; raises if not done."""
        return self._call({"op": "artifact", "job": job_id})["artifact"]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns the (possibly updated) status."""
        return self._call({"op": "cancel", "job": job_id})

    def events(self, job_id: str) -> list[dict]:
        """The job's full event transcript; blocks until it terminates.

        Replays every event emitted so far, then streams live ones; the
        server ends the stream with a ``done`` marker once the job is
        terminal, so calling this on a finished job returns immediately.
        """
        transcript: list[dict] = []
        with self._connect() as sock, sock.makefile("rwb") as stream:
            stream.write(encode_line({"op": "events", "job": job_id}))
            stream.flush()
            while True:
                raw = stream.readline()
                if not raw:
                    raise ServiceError("event stream ended without a done marker")
                message = decode_line(raw)
                if "event" in message:
                    transcript.append(message)
                    continue
                if not message.get("ok"):
                    raise ServiceError(
                        message.get("error", "unspecified server error")
                    )
                if message.get("done"):
                    return transcript

    def wait(self, job_id: str) -> dict:
        """Block until the job terminates; returns its final status."""
        self.events(job_id)
        return self.status(job_id)
