"""Blocking JSON-line client for the job service (stdlib sockets only).

The client the tests, the docs snippets and the CI smoke driver share.
Each call opens one fresh connection — the protocol is stateless per
request, so there is no connection lifecycle to manage and a killed
server never wedges a client between calls.

Failures arrive as the typed hierarchy of :mod:`repro.service.errors`:
the server's ``code`` field picks the exception class, so callers catch
:class:`~repro.service.errors.RejectedError` (and read its
``retry_after``) or :class:`~repro.service.errors.UnknownJobError`
instead of matching message strings.

>>> client = ServiceClient("127.0.0.1", 8831, token="s3cret")  # doctest: +SKIP
>>> job = client.submit({"experiment": "fig1", "trials": 1})
>>> transcript = client.events(job["job"])           # blocks to terminal
>>> artifact = client.artifact(job["job"])
"""

from __future__ import annotations

import socket

from repro.exceptions import ServiceError
from repro.service import websocket
from repro.service.errors import error_from_payload
from repro.service.protocol import decode_line, encode_line


class ServiceClient:
    """Talk to a :class:`~repro.service.server.JobServer` synchronously.

    Parameters
    ----------
    host / port:
        Where the server listens (the ``repro serve`` readiness line).
    timeout:
        Per-socket-operation timeout in seconds.  For :meth:`events` it
        bounds the silence *between* events, not the whole stream.
    token:
        Bearer token sent with every request; required when the server
        runs with ``--auth-token-file``, ignored by an open server.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 120.0,
        token: str | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.token = token

    def _connect(self):
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _message(self, op: str, **fields) -> dict:
        message = {"op": op, **fields}
        if self.token is not None:
            message["token"] = self.token
        return message

    def _call(self, message: dict) -> dict:
        """One request/one reply; raises the typed error on ok=false."""
        with self._connect() as sock, sock.makefile("rwb") as stream:
            stream.write(encode_line(message))
            stream.flush()
            raw = stream.readline()
        if not raw:
            raise ServiceError("server closed the connection without replying")
        reply = decode_line(raw)
        if not reply.get("ok"):
            raise error_from_payload(reply)
        return reply

    def ping(self) -> bool:
        """True when the server answers."""
        return bool(self._call(self._message("ping")).get("pong"))

    def hello(self) -> dict:
        """Server identity: protocol/API versions, job counts, counters."""
        reply = self._call(self._message("hello"))
        reply.pop("ok", None)
        return reply

    def submit(self, job: dict) -> dict:
        """Submit a job object; returns its status (``job`` is the id)."""
        return self._call(self._message("submit", spec=job))

    def status(self, job_id: str) -> dict:
        """Current status of one job."""
        return self._call(self._message("status", job=job_id))

    def jobs(self) -> list[dict]:
        """Statuses of every job this token can see, in submission order."""
        return self._call(self._message("jobs"))["jobs"]

    def artifact(self, job_id: str) -> dict:
        """The finished ``repro.sweep/1`` artifact; raises if not done."""
        return self._call(self._message("artifact", job=job_id))["artifact"]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation (idempotent); returns the status.

        The reply's ``cancelled`` field reports whether this call
        changed anything — ``False`` means the job was already terminal.
        """
        return self._call(self._message("cancel", job=job_id))

    def events(self, job_id: str) -> list[dict]:
        """The job's full event transcript; blocks until it terminates.

        Replays every event emitted so far, then streams live ones; the
        server ends the stream with a ``done`` marker once the job is
        terminal, so calling this on a finished job returns immediately.
        """
        transcript: list[dict] = []
        with self._connect() as sock, sock.makefile("rwb") as stream:
            stream.write(encode_line(self._message("events", job=job_id)))
            stream.flush()
            while True:
                raw = stream.readline()
                if not raw:
                    raise ServiceError("event stream ended without a done marker")
                message = decode_line(raw)
                if "event" in message:
                    transcript.append(message)
                    continue
                if not message.get("ok"):
                    raise error_from_payload(message)
                if message.get("done"):
                    return transcript

    def events_ws(self, job_id: str) -> list[dict]:
        """The same transcript as :meth:`events`, over a WebSocket upgrade.

        Performs the RFC 6455 client handshake against
        ``GET /v1/jobs/<id>/events`` and reads one JSON event per text
        frame until the ``done`` marker (the server follows it with a
        close frame).
        """
        path = f"/v1/jobs/{job_id}/events"
        key = websocket.make_client_key()
        transcript: list[dict] = []
        with self._connect() as sock, sock.makefile("rwb") as stream:
            stream.write(
                websocket.client_handshake_request(
                    path, f"{self.host}:{self.port}", key, token=self.token
                )
            )
            stream.flush()
            websocket.check_handshake_response(stream, key)
            for payload in websocket.read_messages(stream):
                message = decode_line(payload)
                if "event" in message:
                    transcript.append(message)
                    continue
                if not message.get("ok"):
                    raise error_from_payload(message)
                if message.get("done"):
                    return transcript
        raise ServiceError("websocket stream ended without a done marker")

    def wait(self, job_id: str) -> dict:
        """Block until the job terminates; returns its final status."""
        self.events(job_id)
        return self.status(job_id)
