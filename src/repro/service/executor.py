"""Job execution: the supervised worker entry point and artifact storage.

A job is one :class:`~repro.pipeline.supervisor.ShardTask` whose function
is :func:`execute_job` — a module-level, picklable entry point so the
default :class:`~repro.pipeline.supervisor.ProcessShardExecutor` can run
it in a dedicated worker process (spawned non-daemonic, so a job whose
sweep shards its readout stage can fork shard workers of its own).

Crash-resume falls out of the PR 5–7 substrate rather than being built
here: the worker configures the server's shared content store before
running, every completed readout shard checkpoints into that store the
moment it succeeds, and stage outputs are checkpointed likewise — so a
killed worker's restart (or a resubmission of the same job) recomputes
only the shards that never finished.  Finished jobs additionally publish
their whole validated artifact under the store's ``job`` namespace keyed
by the job's content fingerprint, letting repeat submissions skip
execution entirely.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ARTIFACT_SCHEMA,
    SweepRunner,
    job_fingerprint,
    spec_from_job,
    stamp_provenance,
    validate_artifact,
)
from repro.service.routes import PROTOCOL_VERSION
from repro.store import (
    JOB_NAMESPACE,
    ContentStore,
    configure_store,
    decode_json_payload,
    encode_json_payload,
)


def execute_job(payload: dict) -> dict:
    """Run one job to completion; returns its validated artifact dict.

    ``payload`` is ``{"job": <normalized job object>, "store_dir": ...}``.
    Module-level and picklable — this is the function the per-job
    supervisor hands to its executor, inline or worker-process alike.
    """
    job = payload["job"]
    store_dir = payload.get("store_dir")
    if store_dir is not None:
        # The worker inherits the server's shared store so stage/shard
        # checkpoints land where the next attempt (or resubmission) of
        # this job will look for them.
        configure_store(root=store_dir)
    spec = spec_from_job(job, store_dir=store_dir)
    # Parallelism comes from readout shards and from concurrent jobs —
    # never from a nested process pool inside the worker.
    result = SweepRunner(spec, jobs=1).run()
    # Provenance is additive and scalar-only; deliberately no tenant —
    # artifacts are content-addressed and shared across tenants, so a
    # store-served resubmission must not leak who computed it first.
    return stamp_provenance(
        result.to_artifact(),
        fingerprint=job_fingerprint(job),
        experiment=job["experiment"],
        protocol_version=PROTOCOL_VERSION,
        served=True,
    )


def job_store_key(fingerprint: str) -> str:
    """Store key of a job's published artifact (schema-versioned)."""
    return f"{ARTIFACT_SCHEMA}:{fingerprint}"


def publish_artifact(store: ContentStore, fingerprint: str, artifact: dict) -> None:
    """Persist a finished job's artifact under the ``job`` namespace."""
    store.put(JOB_NAMESPACE, job_store_key(fingerprint), encode_json_payload(artifact))


def load_artifact(store: ContentStore, fingerprint: str) -> dict | None:
    """A previously published artifact for this fingerprint, or ``None``.

    Anything unusable — missing entry, corrupt payload, schema drift —
    returns ``None`` so the caller falls back to computing; a store can
    never make a job fail.
    """
    payload = store.get(JOB_NAMESPACE, job_store_key(fingerprint))
    if payload is None:
        return None
    try:
        return validate_artifact(decode_json_payload(payload))
    except Exception:  # noqa: BLE001 — any damage (StoreError, schema) → recompute
        return None
