"""The versioned service surface, declared as data.

``API_VERSION`` prefixes every HTTP path (``/v1/...``); legacy
unversioned paths answer ``301 Moved Permanently`` for one release.
``PROTOCOL_VERSION`` is the JSON-line protocol's integer version,
carried in every ``ping``/``hello`` reply so clients can refuse a
server they do not understand.

The tables below are the single source of truth for the wire surface:
the server routes against them, ``docs/api.md`` embeds the markdown
:func:`render_api_reference` produces (checked generated, see
``tools/lint_api_surface.py``), and the tests assert the two never
drift.  Adding a route means editing exactly one tuple here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.errors import ERROR_CODES

#: HTTP surface version; every route lives under this path prefix.
API_VERSION = "v1"

#: JSON-line protocol version, echoed by ``ping`` and ``hello``.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Route:
    """One HTTP route: method, versioned path, meaning, status surface."""

    method: str
    path: str
    description: str
    statuses: tuple[int, ...]


#: Every HTTP route the server answers (paths already ``/v1``-prefixed).
ROUTES = (
    Route("POST", "/v1/jobs", "submit a job object", (202, 400, 401, 429)),
    Route("GET", "/v1/jobs", "list this tenant's job statuses", (200, 401)),
    Route("GET", "/v1/jobs/<id>", "one job's status", (200, 401, 404)),
    Route(
        "DELETE",
        "/v1/jobs/<id>",
        "cancel (idempotent; `cancelled` reports whether this call changed "
        "anything)",
        (200, 401, 404),
    ),
    Route(
        "GET",
        "/v1/jobs/<id>/artifact",
        "the finished artifact (409 until the job completes)",
        (200, 401, 404, 409),
    ),
    Route(
        "GET",
        "/v1/jobs/<id>/events",
        "replay + live event stream; ndjson, or WebSocket when the request "
        "carries an RFC 6455 upgrade",
        (101, 200, 401, 404),
    ),
    Route(
        "GET",
        "/v1/stats",
        "server identity, job-state counts and load-shed counters",
        (200,),
    ),
)

#: JSON-line ops, mirroring the routes one to one (plus liveness).
OPS = (
    ("ping", "liveness; replies `pong` + `protocol_version`"),
    ("hello", "server identity, job-state counts and load-shed counters"),
    ("submit", "submit a job object (`job` field)"),
    ("status", "one job's status (`job` field)"),
    ("jobs", "list this tenant's job statuses"),
    ("artifact", "the finished artifact"),
    ("cancel", "cancel, idempotent (`cancelled` reports the transition)"),
    ("events", "stream the transcript, then live events, then a done marker"),
)

#: Legacy unversioned path roots that 301-redirect to ``/v1``.
LEGACY_ROOTS = ("jobs",)


def versioned(path: str) -> str:
    """Prefix one route path with the current API version."""
    return f"/{API_VERSION}{path}"


def render_api_reference() -> str:
    """The generated section of ``docs/api.md`` (markdown).

    Regenerated and diffed by ``tools/lint_api_surface.py`` and pinned
    by the test suite, so the published reference cannot drift from the
    tables the server actually routes against.
    """
    lines = [
        f"Protocol version: **{PROTOCOL_VERSION}** · "
        f"HTTP surface: **/{API_VERSION}**. "
        "Legacy unversioned paths answer `301 Moved Permanently` with the "
        "`/v1` location for one release.",
        "",
        "### HTTP routes",
        "",
        "| Method | Path | Meaning | Statuses |",
        "|---|---|---|---|",
    ]
    for route in ROUTES:
        statuses = ", ".join(str(s) for s in route.statuses)
        lines.append(
            f"| {route.method} | `{route.path}` | {route.description} "
            f"| {statuses} |"
        )
    lines += [
        "",
        "### JSON-line ops",
        "",
        "| Op | Meaning |",
        "|---|---|",
    ]
    for op, description in OPS:
        lines.append(f"| `{op}` | {description} |")
    lines += [
        "",
        "### Error codes",
        "",
        "| Code | HTTP status | Retryable |",
        "|---|---|---|",
    ]
    for code in sorted(ERROR_CODES):
        cls = ERROR_CODES[code]
        retryable = "yes" if cls.retryable else "no"
        lines.append(f"| `{code}` | {cls.http_status} | {retryable} |")
    return "\n".join(lines) + "\n"
