"""Wire formats of the clustering-as-a-service job server.

One listening socket speaks two protocols, distinguished by the first
line of each connection:

* **JSON-line** — every message is one JSON object per ``\\n``-terminated
  line.  Requests carry an ``op`` field (``ping``, ``hello``, ``submit``,
  ``status``, ``jobs``, ``artifact``, ``cancel``, ``events``) and, on an
  authenticated server, a ``token`` field; responses carry ``ok: true``
  plus op-specific fields, or ``ok: false`` with an ``error`` string plus
  the typed ``code`` / ``retryable`` fields of
  :mod:`repro.service.errors`.  ``ping`` and ``hello`` echo the protocol
  version (:data:`repro.service.routes.PROTOCOL_VERSION`).  The
  ``events`` op streams one event object per line (recognizable by its
  ``event`` field) followed by a terminal ``{"ok": true, "done": true,
  ...}`` line.
* **HTTP/1.1 subset** — a first line that does not start with ``{`` is
  parsed as an HTTP request line.  Routes live under ``/v1`` (legacy
  unversioned paths 301-redirect there); bearer tokens travel in the
  ``Authorization`` header; the event stream is newline-delimited JSON
  with ``Connection: close`` framing, or WebSocket frames when the
  request carries an RFC 6455 upgrade (:mod:`repro.service.websocket`).

Everything here is framing only — no job semantics.  Both sides are
stdlib-only by design (``json`` + sockets), so any client that can open
a TCP connection can drive the service.
"""

from __future__ import annotations

import json

from repro.service.errors import ProtocolError

#: Maximum bytes of one protocol line (guards ``readline`` buffering).
MAX_LINE_BYTES = 1 << 20

_HTTP_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    202: "Accepted",
    301: "Moved Permanently",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def encode_line(message: dict) -> bytes:
    """Serialize one protocol message as a JSON line."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> dict:
    """Parse one protocol line into a message object.

    Raises :class:`~repro.service.errors.ProtocolError` on anything that
    is not a single JSON object — the server answers those with an
    ``ok: false`` reply instead of dying.
    """
    try:
        message = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed protocol line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol line must be a JSON object, got {type(message).__name__}"
        )
    return message


def http_response(
    status: int, payload: dict, headers: dict | None = None
) -> bytes:
    """One complete HTTP response with a JSON body.

    ``headers`` adds extra response headers (``Location`` on the legacy
    301 redirects, ``Retry-After`` on load-shed 429s).
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def http_stream_head(status: int = 200) -> bytes:
    """Header block of a streamed newline-delimited JSON response.

    No ``Content-Length`` — the stream ends when the server closes the
    connection (``Connection: close`` framing), which happens when the
    job reaches a terminal state.
    """
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii")
