"""Wire formats of the clustering-as-a-service job server.

One listening socket speaks two protocols, distinguished by the first
line of each connection:

* **JSON-line** — every message is one JSON object per ``\\n``-terminated
  line.  Requests carry an ``op`` field (``ping``, ``submit``, ``status``,
  ``jobs``, ``artifact``, ``cancel``, ``events``); responses carry
  ``ok: true`` plus op-specific fields, or ``ok: false`` with an
  ``error`` string.  The ``events`` op streams one event object per line
  (recognizable by its ``event`` field) followed by a terminal
  ``{"ok": true, "done": true, ...}`` line.
* **HTTP/1.1 subset** — a first line that does not start with ``{`` is
  parsed as an HTTP request line.  Bodies are JSON; the event stream is
  newline-delimited JSON with ``Connection: close`` framing (the response
  ends when the job reaches a terminal state and the server closes).

Everything here is framing only — no job semantics.  Both sides are
stdlib-only by design (``json`` + sockets), so any client that can open
a TCP connection can drive the service.
"""

from __future__ import annotations

import json

from repro.exceptions import ServiceError

#: Maximum bytes of one protocol line (guards ``readline`` buffering).
MAX_LINE_BYTES = 1 << 20

_HTTP_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


def encode_line(message: dict) -> bytes:
    """Serialize one protocol message as a JSON line."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> dict:
    """Parse one protocol line into a message object.

    Raises :class:`~repro.exceptions.ServiceError` on anything that is
    not a single JSON object — the server answers those with an
    ``ok: false`` reply instead of dying.
    """
    try:
        message = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ServiceError(f"malformed protocol line: {error}") from error
    if not isinstance(message, dict):
        raise ServiceError(
            f"protocol line must be a JSON object, got {type(message).__name__}"
        )
    return message


def http_response(status: int, payload: dict) -> bytes:
    """One complete HTTP response with a JSON body."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def http_stream_head(status: int = 200) -> bytes:
    """Header block of a streamed newline-delimited JSON response.

    No ``Content-Length`` — the stream ends when the server closes the
    connection (``Connection: close`` framing), which happens when the
    job reaches a terminal state.
    """
    head = (
        f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii")
