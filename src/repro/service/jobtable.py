"""Durable job table: the service's restart contract, on the store.

Every submitted job writes one JSON row into the ``jobtable`` namespace
of the shared content store, re-written on every state transition, plus
a single ``index`` entry recording submission order and the next job
number.  Rows ride the store's PR 7 crash contract — atomic temp-file
replace, checksummed payloads, corrupt entries evicted on read — so a
``kill -9`` at any instant leaves every row either fully old or fully
new, never torn.

Rows hold job *state* (spec, tenant, lifecycle, transcript); finished
artifacts are not duplicated here — they already live under the ``job``
namespace keyed by fingerprint, where :meth:`JobTable.load` leaves them
for the manager to re-resolve lazily after a restart.

A server started without ``--store-dir`` has no table and no durability,
exactly the PR 8 in-memory behaviour.
"""

from __future__ import annotations

from repro.store import (
    JOBTABLE_NAMESPACE,
    ContentStore,
    decode_json_payload,
    encode_json_payload,
)

#: Fields persisted per job (the artifact lives in the ``job`` namespace).
ROW_FIELDS = (
    "id",
    "tenant",
    "spec",
    "fingerprint",
    "state",
    "attempts",
    "error",
    "events",
)

_INDEX_KEY = "index"


def _row_key(job_id: str) -> str:
    return f"row:{job_id}"


class JobTable:
    """Checkpoint and recover the manager's job rows (see module doc)."""

    def __init__(self, store: ContentStore):
        self._store = store

    # -- writes (called from the manager on every transition) --------------

    def save_row(self, row: dict) -> None:
        """Atomically persist one job's current row."""
        missing = [field for field in ROW_FIELDS if field not in row]
        if missing:
            raise ValueError(f"job row is missing fields: {missing}")
        payload = {field: row[field] for field in ROW_FIELDS}
        self._store.put(
            JOBTABLE_NAMESPACE, _row_key(row["id"]), encode_json_payload(payload)
        )

    def save_index(self, ids: list[str], next_id: int) -> None:
        """Persist submission order and the next job counter value."""
        self._store.put(
            JOBTABLE_NAMESPACE,
            _INDEX_KEY,
            encode_json_payload({"ids": list(ids), "next": int(next_id)}),
        )

    # -- reads (called once, at server boot) --------------------------------

    def load_row(self, job_id: str) -> dict | None:
        """One persisted row, or ``None`` if missing or unreadable."""
        payload = self._store.get(JOBTABLE_NAMESPACE, _row_key(job_id))
        if payload is None:
            return None
        try:
            row = decode_json_payload(payload)
        except Exception:  # noqa: BLE001 — damaged row → skip, never crash boot
            return None
        if not isinstance(row, dict) or any(f not in row for f in ROW_FIELDS):
            return None
        return row

    def load(self) -> tuple[list[dict], int]:
        """Every recoverable row in submission order, plus the next id.

        Rows the index names but the store cannot produce (lost or
        corrupt — the store already evicted them) are silently skipped;
        recovery is best-effort by design.
        """
        payload = self._store.get(JOBTABLE_NAMESPACE, _INDEX_KEY)
        if payload is None:
            return [], 1
        try:
            index = decode_json_payload(payload)
        except Exception:  # noqa: BLE001 — corrupt index → empty table
            return [], 1
        ids = index.get("ids") or []
        next_id = max(int(index.get("next") or 1), 1)
        rows = []
        for job_id in ids:
            row = self.load_row(str(job_id))
            if row is not None:
                rows.append(row)
        return rows, next_id
