"""The job manager: one supervising parent actor per submitted job.

The manager is the single owner of all job state.  It lives on the
server's event loop and is only ever touched from that loop — connection
handlers call it directly, and the per-job worker threads marshal their
callbacks back with ``loop.call_soon_threadsafe`` — so there is no lock
anywhere in the job bookkeeping (the message-passing actor shape the
ROADMAP's service item asks for).

Per job, the manager runs one :class:`~repro.pipeline.supervisor.ShardSupervisor`
in a worker thread (``asyncio.to_thread``), supervising a single
:class:`~repro.pipeline.supervisor.ShardTask` that executes the job.
That reuses the whole PR 6 supervision contract for free: per-job
timeout, crashed-child restart with capped backoff, and kill-based
cancellation through the supervisor's ``cancel`` event.  Job concurrency
is bounded by a semaphore (the ``--workers`` CLI flag).

Three service-hardening layers sit on top of that core:

* **Durability** — with a store attached, every state transition
  re-writes the job's row in the durable job table
  (:mod:`repro.service.jobtable`); :meth:`JobManager.recover` replays
  the table at boot, re-fingerprints non-terminal jobs and re-queues
  them, so a killed server's restart finishes its in-flight work from
  the shard checkpoints already in the store.
* **Admission control** — ``max_queued`` bounds total queue depth and
  ``max_jobs_per_tenant`` bounds one tenant's in-flight jobs; both shed
  with a retryable :class:`~repro.service.errors.RejectedError` (HTTP
  429 + ``Retry-After``) and count into :attr:`JobManager.counters`.
* **Tenancy** — every record carries the tenant that submitted it, and
  every lookup is tenant-scoped when the caller passes one: a foreign
  job id answers :class:`~repro.service.errors.UnknownJobError` (404),
  indistinguishable from a job that never existed.

Completed artifacts are published to the shared content store under the
job's content fingerprint; a resubmission of the same job resolves from
the store without running anything (its transcript shows
``artifact.source == "store"``).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field

from repro.exceptions import ReproError, ServiceError
from repro.experiments.runner import job_fingerprint, normalize_job
from repro.pipeline.supervisor import (
    ProcessShardExecutor,
    ShardSupervisor,
    ShardTask,
    SupervisorCancelled,
)
from repro.service import executor as job_executor
from repro.service.auth import DEFAULT_TENANT
from repro.service.errors import (
    ArtifactNotReadyError,
    RejectedError,
    UnknownJobError,
    as_service_error,
)
from repro.service.events import build_event, stage_event_rows
from repro.service.jobtable import JobTable
from repro.store import ContentStore

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")

#: States from which a job never moves again.
TERMINAL_JOB_STATES = ("completed", "failed", "cancelled")

#: Load-shed / recovery counters the stats surface reports.
SHED_COUNTER_KEYS = (
    "rejected_queue_full",
    "rejected_tenant_quota",
    "unauthorized",
    "recovered",
)


@dataclass
class JobRecord:
    """Everything the manager knows about one submitted job."""

    id: str
    spec: dict
    fingerprint: str
    tenant: str = DEFAULT_TENANT
    state: str = "queued"
    attempts: int = 0
    error: str | None = None
    artifact: dict | None = None
    events: list = field(default_factory=list)

    def status(self) -> dict:
        """The client-facing status object (no artifact body)."""
        return {
            "job": self.id,
            "experiment": self.spec["experiment"],
            "tenant": self.tenant,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "events": len(self.events),
            "error": self.error,
            "artifact_ready": self.artifact is not None
            or self.state == "completed",
        }

    def row(self) -> dict:
        """The durable form of this record (artifact stored separately)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "events": self.events,
        }


class JobManager:
    """Owns every job's lifecycle; loop-confined (see module docstring)."""

    def __init__(
        self,
        *,
        store_dir=None,
        workers: int = 2,
        job_timeout: float | None = None,
        job_retries: int = 1,
        executor_factory=None,
        max_queued: int | None = None,
        max_jobs_per_tenant: int | None = None,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_queued is not None and max_queued < 1:
            raise ServiceError(f"max_queued must be >= 1, got {max_queued}")
        if max_jobs_per_tenant is not None and max_jobs_per_tenant < 1:
            raise ServiceError(
                f"max_jobs_per_tenant must be >= 1, got {max_jobs_per_tenant}"
            )
        self.store_dir = None if store_dir is None else str(store_dir)
        self.job_timeout = job_timeout
        self.job_retries = job_retries
        self.max_queued = max_queued
        self.max_jobs_per_tenant = max_jobs_per_tenant
        # Non-daemonic workers by default: a job running a sharded sweep
        # must be able to fork shard worker processes of its own.
        self._executor_factory = executor_factory or (
            lambda: ProcessShardExecutor(daemon=False)
        )
        # The manager's own handle on the shared store (job namespace).
        # Deliberately not the process-global store — the server process
        # never mutates the global configuration its tests control.
        self._store = (
            None if self.store_dir is None else ContentStore(root=self.store_dir)
        )
        self._table = None if self._store is None else JobTable(self._store)
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._cancels: dict[str, threading.Event] = {}
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._tasks: set[asyncio.Task] = set()
        self._semaphore = asyncio.Semaphore(workers)
        self._next_id = 1
        self.counters = {key: 0 for key in SHED_COUNTER_KEYS}

    # -- client-facing operations (called from connection handlers) -------

    def submit(self, job: dict, tenant: str = DEFAULT_TENANT) -> JobRecord:
        """Validate, admit and enqueue one job; returns its (queued) record.

        Raises :class:`~repro.service.errors.InvalidJobError` on
        malformed jobs and :class:`~repro.service.errors.RejectedError`
        when admission control sheds the submission — nothing is created
        in either case.
        """
        try:
            spec = normalize_job(job)
        except ReproError as error:
            raise as_service_error(error) from error
        self._admit(tenant)
        fingerprint = job_fingerprint(spec)
        record = JobRecord(
            id=f"j{self._next_id:04d}-{fingerprint[:8]}",
            spec=spec,
            fingerprint=fingerprint,
            tenant=tenant,
        )
        self._next_id += 1
        self._register(record)
        self._emit(
            record,
            "submitted",
            experiment=spec["experiment"],
            trials=spec["trials"],
            fingerprint=fingerprint,
            tenant=tenant,
        )
        self._persist_index()
        self._spawn(record)
        return record

    def _admit(self, tenant: str) -> None:
        """Shed the submission if a queue or tenant bound is at capacity."""
        if self.max_queued is not None:
            queued = sum(
                1 for record in self._jobs.values() if record.state == "queued"
            )
            if queued >= self.max_queued:
                self.counters["rejected_queue_full"] += 1
                raise RejectedError(
                    f"job queue is full ({queued} queued, max {self.max_queued})"
                )
        if self.max_jobs_per_tenant is not None:
            active = sum(
                1
                for record in self._jobs.values()
                if record.tenant == tenant
                and record.state in ("queued", "running")
            )
            if active >= self.max_jobs_per_tenant:
                self.counters["rejected_tenant_quota"] += 1
                raise RejectedError(
                    f"tenant {tenant!r} already has {active} jobs in flight "
                    f"(max {self.max_jobs_per_tenant})"
                )

    def get(self, job_id: str, tenant: str | None = None) -> JobRecord:
        """The record of ``job_id``, scoped to ``tenant`` when given.

        A job owned by another tenant raises the same
        :class:`~repro.service.errors.UnknownJobError` as a job that
        never existed — ids are not enumerable across tenants.
        """
        record = self._jobs.get(job_id)
        if record is None or (tenant is not None and record.tenant != tenant):
            raise UnknownJobError(f"unknown job {job_id!r}")
        return record

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        """Records in submission order, scoped to ``tenant`` when given."""
        records = [self._jobs[job_id] for job_id in self._order]
        if tenant is None:
            return records
        return [record for record in records if record.tenant == tenant]

    def artifact(self, job_id: str, tenant: str | None = None) -> dict:
        """A completed job's artifact; raises if the job is not done.

        A completed job recovered from the durable table holds no
        artifact in memory — it is re-resolved (and cached back) from
        the store's ``job`` namespace on first request.
        """
        record = self.get(job_id, tenant)
        if (
            record.artifact is None
            and record.state == "completed"
            and self._store is not None
        ):
            record.artifact = job_executor.load_artifact(
                self._store, record.fingerprint
            )
        if record.artifact is None:
            raise ArtifactNotReadyError(
                f"job {job_id} has no artifact (state: {record.state})"
            )
        return record.artifact

    def cancel(
        self, job_id: str, tenant: str | None = None
    ) -> tuple[JobRecord, bool]:
        """Request cancellation; returns ``(record, changed)``.

        Idempotent: cancelling a terminal job (including an already
        cancelled one) changes nothing and reports ``changed=False`` —
        both wire surfaces answer 200 either way.  A queued job cancels
        immediately.  A running job's supervisor observes the cancel
        event between sweeps, kills the in-flight worker and raises —
        best-effort, so a job whose worker finishes first still
        completes.
        """
        record = self.get(job_id, tenant)
        if record.state in TERMINAL_JOB_STATES:
            return record, False
        self._cancels[job_id].set()
        if record.state == "queued":
            self._settle(record, "cancelled")
        return record, True

    def subscribe(self, job_id: str, tenant: str | None = None):
        """Transcript so far, plus a live queue (``None`` if terminal).

        The queue yields event dicts and then a ``None`` sentinel once
        the job reaches a terminal state.  Replay and registration happen
        atomically on the loop, so no event is ever missed or duplicated.
        """
        record = self.get(job_id, tenant)
        replay = list(record.events)
        if record.state in TERMINAL_JOB_STATES:
            return replay, None
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers[job_id].append(queue)
        return replay, queue

    def unsubscribe(self, job_id: str, queue) -> None:
        """Drop a live subscription (client disconnected mid-stream)."""
        listeners = self._subscribers.get(job_id)
        if listeners is not None and queue in listeners:
            listeners.remove(queue)

    def stats(self) -> dict:
        """Job-state counts plus the load-shed/recovery counters."""
        states = {state: 0 for state in JOB_STATES}
        for record in self._jobs.values():
            states[record.state] += 1
        return {
            "jobs": states,
            "load_shed": dict(self.counters),
            "durable": self._table is not None,
        }

    async def close(self) -> None:
        """Cancel every live job and wait for their actors to finish."""
        for job_id, record in self._jobs.items():
            if record.state not in TERMINAL_JOB_STATES:
                self.cancel(job_id)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # -- durable recovery (called once, at server boot) ---------------------

    def recover(self) -> int:
        """Re-queue every non-terminal job the durable table holds.

        Terminal rows come back as-is (artifacts re-resolve lazily from
        the store).  Non-terminal rows are re-validated and
        re-fingerprinted — a row whose spec no longer reproduces its
        recorded fingerprint settles as ``failed`` instead of silently
        computing something else — then re-queued with a ``recovered``
        event and a fresh run task, which resumes from whatever stage
        and shard checkpoints the previous life already published.
        Returns the number of jobs re-queued.
        """
        if self._table is None:
            return 0
        rows, next_id = self._table.load()
        self._next_id = max(self._next_id, next_id)
        resumed = 0
        for row in rows:
            if row["id"] in self._jobs:
                continue
            record = JobRecord(
                id=str(row["id"]),
                spec=row["spec"],
                fingerprint=str(row["fingerprint"]),
                tenant=str(row["tenant"]),
                state=str(row["state"]),
                attempts=int(row["attempts"]),
                error=row["error"],
                events=list(row["events"]),
            )
            self._register(record)
            if record.state in TERMINAL_JOB_STATES:
                continue
            previous_state = record.state
            try:
                spec = normalize_job(record.spec)
                fingerprint = job_fingerprint(spec)
            except ReproError as error:
                record.error = f"unrecoverable job: {error}"
                self._settle(record, "failed", error=record.error)
                continue
            if fingerprint != record.fingerprint:
                record.error = (
                    "unrecoverable job: fingerprint drifted across restart"
                )
                self._settle(record, "failed", error=record.error)
                continue
            record.spec = spec
            record.state = "queued"
            self.counters["recovered"] += 1
            resumed += 1
            self._emit(record, "recovered", previous_state=previous_state)
            self._spawn(record)
        self._persist_index()
        return resumed

    def _register(self, record: JobRecord) -> None:
        self._jobs[record.id] = record
        self._order.append(record.id)
        self._cancels[record.id] = threading.Event()
        self._subscribers[record.id] = []

    def _spawn(self, record: JobRecord) -> None:
        task = asyncio.get_running_loop().create_task(self._run_job(record))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _persist(self, record: JobRecord) -> None:
        """Re-write one job's durable row (no-op without a store)."""
        if self._table is not None:
            self._table.save_row(record.row())

    def _persist_index(self) -> None:
        if self._table is not None:
            self._table.save_index(self._order, self._next_id)

    # -- the per-job actor -------------------------------------------------

    async def _run_job(self, record: JobRecord) -> None:
        async with self._semaphore:
            if record.state != "queued":  # cancelled while waiting its turn
                return
            record.state = "running"
            self._emit(record, "started")
            try:
                artifact = await self._resolve_from_store(record)
                if artifact is not None:
                    record.artifact = artifact
                    self._emit(
                        record,
                        "artifact",
                        source="store",
                        records=len(artifact["records"]),
                    )
                    self._settle(record, "completed")
                    return
                artifact = await self._supervise(record)
                record.artifact = artifact
                for row in stage_event_rows(artifact.get("profile")):
                    self._emit(record, "stage", **row)
                self._emit(
                    record,
                    "artifact",
                    source="computed",
                    records=len(artifact["records"]),
                )
                await self._publish(record, artifact)
            except SupervisorCancelled:
                self._settle(record, "cancelled")
                return
            except Exception as error:  # noqa: BLE001 — the actor must
                # settle the job whatever went wrong; an unsettled job
                # would hang every subscriber forever.
                record.error = str(error)
                self._settle(record, "failed", error=record.error)
                return
            self._settle(record, "completed", attempts=record.attempts)

    async def _supervise(self, record: JobRecord) -> dict:
        """Run the job under a fresh supervisor in a worker thread."""
        loop = asyncio.get_running_loop()

        def on_attempt(index: int, attempt: int) -> None:
            # Fires on the supervisor thread; marshal back to the loop.
            loop.call_soon_threadsafe(self._note_attempt, record, attempt)

        supervisor = ShardSupervisor(
            self._executor_factory(),
            timeout=self.job_timeout,
            retries=self.job_retries,
            backoff_base=0.01,
            on_failure="raise",
        )
        task = ShardTask(
            index=0,
            fn=job_executor.execute_job,
            args=({"job": record.spec, "store_dir": self.store_dir},),
        )
        outcomes = await asyncio.to_thread(
            supervisor.run,
            [task],
            on_attempt=on_attempt,
            cancel=self._cancels[record.id],
        )
        return outcomes[0].value

    def _note_attempt(self, record: JobRecord, attempt: int) -> None:
        if record.state in TERMINAL_JOB_STATES:
            return
        record.attempts = attempt
        self._emit(record, "attempt", attempt=attempt, restarted=attempt > 1)

    async def _resolve_from_store(self, record: JobRecord) -> dict | None:
        if self._store is None:
            return None
        return await asyncio.to_thread(
            job_executor.load_artifact, self._store, record.fingerprint
        )

    async def _publish(self, record: JobRecord, artifact: dict) -> None:
        if self._store is None:
            return
        await asyncio.to_thread(
            job_executor.publish_artifact, self._store, record.fingerprint, artifact
        )

    # -- event plumbing (loop-confined) ------------------------------------

    def _emit(self, record: JobRecord, kind: str, **payload) -> None:
        event = build_event(kind, record.id, len(record.events), **payload)
        record.events.append(event)
        self._persist(record)
        for queue in self._subscribers.get(record.id, ()):
            queue.put_nowait(event)

    def _settle(self, record: JobRecord, state: str, **payload) -> None:
        """Move a job to a terminal state and close its subscriptions."""
        record.state = state
        self._emit(record, state, **payload)
        for queue in self._subscribers.pop(record.id, ()):
            queue.put_nowait(None)
        self._subscribers[record.id] = []
