"""The job manager: one supervising parent actor per submitted job.

The manager is the single owner of all job state.  It lives on the
server's event loop and is only ever touched from that loop — connection
handlers call it directly, and the per-job worker threads marshal their
callbacks back with ``loop.call_soon_threadsafe`` — so there is no lock
anywhere in the job bookkeeping (the message-passing actor shape the
ROADMAP's service item asks for).

Per job, the manager runs one :class:`~repro.pipeline.supervisor.ShardSupervisor`
in a worker thread (``asyncio.to_thread``), supervising a single
:class:`~repro.pipeline.supervisor.ShardTask` that executes the job.
That reuses the whole PR 6 supervision contract for free: per-job
timeout, crashed-child restart with capped backoff, and kill-based
cancellation through the supervisor's ``cancel`` event.  Job concurrency
is bounded by a semaphore (the ``--workers`` CLI flag).

Completed artifacts are published to the shared content store under the
job's content fingerprint; a resubmission of the same job resolves from
the store without running anything (its transcript shows
``artifact.source == "store"``).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass, field

from repro.exceptions import ServiceError
from repro.experiments.runner import job_fingerprint, normalize_job
from repro.pipeline.supervisor import (
    ProcessShardExecutor,
    ShardSupervisor,
    ShardTask,
    SupervisorCancelled,
)
from repro.service import executor as job_executor
from repro.service.events import build_event, stage_event_rows
from repro.store import ContentStore

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")

#: States from which a job never moves again.
TERMINAL_JOB_STATES = ("completed", "failed", "cancelled")


@dataclass
class JobRecord:
    """Everything the manager knows about one submitted job."""

    id: str
    spec: dict
    fingerprint: str
    state: str = "queued"
    attempts: int = 0
    error: str | None = None
    artifact: dict | None = None
    events: list = field(default_factory=list)

    def status(self) -> dict:
        """The client-facing status object (no artifact body)."""
        return {
            "job": self.id,
            "experiment": self.spec["experiment"],
            "state": self.state,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "events": len(self.events),
            "error": self.error,
            "artifact_ready": self.artifact is not None,
        }


class JobManager:
    """Owns every job's lifecycle; loop-confined (see module docstring)."""

    def __init__(
        self,
        *,
        store_dir=None,
        workers: int = 2,
        job_timeout: float | None = None,
        job_retries: int = 1,
        executor_factory=None,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.store_dir = None if store_dir is None else str(store_dir)
        self.job_timeout = job_timeout
        self.job_retries = job_retries
        # Non-daemonic workers by default: a job running a sharded sweep
        # must be able to fork shard worker processes of its own.
        self._executor_factory = executor_factory or (
            lambda: ProcessShardExecutor(daemon=False)
        )
        # The manager's own handle on the shared store (job namespace).
        # Deliberately not the process-global store — the server process
        # never mutates the global configuration its tests control.
        self._store = (
            None if self.store_dir is None else ContentStore(root=self.store_dir)
        )
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._cancels: dict[str, threading.Event] = {}
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._tasks: set[asyncio.Task] = set()
        self._semaphore = asyncio.Semaphore(workers)
        self._ids = itertools.count(1)

    # -- client-facing operations (called from connection handlers) -------

    def submit(self, job: dict) -> JobRecord:
        """Validate and enqueue one job; returns its (queued) record.

        Raises :class:`~repro.exceptions.ExperimentError` on malformed
        jobs — nothing is created in that case.
        """
        spec = normalize_job(job)
        fingerprint = job_fingerprint(spec)
        record = JobRecord(
            id=f"j{next(self._ids):04d}-{fingerprint[:8]}",
            spec=spec,
            fingerprint=fingerprint,
        )
        self._jobs[record.id] = record
        self._order.append(record.id)
        self._cancels[record.id] = threading.Event()
        self._subscribers[record.id] = []
        self._emit(
            record,
            "submitted",
            experiment=spec["experiment"],
            trials=spec["trials"],
            fingerprint=fingerprint,
        )
        task = asyncio.get_running_loop().create_task(self._run_job(record))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return record

    def get(self, job_id: str) -> JobRecord:
        """The record of ``job_id``; raises :class:`ServiceError` if unknown."""
        record = self._jobs.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return record

    def jobs(self) -> list[JobRecord]:
        """All records in submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def artifact(self, job_id: str) -> dict:
        """A completed job's artifact; raises if the job is not done."""
        record = self.get(job_id)
        if record.artifact is None:
            raise ServiceError(
                f"job {job_id} has no artifact (state: {record.state})"
            )
        return record.artifact

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; terminal jobs are returned unchanged.

        A queued job cancels immediately.  A running job's supervisor
        observes the cancel event between sweeps, kills the in-flight
        worker and raises — best-effort, so a job whose worker finishes
        first still completes.
        """
        record = self.get(job_id)
        if record.state in TERMINAL_JOB_STATES:
            return record
        self._cancels[job_id].set()
        if record.state == "queued":
            self._settle(record, "cancelled")
        return record

    def subscribe(self, job_id: str):
        """Transcript so far, plus a live queue (``None`` if terminal).

        The queue yields event dicts and then a ``None`` sentinel once
        the job reaches a terminal state.  Replay and registration happen
        atomically on the loop, so no event is ever missed or duplicated.
        """
        record = self.get(job_id)
        replay = list(record.events)
        if record.state in TERMINAL_JOB_STATES:
            return replay, None
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers[job_id].append(queue)
        return replay, queue

    def unsubscribe(self, job_id: str, queue) -> None:
        """Drop a live subscription (client disconnected mid-stream)."""
        listeners = self._subscribers.get(job_id)
        if listeners is not None and queue in listeners:
            listeners.remove(queue)

    async def close(self) -> None:
        """Cancel every live job and wait for their actors to finish."""
        for job_id, record in self._jobs.items():
            if record.state not in TERMINAL_JOB_STATES:
                self.cancel(job_id)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # -- the per-job actor -------------------------------------------------

    async def _run_job(self, record: JobRecord) -> None:
        async with self._semaphore:
            if record.state != "queued":  # cancelled while waiting its turn
                return
            record.state = "running"
            self._emit(record, "started")
            try:
                artifact = await self._resolve_from_store(record)
                if artifact is not None:
                    record.artifact = artifact
                    self._emit(
                        record,
                        "artifact",
                        source="store",
                        records=len(artifact["records"]),
                    )
                    self._settle(record, "completed")
                    return
                artifact = await self._supervise(record)
                record.artifact = artifact
                for row in stage_event_rows(artifact.get("profile")):
                    self._emit(record, "stage", **row)
                self._emit(
                    record,
                    "artifact",
                    source="computed",
                    records=len(artifact["records"]),
                )
                await self._publish(record, artifact)
            except SupervisorCancelled:
                self._settle(record, "cancelled")
                return
            except Exception as error:  # noqa: BLE001 — the actor must
                # settle the job whatever went wrong; an unsettled job
                # would hang every subscriber forever.
                record.error = str(error)
                self._settle(record, "failed", error=record.error)
                return
            self._settle(record, "completed", attempts=record.attempts)

    async def _supervise(self, record: JobRecord) -> dict:
        """Run the job under a fresh supervisor in a worker thread."""
        loop = asyncio.get_running_loop()

        def on_attempt(index: int, attempt: int) -> None:
            # Fires on the supervisor thread; marshal back to the loop.
            loop.call_soon_threadsafe(self._note_attempt, record, attempt)

        supervisor = ShardSupervisor(
            self._executor_factory(),
            timeout=self.job_timeout,
            retries=self.job_retries,
            backoff_base=0.01,
            on_failure="raise",
        )
        task = ShardTask(
            index=0,
            fn=job_executor.execute_job,
            args=({"job": record.spec, "store_dir": self.store_dir},),
        )
        outcomes = await asyncio.to_thread(
            supervisor.run,
            [task],
            on_attempt=on_attempt,
            cancel=self._cancels[record.id],
        )
        return outcomes[0].value

    def _note_attempt(self, record: JobRecord, attempt: int) -> None:
        if record.state in TERMINAL_JOB_STATES:
            return
        record.attempts = attempt
        self._emit(record, "attempt", attempt=attempt, restarted=attempt > 1)

    async def _resolve_from_store(self, record: JobRecord) -> dict | None:
        if self._store is None:
            return None
        return await asyncio.to_thread(
            job_executor.load_artifact, self._store, record.fingerprint
        )

    async def _publish(self, record: JobRecord, artifact: dict) -> None:
        if self._store is None:
            return
        await asyncio.to_thread(
            job_executor.publish_artifact, self._store, record.fingerprint, artifact
        )

    # -- event plumbing (loop-confined) ------------------------------------

    def _emit(self, record: JobRecord, kind: str, **payload) -> None:
        event = build_event(kind, record.id, len(record.events), **payload)
        record.events.append(event)
        for queue in self._subscribers.get(record.id, ()):
            queue.put_nowait(event)

    def _settle(self, record: JobRecord, state: str, **payload) -> None:
        """Move a job to a terminal state and close its subscriptions."""
        record.state = state
        self._emit(record, state, **payload)
        for queue in self._subscribers.pop(record.id, ()):
            queue.put_nowait(None)
        self._subscribers[record.id] = []
