"""Minimal RFC 6455 WebSocket support for the event stream (stdlib-only).

``GET /v1/jobs/<id>/events`` with an ``Upgrade: websocket`` header gets
the same replay+live event stream as the ndjson route, one JSON event
per text frame, closed with a normal-closure frame after the ``done``
marker.  This module is framing only — the opening HTTP request is
parsed by the server's existing header loop, and job semantics stay in
the shared streaming core.

Server side: :func:`wants_upgrade`, :func:`handshake_response`,
:func:`encode_text_frame`, :func:`close_frame` (server→client frames are
never masked, per the RFC).  Client side (used by
:meth:`~repro.service.client.ServiceClient.events_ws` and the tests):
:func:`client_handshake_request`, :func:`check_handshake_response`,
:func:`read_messages` (tolerates both masked and unmasked frames).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import struct

from repro.service.errors import ProtocolError, error_from_payload

#: The fixed GUID every WebSocket handshake concatenates (RFC 6455 §4.2.2).
_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Frame opcodes this stream uses.
OP_TEXT = 0x1
OP_CLOSE = 0x8

#: Normal-closure status code.
CLOSE_NORMAL = 1000


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value proving the handshake."""
    digest = hashlib.sha1((key + _GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def wants_upgrade(headers: dict) -> bool:
    """Whether parsed (lower-cased) request headers ask for WebSocket."""
    upgrade = headers.get("upgrade", "").lower()
    connection = headers.get("connection", "").lower()
    return upgrade == "websocket" and "upgrade" in connection


def handshake_response(key: str) -> bytes:
    """The 101 Switching Protocols response completing the handshake."""
    if not key:
        raise ProtocolError("websocket upgrade is missing Sec-WebSocket-Key")
    head = (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    )
    return head.encode("ascii")


def _encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One finished frame; 7/16/64-bit length encoding per the RFC."""
    head = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def encode_text_frame(payload: bytes | str, mask: bool = False) -> bytes:
    """One text frame (server frames unmasked, client frames masked)."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return _encode_frame(OP_TEXT, payload, mask=mask)


def close_frame(code: int = CLOSE_NORMAL, mask: bool = False) -> bytes:
    """A close frame carrying a status code."""
    return _encode_frame(OP_CLOSE, struct.pack("!H", code), mask=mask)


# -- client side (tests + ServiceClient.events_ws) --------------------------


def client_handshake_request(
    path: str, host: str, key: str, token: str | None = None
) -> bytes:
    """The opening GET request of a client-initiated upgrade."""
    lines = [
        f"GET {path} HTTP/1.1",
        f"Host: {host}",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Key: {key}",
        "Sec-WebSocket-Version: 13",
    ]
    if token:
        lines.append(f"Authorization: Bearer {token}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def make_client_key() -> str:
    """A fresh 16-byte base64 nonce for ``Sec-WebSocket-Key``."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


def _read_headers(stream) -> dict:
    headers = {}
    while True:
        line = stream.readline()
        if not line or line in (b"\r\n", b"\n"):
            return headers
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()


def check_handshake_response(stream, key: str) -> None:
    """Read and verify the server's 101 response from a binary stream.

    A refusal (non-101) is re-raised as the *typed* service error its
    JSON body carries — an unknown job surfaces as
    :class:`~repro.service.errors.UnknownJobError`, a missing token as
    :class:`~repro.service.errors.AuthError` — exactly like the ndjson
    route.  Bodies that are not an error payload fall back to a
    :class:`ProtocolError` preserving the status line.
    """
    status = stream.readline().decode("latin-1").strip()
    if "101" not in status.split(" ")[1:2]:
        _read_headers(stream)
        try:
            payload = json.loads(stream.read())  # Connection: close → EOF
        except ValueError:
            payload = None
        if isinstance(payload, dict) and "error" in payload:
            raise error_from_payload(payload)
        raise ProtocolError(f"websocket upgrade refused: {status!r}")
    if _read_headers(stream).get("sec-websocket-accept") != accept_key(key):
        raise ProtocolError("websocket handshake returned a wrong accept key")


def read_frame(stream) -> tuple[int, bytes] | None:
    """One ``(opcode, payload)`` frame off a binary stream; ``None`` at EOF."""
    head = stream.read(2)
    if len(head) < 2:
        return None
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = struct.unpack("!H", stream.read(2))[0]
    elif length == 127:
        length = struct.unpack("!Q", stream.read(8))[0]
    key = stream.read(4) if masked else b""
    payload = stream.read(length) if length else b""
    if len(payload) < length:
        return None
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def read_messages(stream):
    """Yield text payloads until a close frame or EOF."""
    while True:
        frame = read_frame(stream)
        if frame is None:
            return
        opcode, payload = frame
        if opcode == OP_CLOSE:
            return
        if opcode == OP_TEXT:
            yield payload
