"""In-process server harness: a :class:`JobServer` on a background thread.

The deterministic fixture the service tests, the docs snippets and the
benchmarks share.  The server's event loop runs on a dedicated thread;
the calling thread talks to it over real sockets with the blocking
:class:`~repro.service.client.ServiceClient` — the same wire path a
remote client exercises, minus process-boot latency and without needing
an async test framework.

>>> with ServerThread(store_dir=tmp) as server:      # doctest: +SKIP
...     job = server.client().submit({"experiment": "fig1", "trials": 1})
...     transcript = server.client().events(job["job"])
"""

from __future__ import annotations

import asyncio
import threading

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import JobServer


class ServerThread:
    """Run a job server on an ephemeral port in a background thread.

    Keyword arguments are forwarded to :class:`JobServer` (``store_dir``,
    ``workers``, ``job_timeout``, ``job_retries``, ``executor_factory``,
    ``max_queued``, ``max_jobs_per_tenant``, ``auth_token_file``);
    the port always starts ephemeral unless explicitly pinned.  Use as a
    context manager, or call :meth:`start` / :meth:`stop` directly.
    """

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        self._kwargs = kwargs
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self.server: JobServer | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        """Boot the loop thread; returns once the socket is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("in-process job server failed to start in time")
        if self._error is not None:
            raise ServiceError(f"in-process job server died: {self._error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced via start()
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self.server = JobServer(**self._kwargs)
        self.host, self.port = await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._ready.set()
        await self._shutdown.wait()
        await self.server.stop()

    def client(
        self, timeout: float = 120.0, token: str | None = None
    ) -> ServiceClient:
        """A fresh blocking client pointed at this server."""
        if self.port is None:
            raise ServiceError("server is not running")
        return ServiceClient(self.host, self.port, timeout=timeout, token=token)

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
