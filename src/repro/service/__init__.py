"""Clustering-as-a-service: the async job server over the staged pipeline.

The ROADMAP's service front end, built on everything PRs 5–7 laid down:

* one **event loop** (:class:`~repro.service.server.JobServer`) owns
  every connection and all job bookkeeping — connection handlers and
  worker callbacks are messages into the loop, never shared state;
* one **supervising parent actor per job**
  (:class:`~repro.service.manager.JobManager`) runs each submission
  under a :class:`~repro.pipeline.supervisor.ShardSupervisor` in a
  worker thread: per-job timeout, crashed-worker restart with backoff,
  kill-based cancellation;
* the **content store** makes jobs restartable and repeatable — shard
  and stage checkpoints land in the shared store as they complete,
  finished artifacts are published under the job's content fingerprint
  so identical resubmissions are served without recomputing, and the
  durable **job table** (:mod:`repro.service.jobtable`) lets a rebooted
  server re-queue whatever a kill left unfinished;
* **admission control and tenancy** bound the damage of overload: queue
  depth and per-tenant in-flight caps shed with retryable 429s
  (:mod:`repro.service.errors`), and bearer tokens
  (:mod:`repro.service.auth`) scope every job to the tenant its token
  proves;
* progress streams as **events** built from the pipeline's telemetry
  profile (per-stage seconds plus ``shards_loaded`` /
  ``shards_computed`` counters), over JSON lines, ndjson or an RFC 6455
  WebSocket upgrade (:mod:`repro.service.websocket`).

Wire protocols live in :mod:`repro.service.protocol`; the versioned
route/op tables (and the generated ``docs/api.md``) in
:mod:`repro.service.routes`; ``repro serve`` is the CLI entry point.
"""

from repro.service.auth import DEFAULT_TENANT, TokenAuthenticator
from repro.service.client import ServiceClient
from repro.service.errors import (
    ArtifactNotReadyError,
    AuthError,
    InvalidJobError,
    ProtocolError,
    RejectedError,
    UnknownJobError,
)
from repro.service.events import EVENT_TYPES, TERMINAL_STATES, build_event
from repro.service.executor import execute_job, job_store_key
from repro.service.harness import ServerThread
from repro.service.jobtable import JobTable
from repro.service.manager import JOB_STATES, JobManager, JobRecord
from repro.service.routes import API_VERSION, PROTOCOL_VERSION
from repro.service.server import JobServer, serve

__all__ = [
    "API_VERSION",
    "ArtifactNotReadyError",
    "AuthError",
    "DEFAULT_TENANT",
    "EVENT_TYPES",
    "InvalidJobError",
    "JOB_STATES",
    "JobManager",
    "JobRecord",
    "JobServer",
    "JobTable",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RejectedError",
    "ServerThread",
    "ServiceClient",
    "TERMINAL_STATES",
    "TokenAuthenticator",
    "UnknownJobError",
    "build_event",
    "execute_job",
    "job_store_key",
    "serve",
]
