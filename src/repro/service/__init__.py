"""Clustering-as-a-service: the async job server over the staged pipeline.

The ROADMAP's service front end, built on everything PRs 5–7 laid down:

* one **event loop** (:class:`~repro.service.server.JobServer`) owns
  every connection and all job bookkeeping — connection handlers and
  worker callbacks are messages into the loop, never shared state;
* one **supervising parent actor per job**
  (:class:`~repro.service.manager.JobManager`) runs each submission
  under a :class:`~repro.pipeline.supervisor.ShardSupervisor` in a
  worker thread: per-job timeout, crashed-worker restart with backoff,
  kill-based cancellation;
* the **content store** makes jobs restartable and repeatable — shard
  and stage checkpoints land in the shared store as they complete, and
  finished artifacts are published under the job's content fingerprint
  so identical resubmissions are served without recomputing;
* progress streams as **events** built from the pipeline's telemetry
  profile (per-stage seconds plus ``shards_loaded`` /
  ``shards_computed`` counters), the observable the fault-injection
  tests assert crash-resume behaviour on.

Wire protocols (JSON-line + a stdlib HTTP subset) live in
:mod:`repro.service.protocol`; ``repro serve`` is the CLI entry point.
"""

from repro.service.client import ServiceClient
from repro.service.events import EVENT_TYPES, TERMINAL_STATES, build_event
from repro.service.executor import execute_job, job_store_key
from repro.service.harness import ServerThread
from repro.service.manager import JOB_STATES, JobManager, JobRecord
from repro.service.server import JobServer, serve

__all__ = [
    "EVENT_TYPES",
    "JOB_STATES",
    "JobManager",
    "JobRecord",
    "JobServer",
    "ServerThread",
    "ServiceClient",
    "TERMINAL_STATES",
    "build_event",
    "execute_job",
    "job_store_key",
    "serve",
]
