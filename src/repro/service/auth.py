"""Bearer-token authentication and tenant identity.

A server started with ``--auth-token-file`` reads one ``tenant:token``
pair per line (blank lines and ``#`` comments ignored) and requires
every job-touching request to present a known token — ``Authorization:
Bearer <token>`` over HTTP, a ``token`` field on JSON-line messages.
The tenant id is *derived from the token*, never client-asserted, and
scopes everything: listing, status, cancel, events, artifact.

Without a token file the server runs open and every caller acts as the
single :data:`DEFAULT_TENANT` — the PR 8 behaviour, unchanged.
"""

from __future__ import annotations

import hmac

from repro.service.errors import AuthError

#: The tenant every request maps to when authentication is disabled.
DEFAULT_TENANT = "public"


class TokenAuthenticator:
    """Map bearer tokens to tenant ids (or wave everyone through).

    ``tokens`` is ``{token: tenant}``; an empty/None mapping disables
    authentication entirely (:attr:`enabled` is False).
    """

    def __init__(self, tokens: dict[str, str] | None = None):
        self._tokens = dict(tokens or {})
        for token, tenant in self._tokens.items():
            if not token or not tenant:
                raise AuthError("auth tokens and tenant ids must be non-empty")

    @classmethod
    def from_file(cls, path) -> "TokenAuthenticator":
        """Parse a ``tenant:token``-per-line credentials file."""
        tokens: dict[str, str] = {}
        with open(path, encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                tenant, sep, token = line.partition(":")
                tenant, token = tenant.strip(), token.strip()
                if not sep or not tenant or not token:
                    raise AuthError(
                        f"{path}:{number}: expected 'tenant:token', got {line!r}"
                    )
                if token in tokens:
                    raise AuthError(f"{path}:{number}: duplicate token")
                tokens[token] = tenant
        if not tokens:
            raise AuthError(f"{path}: no credentials found")
        return cls(tokens)

    @property
    def enabled(self) -> bool:
        return bool(self._tokens)

    def authenticate(self, token: str | None) -> str:
        """The tenant id a token proves; raises :class:`AuthError`.

        With authentication disabled every caller (token or not) is the
        :data:`DEFAULT_TENANT`.  Comparison is constant-time per stored
        token so the lookup leaks nothing about near-miss tokens.
        """
        if not self.enabled:
            return DEFAULT_TENANT
        if not token:
            raise AuthError("authentication required: missing bearer token")
        for known, tenant in self._tokens.items():
            if hmac.compare_digest(known, str(token)):
                return tenant
        raise AuthError("authentication failed: unknown bearer token")
