"""The asyncio job server: one event loop owning every connection.

:class:`JobServer` binds a single listening socket and sniffs each
connection's first line — a line opening with ``{`` starts a JSON-line
session, anything else is parsed as an HTTP request (see
:mod:`repro.service.protocol`).  All I/O and all job bookkeeping run on
the one event loop; only job execution leaves it, into per-job
supervisor threads managed by :class:`~repro.service.manager.JobManager`.

The REST surface is versioned under ``/v1`` (legacy unversioned paths
answer 301 with the new location); the JSON-line ops mirror it one to
one.  The authoritative route/op tables live in
:mod:`repro.service.routes` — ``docs/api.md`` is generated from them —
and every failure is one of the typed errors in
:mod:`repro.service.errors`, serialized with its ``code`` on both wire
surfaces.

On boot (before accepting connections) the server replays the durable
job table from the store, re-queueing every job a previous life left
unfinished — see :meth:`~repro.service.manager.JobManager.recover`.
"""

from __future__ import annotations

import asyncio
import json

from repro.exceptions import ReproError
from repro.service import websocket
from repro.service.auth import TokenAuthenticator
from repro.service.errors import (
    AuthError,
    ProtocolError,
    as_service_error,
    error_payload,
)
from repro.service.manager import JobManager
from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
    http_response,
    http_stream_head,
)
from repro.service.routes import API_VERSION, LEGACY_ROOTS, PROTOCOL_VERSION


class JobServer:
    """A job service bound to one host/port (``port=0`` = ephemeral)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store_dir=None,
        workers: int = 2,
        job_timeout: float | None = None,
        job_retries: int = 1,
        executor_factory=None,
        max_queued: int | None = None,
        max_jobs_per_tenant: int | None = None,
        auth_token_file=None,
    ):
        self.manager = JobManager(
            store_dir=store_dir,
            workers=workers,
            job_timeout=job_timeout,
            job_retries=job_retries,
            executor_factory=executor_factory,
            max_queued=max_queued,
            max_jobs_per_tenant=max_jobs_per_tenant,
        )
        self.auth = (
            TokenAuthenticator.from_file(auth_token_file)
            if auth_token_file is not None
            else TokenAuthenticator()
        )
        self._requested = (host, port)
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None
        #: Jobs re-queued from the durable table by the last start().
        self.recovered = 0

    async def start(self) -> tuple[str, int]:
        """Recover durable jobs, then bind; returns the actual (host, port)."""
        self.recovered = self.manager.recover()
        host, port = self._requested
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_LINE_BYTES
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until the server is closed (CLI entry point)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel live jobs, wait for their actors."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.close()

    # -- shared helpers -----------------------------------------------------

    def _server_info(self) -> dict:
        """The ``hello`` / ``GET /v1/stats`` payload."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "api_version": API_VERSION,
            "auth": self.auth.enabled,
            **self.manager.stats(),
        }

    def _authenticate(self, token: str | None) -> str:
        """Token → tenant; counts and re-raises authentication failures."""
        try:
            return self.auth.authenticate(token)
        except AuthError:
            self.manager.counters["unauthorized"] += 1
            raise

    @staticmethod
    def _error_headers(error) -> dict | None:
        retry_after = getattr(error, "retry_after", None)
        if retry_after is None:
            return None
        return {"Retry-After": str(int(retry_after))}

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.lstrip().startswith(b"{"):
                await self._json_session(first, reader, writer)
            else:
                await self._http_session(first, reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            ValueError,  # overlong protocol line
        ):
            pass  # client went away or sent garbage framing; drop it
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection's task; finish
            # normally so the streams machinery doesn't log the teardown.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- JSON-line sessions -------------------------------------------------

    async def _json_session(self, first: bytes, reader, writer) -> None:
        line = first
        while True:
            if line.strip():
                await self._answer_json(line, reader, writer)
            line = await reader.readline()
            if not line:
                return

    async def _answer_json(self, line: bytes, reader, writer) -> None:
        try:
            message = decode_line(line)
            op = message.get("op")
            if op == "events":
                tenant = self._authenticate(message.get("token"))
                await self._stream_events(
                    str(message.get("job")), writer, encode_line, tenant
                )
                return
            reply = self._dispatch(op, message)
        except ReproError as error:
            reply = {"ok": False, **error_payload(as_service_error(error))}
        writer.write(encode_line(reply))
        await writer.drain()

    def _dispatch(self, op, message: dict) -> dict:
        """Non-streaming ops; raises a typed service error on failure."""
        manager = self.manager
        if op == "ping":
            return {"ok": True, "pong": True, "protocol_version": PROTOCOL_VERSION}
        if op == "hello":
            return {"ok": True, **self._server_info()}
        tenant = self._authenticate(message.get("token"))
        if op == "submit":
            record = manager.submit(
                message.get("spec", message.get("job")), tenant
            )
            return {"ok": True, **record.status()}
        if op == "status":
            return {
                "ok": True,
                **manager.get(str(message.get("job")), tenant).status(),
            }
        if op == "jobs":
            return {
                "ok": True,
                "jobs": [record.status() for record in manager.jobs(tenant)],
            }
        if op == "artifact":
            return {
                "ok": True,
                "artifact": manager.artifact(str(message.get("job")), tenant),
            }
        if op == "cancel":
            record, changed = manager.cancel(str(message.get("job")), tenant)
            return {"ok": True, "cancelled": changed, **record.status()}
        raise ProtocolError(f"unknown op {op!r}")

    async def _stream_events(
        self, job_id: str, writer, frame, tenant: str | None = None
    ) -> None:
        """Replay a job's transcript, then stream live events to terminal.

        ``frame`` turns one event object into wire bytes — the same
        streaming core serves the JSON-line op, the ndjson route and the
        WebSocket upgrade.
        """
        replay, queue = self.manager.subscribe(job_id, tenant)
        try:
            for event in replay:
                writer.write(frame(event))
            await writer.drain()
            if queue is not None:
                while True:
                    event = await queue.get()
                    if event is None:
                        break
                    writer.write(frame(event))
                    await writer.drain()
            state = self.manager.get(job_id, tenant).state
            writer.write(frame({"ok": True, "done": True, "state": state}))
            await writer.drain()
        finally:
            if queue is not None:
                self.manager.unsubscribe(job_id, queue)

    # -- HTTP sessions ------------------------------------------------------

    async def _http_session(self, first: bytes, reader, writer) -> None:
        parts = first.decode("latin-1").split()
        if len(parts) < 2:
            writer.write(
                http_response(
                    400, error_payload(ProtocolError("malformed request line"))
                )
            )
            await writer.drain()
            return
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if length:
            body = await reader.readexactly(length)
        await self._route_http(method, target, headers, body, writer)

    @staticmethod
    def _bearer_token(headers: dict) -> str | None:
        value = headers.get("authorization", "")
        if value.lower().startswith("bearer "):
            return value[len("bearer ") :].strip() or None
        return None

    async def _route_http(self, method, target, headers, body, writer) -> None:
        manager = self.manager
        path = target.split("?", 1)[0].rstrip("/")
        segments = [part for part in path.split("/") if part]
        if segments and segments[0] == API_VERSION:
            segments = segments[1:]
        elif segments and segments[0] in LEGACY_ROOTS:
            # One release of grace for pre-v1 clients: a permanent
            # redirect naming the versioned location, nothing served.
            location = f"/{API_VERSION}{path}"
            writer.write(
                http_response(
                    301,
                    {"error": "moved permanently", "location": location},
                    headers={"Location": location},
                )
            )
            await writer.drain()
            return
        try:
            if segments == ["stats"] and method == "GET":
                writer.write(http_response(200, self._server_info()))
            elif segments == ["jobs"]:
                tenant = self._authenticate(self._bearer_token(headers))
                if method == "POST":
                    try:
                        job = json.loads(body.decode("utf-8") or "null")
                    except ValueError as error:
                        raise ProtocolError(
                            f"request body is not JSON: {error}"
                        ) from error
                    record = manager.submit(job, tenant)
                    writer.write(http_response(202, record.status()))
                elif method == "GET":
                    statuses = [
                        record.status() for record in manager.jobs(tenant)
                    ]
                    writer.write(http_response(200, {"jobs": statuses}))
                else:
                    writer.write(
                        http_response(
                            405, error_payload(ProtocolError("use GET or POST"))
                        )
                    )
            elif len(segments) == 2 and segments[0] == "jobs":
                tenant = self._authenticate(self._bearer_token(headers))
                job_id = segments[1]
                if method == "GET":
                    writer.write(
                        http_response(200, manager.get(job_id, tenant).status())
                    )
                elif method == "DELETE":
                    record, changed = manager.cancel(job_id, tenant)
                    writer.write(
                        http_response(
                            200, {"cancelled": changed, **record.status()}
                        )
                    )
                else:
                    writer.write(
                        http_response(
                            405,
                            error_payload(ProtocolError("use GET or DELETE")),
                        )
                    )
            elif len(segments) == 3 and segments[0] == "jobs" and method == "GET":
                tenant = self._authenticate(self._bearer_token(headers))
                job_id, leaf = segments[1], segments[2]
                if leaf == "artifact":
                    writer.write(
                        http_response(200, manager.artifact(job_id, tenant))
                    )
                elif leaf == "events":
                    manager.get(job_id, tenant)  # 404/401 before any framing
                    if websocket.wants_upgrade(headers):
                        writer.write(
                            websocket.handshake_response(
                                headers.get("sec-websocket-key", "")
                            )
                        )
                        await writer.drain()
                        await self._stream_events(
                            job_id,
                            writer,
                            lambda event: websocket.encode_text_frame(
                                encode_line(event)
                            ),
                            tenant,
                        )
                        writer.write(websocket.close_frame())
                    else:
                        writer.write(http_stream_head(200))
                        await self._stream_events(
                            job_id, writer, encode_line, tenant
                        )
                    await writer.drain()
                    return
                else:
                    writer.write(
                        http_response(
                            404, error_payload(ProtocolError("unknown route"))
                        )
                    )
            else:
                writer.write(
                    http_response(
                        404, error_payload(ProtocolError("unknown route"))
                    )
                )
        except ReproError as error:
            error = as_service_error(error)
            writer.write(
                http_response(
                    error.http_status,
                    error_payload(error),
                    headers=self._error_headers(error),
                )
            )
        await writer.drain()


def serve(
    host: str = "127.0.0.1",
    port: int = 8831,
    *,
    store_dir=None,
    workers: int = 2,
    job_timeout: float | None = None,
    job_retries: int = 1,
    max_queued: int | None = None,
    max_jobs_per_tenant: int | None = None,
    auth_token_file=None,
) -> int:
    """Run a job server until interrupted (the ``repro serve`` command).

    Prints one readiness line (``repro serve: listening on HOST:PORT``)
    once the socket is bound — with ``--port 0`` that line is how callers
    learn the ephemeral port — and shuts down cleanly on Ctrl-C.  The
    durable-recovery count is reported on its own line first (0 when the
    store held nothing, or no store is attached).
    """

    async def _main() -> None:
        server = JobServer(
            host,
            port,
            store_dir=store_dir,
            workers=workers,
            job_timeout=job_timeout,
            job_retries=job_retries,
            max_queued=max_queued,
            max_jobs_per_tenant=max_jobs_per_tenant,
            auth_token_file=auth_token_file,
        )
        bound_host, bound_port = await server.start()
        print(f"repro serve: recovered {server.recovered} job(s)", flush=True)
        print(f"repro serve: listening on {bound_host}:{bound_port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shut down", flush=True)
    return 0
