"""The asyncio job server: one event loop owning every connection.

:class:`JobServer` binds a single listening socket and sniffs each
connection's first line — a line opening with ``{`` starts a JSON-line
session, anything else is parsed as an HTTP request (see
:mod:`repro.service.protocol`).  All I/O and all job bookkeeping run on
the one event loop; only job execution leaves it, into per-job
supervisor threads managed by :class:`~repro.service.manager.JobManager`.

REST surface (the JSON-line ops mirror it one to one):

========  =========================  ======================================
method    path                       meaning
========  =========================  ======================================
POST      ``/jobs``                  submit a job object → 202 + status
GET       ``/jobs``                  list job statuses
GET       ``/jobs/<id>``             one job's status
GET       ``/jobs/<id>/artifact``    the finished artifact (409 if not done)
GET       ``/jobs/<id>/events``      replay + live event stream (ndjson)
DELETE    ``/jobs/<id>``             request cancellation
========  =========================  ======================================
"""

from __future__ import annotations

import asyncio
import json

from repro.exceptions import ReproError, ServiceError
from repro.service.manager import JobManager
from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
    http_response,
    http_stream_head,
)


class JobServer:
    """A job service bound to one host/port (``port=0`` = ephemeral)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store_dir=None,
        workers: int = 2,
        job_timeout: float | None = None,
        job_retries: int = 1,
        executor_factory=None,
    ):
        self.manager = JobManager(
            store_dir=store_dir,
            workers=workers,
            job_timeout=job_timeout,
            job_retries=job_retries,
            executor_factory=executor_factory,
        )
        self._requested = (host, port)
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        host, port = self._requested
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_LINE_BYTES
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until the server is closed (CLI entry point)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel live jobs, wait for their actors."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.close()

    # -- connection handling ----------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.lstrip().startswith(b"{"):
                await self._json_session(first, reader, writer)
            else:
                await self._http_session(first, reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            ValueError,  # overlong protocol line
        ):
            pass  # client went away or sent garbage framing; drop it
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection's task; finish
            # normally so the streams machinery doesn't log the teardown.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- JSON-line sessions -------------------------------------------------

    async def _json_session(self, first: bytes, reader, writer) -> None:
        line = first
        while True:
            if line.strip():
                await self._answer_json(line, reader, writer)
            line = await reader.readline()
            if not line:
                return

    async def _answer_json(self, line: bytes, reader, writer) -> None:
        try:
            message = decode_line(line)
            op = message.get("op")
            if op == "events":
                await self._stream_events(
                    str(message.get("job")), writer, encode_line
                )
                return
            reply = self._dispatch(op, message)
        except ReproError as error:
            reply = {"ok": False, "error": str(error)}
        writer.write(encode_line(reply))
        await writer.drain()

    def _dispatch(self, op, message: dict) -> dict:
        """Non-streaming ops; raises ReproError for protocol errors."""
        manager = self.manager
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            record = manager.submit(message.get("spec", message.get("job")))
            return {"ok": True, **record.status()}
        if op == "status":
            return {"ok": True, **manager.get(str(message.get("job"))).status()}
        if op == "jobs":
            return {
                "ok": True,
                "jobs": [record.status() for record in manager.jobs()],
            }
        if op == "artifact":
            return {
                "ok": True,
                "artifact": manager.artifact(str(message.get("job"))),
            }
        if op == "cancel":
            return {"ok": True, **manager.cancel(str(message.get("job"))).status()}
        raise ServiceError(f"unknown op {op!r}")

    async def _stream_events(self, job_id: str, writer, frame) -> None:
        """Replay a job's transcript, then stream live events to terminal.

        ``frame`` turns one event object into wire bytes — the same
        streaming core serves the JSON-line op and the HTTP route.
        """
        replay, queue = self.manager.subscribe(job_id)
        try:
            for event in replay:
                writer.write(frame(event))
            await writer.drain()
            if queue is not None:
                while True:
                    event = await queue.get()
                    if event is None:
                        break
                    writer.write(frame(event))
                    await writer.drain()
            state = self.manager.get(job_id).state
            writer.write(frame({"ok": True, "done": True, "state": state}))
            await writer.drain()
        finally:
            if queue is not None:
                self.manager.unsubscribe(job_id, queue)

    # -- HTTP sessions ------------------------------------------------------

    async def _http_session(self, first: bytes, reader, writer) -> None:
        parts = first.decode("latin-1").split()
        if len(parts) < 2:
            writer.write(http_response(400, {"error": "malformed request line"}))
            await writer.drain()
            return
        method, target = parts[0].upper(), parts[1]
        headers = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if length:
            body = await reader.readexactly(length)
        await self._route_http(method, target, body, writer)

    async def _route_http(self, method, target, body, writer) -> None:
        manager = self.manager
        path = target.split("?", 1)[0].rstrip("/")
        segments = [part for part in path.split("/") if part]
        try:
            if segments == ["jobs"]:
                if method == "POST":
                    try:
                        job = json.loads(body.decode("utf-8") or "null")
                    except ValueError as error:
                        raise ServiceError(f"request body is not JSON: {error}")
                    record = manager.submit(job)
                    writer.write(http_response(202, record.status()))
                elif method == "GET":
                    statuses = [record.status() for record in manager.jobs()]
                    writer.write(http_response(200, {"jobs": statuses}))
                else:
                    writer.write(http_response(405, {"error": "use GET or POST"}))
            elif len(segments) == 2 and segments[0] == "jobs":
                job_id = segments[1]
                if method == "GET":
                    writer.write(http_response(200, manager.get(job_id).status()))
                elif method == "DELETE":
                    writer.write(http_response(200, manager.cancel(job_id).status()))
                else:
                    writer.write(
                        http_response(405, {"error": "use GET or DELETE"})
                    )
            elif len(segments) == 3 and segments[0] == "jobs" and method == "GET":
                job_id, leaf = segments[1], segments[2]
                if leaf == "artifact":
                    manager.get(job_id)  # 404 before 409
                    try:
                        artifact = manager.artifact(job_id)
                    except ServiceError as error:
                        writer.write(http_response(409, {"error": str(error)}))
                    else:
                        writer.write(http_response(200, artifact))
                elif leaf == "events":
                    manager.get(job_id)
                    writer.write(http_stream_head(200))
                    await self._stream_events(job_id, writer, encode_line)
                    return
                else:
                    writer.write(http_response(404, {"error": "unknown route"}))
            else:
                writer.write(http_response(404, {"error": "unknown route"}))
        except ServiceError as error:
            status = 404 if "unknown job" in str(error) else 400
            writer.write(http_response(status, {"error": str(error)}))
        except ReproError as error:
            writer.write(http_response(400, {"error": str(error)}))
        await writer.drain()


def serve(
    host: str = "127.0.0.1",
    port: int = 8831,
    *,
    store_dir=None,
    workers: int = 2,
    job_timeout: float | None = None,
    job_retries: int = 1,
) -> int:
    """Run a job server until interrupted (the ``repro serve`` command).

    Prints one readiness line (``repro serve: listening on HOST:PORT``)
    once the socket is bound — with ``--port 0`` that line is how callers
    learn the ephemeral port — and shuts down cleanly on Ctrl-C.
    """

    async def _main() -> None:
        server = JobServer(
            host,
            port,
            store_dir=store_dir,
            workers=workers,
            job_timeout=job_timeout,
            job_retries=job_retries,
        )
        bound_host, bound_port = await server.start()
        print(f"repro serve: listening on {bound_host}:{bound_port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shut down", flush=True)
    return 0
