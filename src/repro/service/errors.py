"""The one service error surface, shared by server and client.

Every failure the service can hand a caller is an instance of exactly
one class below, each pinning the triple the base
:class:`~repro.exceptions.ServiceError` declares: a stable ``code``
string (carried on the wire), the ``http_status`` the REST surface
answers with, and a ``retryable`` flag.  The server serializes errors
with :func:`error_payload`; the client rehydrates the matching subclass
with :func:`error_from_payload` — so a test (or a caller) matches on the
exception type or its ``code``, never on message substrings.

Only :class:`RejectedError` carries extra state: ``retry_after``, the
seconds a shedding server suggests waiting, surfaced both in the JSON
payload and as the HTTP ``Retry-After`` header.
"""

from __future__ import annotations

from repro.exceptions import ExperimentError, ReproError, ServiceError

__all__ = [
    "ArtifactNotReadyError",
    "AuthError",
    "InvalidJobError",
    "ProtocolError",
    "RejectedError",
    "UnknownJobError",
    "as_service_error",
    "error_from_payload",
    "error_payload",
]

#: Default ``Retry-After`` seconds suggested by load-shed rejections.
DEFAULT_RETRY_AFTER = 5


class ProtocolError(ServiceError):
    """The request itself is unreadable: bad JSON, bad framing, bad op."""

    code = "protocol"
    http_status = 400
    retryable = False


class InvalidJobError(ServiceError):
    """The submitted job object failed validation; nothing was created."""

    code = "invalid_job"
    http_status = 400
    retryable = False


class UnknownJobError(ServiceError):
    """No job with that id is visible to this tenant."""

    code = "unknown_job"
    http_status = 404
    retryable = False


class ArtifactNotReadyError(ServiceError):
    """The job exists but has not produced an artifact (yet, or ever)."""

    code = "artifact_not_ready"
    http_status = 409
    retryable = True


class AuthError(ServiceError):
    """Missing or unrecognized bearer token on an authenticated server."""

    code = "unauthorized"
    http_status = 401
    retryable = False


class RejectedError(ServiceError):
    """Admission control shed this submission; retry after a backoff."""

    code = "rejected"
    http_status = 429
    retryable = True

    def __init__(self, message: str, *, retry_after: int = DEFAULT_RETRY_AFTER):
        super().__init__(message)
        self.retry_after = int(retry_after)


#: code → class, the wire-format contract ``error_from_payload`` decodes by.
ERROR_CODES = {
    cls.code: cls
    for cls in (
        ServiceError,
        ProtocolError,
        InvalidJobError,
        UnknownJobError,
        ArtifactNotReadyError,
        AuthError,
        RejectedError,
    )
}


def as_service_error(error: Exception) -> ServiceError:
    """Coerce any library error into the service hierarchy.

    Job-validation failures (:class:`ExperimentError` out of
    ``normalize_job``) become :class:`InvalidJobError`; other library
    errors keep their message under the base ``service_error`` code.
    """
    if isinstance(error, ServiceError):
        return error
    if isinstance(error, ExperimentError):
        return InvalidJobError(str(error))
    if isinstance(error, ReproError):
        return ServiceError(str(error))
    raise TypeError(f"not a library error: {error!r}")


def error_payload(error: ServiceError) -> dict:
    """The wire fields of one error — shared by both protocols.

    The JSON-line reply is ``{"ok": false, **error_payload(...)}``; the
    HTTP body is ``error_payload(...)`` with the status taken from
    ``error.http_status``.
    """
    payload = {
        "error": str(error),
        "code": error.code,
        "retryable": bool(error.retryable),
    }
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = int(retry_after)
    return payload


def error_from_payload(payload: dict) -> ServiceError:
    """Rehydrate the typed error a reply payload describes.

    Unknown codes (a newer server) degrade to the base
    :class:`ServiceError`, never to a crash.
    """
    message = str(payload.get("error", "unspecified server error"))
    cls = ERROR_CODES.get(payload.get("code"), ServiceError)
    if cls is RejectedError:
        return RejectedError(
            message, retry_after=payload.get("retry_after", DEFAULT_RETRY_AFTER)
        )
    return cls(message)
