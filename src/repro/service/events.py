"""Job lifecycle events: the service's streamed progress vocabulary.

Every job accumulates an ordered transcript of event objects; clients
replay the transcript on subscription and then receive live events until
the job reaches a terminal state.  Events are deterministic in structure
(kind, ordering, counters) — only the ``seconds`` figures inside stage
events vary run to run — which is what lets the test harness pin exact
transcripts the way the pipeline tests pin golden digests.

Event kinds, in the order a healthy job emits them:

``submitted`` → ``started`` → ``attempt`` (one per worker launch;
``attempt >= 2`` means a crashed or expired child was restarted) →
``stage`` (one per pipeline stage, from the artifact's telemetry profile,
shard counters included when the stage ran sharded) → ``artifact``
(``source`` is ``"computed"`` or ``"store"`` — the latter for repeat
submissions resolved from the content store, which skip the ``attempt``
and ``stage`` events entirely) → ``completed``.  Failed jobs end with
``failed`` (carrying ``error``), cancelled jobs with ``cancelled``.

One extra kind sits outside the healthy ordering: ``recovered``, emitted
when a rebooted server re-queues a non-terminal job from the durable
job table (:mod:`repro.service.jobtable`) — it appears in the transcript
between the original events and the fresh ``started``, carrying the
state the job was found in.
"""

from __future__ import annotations

from repro.pipeline.stages import STAGE_NAMES
from repro.pipeline.telemetry import profile_stage_rows

#: Every event kind the service emits.
EVENT_TYPES = (
    "submitted",
    "recovered",
    "started",
    "attempt",
    "stage",
    "artifact",
    "completed",
    "failed",
    "cancelled",
)

#: Job states from which no further events follow.
TERMINAL_STATES = ("completed", "failed", "cancelled")


def build_event(kind: str, job_id: str, seq: int, **payload) -> dict:
    """One event object: kind + job + monotonic sequence number + payload."""
    if kind not in EVENT_TYPES:
        raise ValueError(f"unknown event kind {kind!r}")
    event = {"event": kind, "job": job_id, "seq": int(seq)}
    event.update(payload)
    return event


def stage_event_rows(profile: dict) -> list[dict]:
    """Per-stage event payloads from an artifact's telemetry profile.

    Pipeline stages come first in execution order (:data:`STAGE_NAMES`);
    each row carries the stage's aggregate seconds and computed/loaded
    counts, plus the ``shards_computed`` / ``shards_loaded`` /
    ``shards_retried`` / ``shards_failed`` counters exactly when the
    stage ran sharded — the counters the resume tests assert on.
    """
    return profile_stage_rows(profile or {}, order=STAGE_NAMES)
