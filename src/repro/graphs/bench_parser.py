"""Parser for the ISCAS-85/89 ``.bench`` netlist format.

The ``.bench`` format is the lingua franca of academic EDA benchmarks::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = DFF(G10)

:func:`parse_bench` turns such text into a :class:`repro.graphs.netlist.Netlist`;
:data:`C17_BENCH` embeds the classic ISCAS-85 c17 circuit so the netlist
code path runs against a real benchmark without any data download.
"""

from __future__ import annotations

import re

from repro.exceptions import ParseError
from repro.graphs.netlist import GATE_TYPES, Gate, Netlist

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)$")

# The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
C17_BENCH = """
# c17 — ISCAS-85 benchmark circuit
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


# The ISCAS-89 s27 benchmark: the smallest sequential circuit of the
# suite — 4 inputs, 1 output, 3 DFFs, 10 logic gates.
S27_BENCH = """
# s27 — ISCAS-89 benchmark circuit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Design name recorded on the netlist.

    Raises
    ------
    ParseError:
        On malformed lines, unknown gate types, duplicate definitions, or
        references to undriven nets.
    """
    gates: list[Gate] = []
    outputs: list[str] = []
    defined: set[str] = set()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                if net in defined:
                    raise ParseError(f"line {line_number}: net {net!r} redefined")
                gates.append(Gate(net, "INPUT"))
                defined.add(net)
            else:
                outputs.append(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            net, gate_type, arg_text = gate_match.groups()
            gate_type = gate_type.upper()
            if gate_type not in GATE_TYPES:
                raise ParseError(f"line {line_number}: unknown gate type {gate_type!r}")
            if net in defined:
                raise ParseError(f"line {line_number}: net {net!r} redefined")
            inputs = tuple(
                token.strip() for token in arg_text.split(",") if token.strip()
            )
            if not inputs:
                raise ParseError(f"line {line_number}: gate {net!r} has no inputs")
            gates.append(Gate(net, gate_type, inputs))
            defined.add(net)
            continue
        raise ParseError(f"line {line_number}: cannot parse {raw.strip()!r}")
    for net in outputs:
        if net not in defined:
            raise ParseError(f"OUTPUT({net}) references an undriven net")
    netlist = Netlist(name=name, gates=gates)
    netlist.validate()
    return netlist


def load_c17() -> Netlist:
    """The embedded ISCAS-85 c17 circuit as a :class:`Netlist`."""
    return parse_bench(C17_BENCH, name="c17")


def load_s27() -> Netlist:
    """The embedded ISCAS-89 s27 sequential circuit as a :class:`Netlist`."""
    return parse_bench(S27_BENCH, name="s27")


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist back to ``.bench`` text (inverse of parse)."""
    lines = [f"# {netlist.name}"]
    sinks = {net for gate in netlist.gates for net in gate.inputs}
    for gate in netlist.gates:
        if gate.gate_type == "INPUT":
            lines.append(f"INPUT({gate.name})")
    for gate in netlist.gates:
        if gate.gate_type != "INPUT" and gate.name not in sinks:
            lines.append(f"OUTPUT({gate.name})")
    for gate in netlist.gates:
        if gate.gate_type != "INPUT":
            lines.append(f"{gate.name} = {gate.gate_type}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
