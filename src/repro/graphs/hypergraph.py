"""Netlist hypergraphs and their expansions to mixed graphs.

A net in a circuit is a *hyperedge*: one driver, many sinks.  Partitioning
literature works on the hypergraph directly or expands it to a graph.  Two
standard expansions are provided, both directional-aware:

* **clique** — every pair of cells on a net is connected; driver→sink
  pairs become arcs, sink–sink pairs undirected edges, with the usual
  1/(|e|−1) weight normalization so large nets don't dominate;
* **star**  — the driver connects to each sink with an arc (no sink–sink
  coupling); lighter, preserves only the flow structure.

`Hypergraph` also computes cut metrics hypergraph-natively (connectivity
− 1), which the netlist experiment reports alongside the graph metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.mixed_graph import MixedGraph
from repro.graphs.netlist import Netlist

EXPANSIONS = ("clique", "star")


@dataclass(frozen=True)
class Net:
    """One hyperedge: a driver cell and its sink cells (indices)."""

    driver: int
    sinks: tuple[int, ...]
    weight: float = 1.0

    def __post_init__(self):
        if not self.sinks:
            raise GraphError(f"net driven by {self.driver} has no sinks")
        if self.driver in self.sinks:
            raise GraphError("driver cannot be its own sink")
        if len(set(self.sinks)) != len(self.sinks):
            raise GraphError("duplicate sinks on one net")
        if self.weight <= 0:
            raise GraphError(f"net weight must be positive, got {self.weight}")

    @property
    def pins(self) -> tuple[int, ...]:
        """All cells on the net, driver first."""
        return (self.driver, *self.sinks)

    @property
    def size(self) -> int:
        """Pin count |e|."""
        return 1 + len(self.sinks)


class Hypergraph:
    """A directed netlist hypergraph on ``num_cells`` cells."""

    def __init__(self, num_cells: int, nets=None):
        if num_cells < 1:
            raise GraphError(f"need at least one cell, got {num_cells}")
        self.num_cells = int(num_cells)
        self._nets: list[Net] = []
        for net in nets or []:
            self.add_net(net)

    def add_net(self, net: Net) -> None:
        """Add a validated net."""
        for pin in net.pins:
            if not 0 <= pin < self.num_cells:
                raise GraphError(f"pin {pin} out of range")
        self._nets.append(net)

    @property
    def nets(self) -> tuple[Net, ...]:
        """All nets (immutable view)."""
        return tuple(self._nets)

    @property
    def num_nets(self) -> int:
        """Hyperedge count."""
        return len(self._nets)

    @property
    def num_pins(self) -> int:
        """Total pin count Σ|e| — the standard size measure of a netlist."""
        return sum(net.size for net in self._nets)

    @classmethod
    def from_netlist(cls, netlist: Netlist, include_inputs: bool = True):
        """Group a netlist's driver→sink relations into hyperedges."""
        netlist.validate()
        kept = [g for g in netlist.gates if include_inputs or g.gate_type != "INPUT"]
        index = {g.name: i for i, g in enumerate(kept)}
        sinks_of: dict[str, list[int]] = {}
        for gate in kept:
            for net_name in gate.inputs:
                if net_name in index and index[net_name] != index[gate.name]:
                    sinks_of.setdefault(net_name, []).append(index[gate.name])
        hypergraph = cls(len(kept))
        for net_name, sinks in sinks_of.items():
            unique = tuple(dict.fromkeys(sinks))
            hypergraph.add_net(Net(driver=index[net_name], sinks=unique))
        return hypergraph

    # -- expansions ----------------------------------------------------------

    def to_mixed_graph(self, expansion: str = "clique") -> MixedGraph:
        """Expand to a mixed graph (weights accumulate across nets).

        ``clique``: each net contributes weight w/(|e|−1) per cell pair —
        arcs for driver→sink, undirected edges for sink–sink.
        ``star``: driver→sink arcs of weight w only.
        """
        if expansion not in EXPANSIONS:
            raise GraphError(
                f"expansion must be one of {EXPANSIONS}, got {expansion!r}"
            )
        arc_weight: dict[tuple[int, int], float] = {}
        edge_weight: dict[tuple[int, int], float] = {}
        for net in self._nets:
            if expansion == "star":
                for sink in net.sinks:
                    key = (net.driver, sink)
                    arc_weight[key] = arc_weight.get(key, 0.0) + net.weight
                continue
            scale = net.weight / (net.size - 1)
            for sink in net.sinks:
                key = (net.driver, sink)
                arc_weight[key] = arc_weight.get(key, 0.0) + scale
            for i, a in enumerate(net.sinks):
                for b in net.sinks[i + 1 :]:
                    key = (min(a, b), max(a, b))
                    edge_weight[key] = edge_weight.get(key, 0.0) + scale
        graph = MixedGraph(self.num_cells)
        # Undirected mass wins conflicts: a pair coupled both ways is a
        # physical bidirectional relation.
        for (u, v), w in sorted(edge_weight.items()):
            graph.add_edge(u, v, w)
        for (u, v), w in sorted(arc_weight.items()):
            if graph.has_edge(u, v):
                continue  # the pair is already physically bidirectional
            graph.add_arc(u, v, w)  # antiparallel pairs merge to an edge
        return graph

    # -- hypergraph-native metrics --------------------------------------------

    def cut_nets(self, labels) -> int:
        """Number of nets spanning more than one partition."""
        labels = self._validate_labels(labels)
        return sum(
            1
            for net in self._nets
            if len({labels[pin] for pin in net.pins}) > 1
        )

    def connectivity_cut(self, labels) -> float:
        """Σ_e w_e (λ_e − 1) where λ_e = number of parts net e touches.

        The standard "connectivity minus one" objective of hypergraph
        partitioners (hMETIS, KaHyPar).
        """
        labels = self._validate_labels(labels)
        total = 0.0
        for net in self._nets:
            parts = len({labels[pin] for pin in net.pins})
            total += net.weight * (parts - 1)
        return total

    def _validate_labels(self, labels) -> np.ndarray:
        labels = np.asarray(labels, dtype=int).ravel()
        if labels.size != self.num_cells:
            raise GraphError(f"{labels.size} labels for {self.num_cells} cells")
        return labels

    def __repr__(self) -> str:
        return (
            f"Hypergraph(cells={self.num_cells}, nets={self.num_nets}, "
            f"pins={self.num_pins})"
        )
