"""Hermitian adjacency and Laplacian matrices of a mixed graph.

The Hermitian adjacency matrix (Liu–Li 2015, Guo–Mohar 2017) encodes an
undirected edge {u,v} of weight w as H[u,v] = H[v,u] = w and an arc (u,v)
as H[u,v] = w·e^{+iθ}, H[v,u] = w·e^{−iθ}.  With θ = π/2 (the classical
``i / −i`` convention) an arc contributes a purely imaginary entry.

The Hermitian Laplacian L = D − H has quadratic form

    x* L x = Σ_{{u,v}∈E} w |x_u − x_v|²  +  Σ_{(u,v)∈A} w |x_u − e^{iθ} x_v|²

so it is Hermitian positive-semidefinite; its low eigenvectors separate
clusters whose internal connectivity is *phase-consistent* — exactly the
structure the DAC paper clusters on, and a valid quantum Hamiltonian.

Three normalizations are provided:

``"none"``       L = D − H
``"symmetric"``  𝓛 = I − D^{−1/2} H D^{−1/2}   (eigenvalues in [0, 2])
``"randomwalk"`` 𝓛 = I − D^{−1} H              (similar to symmetric)

Both constructors take a ``backend`` argument following the
``repro.linalg`` contract: ``"dense"`` (default) returns plain complex
ndarrays exactly as before, ``"sparse"`` returns ``scipy.sparse`` CSR
matrices assembled straight from COO edge triplets (never materializing
the n × n array), and ``"auto"`` picks by graph size.  Construction is
vectorized over the edge arrays in every case.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.mixed_graph import MixedGraph
from repro.linalg import resolve_backend

NORMALIZATIONS = ("none", "symmetric", "randomwalk")
DEFAULT_THETA = np.pi / 2


def hermitian_adjacency(
    graph: MixedGraph, theta: float = DEFAULT_THETA, backend="dense"
):
    """The Hermitian adjacency matrix H(θ) of a mixed graph.

    Parameters
    ----------
    graph:
        Input mixed graph on n nodes.
    theta:
        Phase angle assigned to arcs, in (0, π].  θ = π/2 is the standard
        convention; smaller θ damps the directional signal (experiment A2).
    backend:
        Linear-algebra backend spec (``"dense"``, ``"sparse"``, ``"auto"``,
        or a ``repro.linalg`` backend instance).

    Returns
    -------
    Complex Hermitian n × n matrix in the backend's representation.
    """
    if not 0 < theta <= np.pi:
        raise GraphError(f"theta must lie in (0, pi], got {theta}")
    n = graph.num_nodes
    be = resolve_backend(backend, n)
    u, v, w, directed = graph.edge_arrays()
    phase = np.where(directed, np.exp(1j * theta), 1.0)
    values = w * phase
    return be.from_coo(
        np.concatenate([u, v]),
        np.concatenate([v, u]),
        np.concatenate([values, np.conj(values)]),
        (n, n),
        dtype=complex,
    )


def degree_matrix(graph: MixedGraph) -> np.ndarray:
    """Diagonal matrix of weighted degrees (edges and arcs both count)."""
    return np.diag(graph.degrees())


def hermitian_laplacian(
    graph: MixedGraph,
    theta: float = DEFAULT_THETA,
    normalization: str = "symmetric",
    regularization: float = 1e-12,
    backend="dense",
):
    """The (normalized) Hermitian Laplacian of a mixed graph.

    Parameters
    ----------
    graph:
        Input mixed graph.
    theta:
        Arc phase angle, forwarded to :func:`hermitian_adjacency`.
    normalization:
        One of ``"none"``, ``"symmetric"``, ``"randomwalk"``.
    regularization:
        Isolated nodes have zero degree; their inverse-degree entries are
        computed against ``max(degree, regularization)`` so the matrix stays
        finite (an isolated node then sits at Laplacian eigenvalue 1, i.e.
        mid-spectrum, and never pollutes the cluster subspace).
    backend:
        Linear-algebra backend spec (``"dense"``, ``"sparse"``, ``"auto"``,
        or a ``repro.linalg`` backend instance).

    Returns
    -------
    Complex n × n matrix; Hermitian for ``"none"`` and ``"symmetric"``.
    """
    if normalization not in NORMALIZATIONS:
        raise GraphError(
            f"normalization must be one of {NORMALIZATIONS}, got {normalization!r}"
        )
    be = resolve_backend(backend, graph.num_nodes)
    h = hermitian_adjacency(graph, theta, backend=be)
    degrees = graph.degrees()
    if normalization == "none":
        return be.diagonal_matrix(degrees.astype(complex)) - h
    safe = np.maximum(degrees, regularization)
    identity = be.identity(graph.num_nodes, dtype=complex)
    if normalization == "symmetric":
        scale = 1.0 / np.sqrt(safe)
        return identity - be.scale_columns(be.scale_rows(h, scale), scale)
    return identity - be.scale_rows(h, 1.0 / safe)


def laplacian_spectrum(
    graph: MixedGraph,
    theta: float = DEFAULT_THETA,
    normalization: str = "symmetric",
) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues (ascending) and eigenvectors of the Hermitian Laplacian.

    The random-walk Laplacian is not Hermitian, but it shares its spectrum
    with the symmetric one; for ``"randomwalk"`` the symmetric spectrum is
    returned with eigenvectors rescaled by D^{−1/2}.
    """
    if normalization == "randomwalk":
        sym = hermitian_laplacian(graph, theta, "symmetric")
        values, vectors = np.linalg.eigh(sym)
        scale = 1.0 / np.sqrt(np.maximum(graph.degrees(), 1e-12))
        vectors = scale[:, None] * vectors
        vectors /= np.linalg.norm(vectors, axis=0, keepdims=True)
        return values, vectors
    lap = hermitian_laplacian(graph, theta, normalization)
    return np.linalg.eigh(lap)


def spectral_bounds(normalization: str = "symmetric") -> tuple[float, float]:
    """(min, max) possible Laplacian eigenvalues under a normalization.

    The symmetric normalized Hermitian Laplacian has spectrum inside
    [0, 2]; the unnormalized one inside [0, 2·d_max] (caller must supply
    d_max, so only the normalized bound is returned here).
    """
    if normalization == "symmetric":
        return (0.0, 2.0)
    raise GraphError(
        "spectral_bounds is only defined for the symmetric normalization; "
        "compute bounds from the degree sequence otherwise"
    )
