"""Hermitian adjacency and Laplacian matrices of a mixed graph.

The Hermitian adjacency matrix (Liu–Li 2015, Guo–Mohar 2017) encodes an
undirected edge {u,v} of weight w as H[u,v] = H[v,u] = w and an arc (u,v)
as H[u,v] = w·e^{+iθ}, H[v,u] = w·e^{−iθ}.  With θ = π/2 (the classical
``i / −i`` convention) an arc contributes a purely imaginary entry.

The Hermitian Laplacian L = D − H has quadratic form

    x* L x = Σ_{{u,v}∈E} w |x_u − x_v|²  +  Σ_{(u,v)∈A} w |x_u − e^{iθ} x_v|²

so it is Hermitian positive-semidefinite; its low eigenvectors separate
clusters whose internal connectivity is *phase-consistent* — exactly the
structure the DAC paper clusters on, and a valid quantum Hamiltonian.

Three normalizations are provided:

``"none"``       L = D − H
``"symmetric"``  𝓛 = I − D^{−1/2} H D^{−1/2}   (eigenvalues in [0, 2])
``"randomwalk"`` 𝓛 = I − D^{−1} H              (similar to symmetric)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.mixed_graph import MixedGraph

NORMALIZATIONS = ("none", "symmetric", "randomwalk")
DEFAULT_THETA = np.pi / 2


def hermitian_adjacency(
    graph: MixedGraph, theta: float = DEFAULT_THETA
) -> np.ndarray:
    """The Hermitian adjacency matrix H(θ) of a mixed graph.

    Parameters
    ----------
    graph:
        Input mixed graph on n nodes.
    theta:
        Phase angle assigned to arcs, in (0, π].  θ = π/2 is the standard
        convention; smaller θ damps the directional signal (experiment A2).

    Returns
    -------
    Complex Hermitian n × n matrix.
    """
    if not 0 < theta <= np.pi:
        raise GraphError(f"theta must lie in (0, pi], got {theta}")
    n = graph.num_nodes
    h = np.zeros((n, n), dtype=complex)
    for edge in graph.edges():
        if edge.directed:
            phase = np.exp(1j * theta)
            h[edge.u, edge.v] += edge.weight * phase
            h[edge.v, edge.u] += edge.weight * np.conj(phase)
        else:
            h[edge.u, edge.v] += edge.weight
            h[edge.v, edge.u] += edge.weight
    return h


def degree_matrix(graph: MixedGraph) -> np.ndarray:
    """Diagonal matrix of weighted degrees (edges and arcs both count)."""
    return np.diag(graph.degrees())


def hermitian_laplacian(
    graph: MixedGraph,
    theta: float = DEFAULT_THETA,
    normalization: str = "symmetric",
    regularization: float = 1e-12,
) -> np.ndarray:
    """The (normalized) Hermitian Laplacian of a mixed graph.

    Parameters
    ----------
    graph:
        Input mixed graph.
    theta:
        Arc phase angle, forwarded to :func:`hermitian_adjacency`.
    normalization:
        One of ``"none"``, ``"symmetric"``, ``"randomwalk"``.
    regularization:
        Isolated nodes have zero degree; their inverse-degree entries are
        computed against ``max(degree, regularization)`` so the matrix stays
        finite (an isolated node then sits at Laplacian eigenvalue 1, i.e.
        mid-spectrum, and never pollutes the cluster subspace).

    Returns
    -------
    Complex n × n matrix; Hermitian for ``"none"`` and ``"symmetric"``.
    """
    if normalization not in NORMALIZATIONS:
        raise GraphError(
            f"normalization must be one of {NORMALIZATIONS}, got {normalization!r}"
        )
    h = hermitian_adjacency(graph, theta)
    degrees = graph.degrees()
    if normalization == "none":
        return np.diag(degrees).astype(complex) - h
    safe = np.maximum(degrees, regularization)
    if normalization == "symmetric":
        scale = 1.0 / np.sqrt(safe)
        normalized = scale[:, None] * h * scale[None, :]
        return np.eye(graph.num_nodes, dtype=complex) - normalized
    scale = 1.0 / safe
    return np.eye(graph.num_nodes, dtype=complex) - scale[:, None] * h


def laplacian_spectrum(
    graph: MixedGraph,
    theta: float = DEFAULT_THETA,
    normalization: str = "symmetric",
) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues (ascending) and eigenvectors of the Hermitian Laplacian.

    The random-walk Laplacian is not Hermitian, but it shares its spectrum
    with the symmetric one; for ``"randomwalk"`` the symmetric spectrum is
    returned with eigenvectors rescaled by D^{−1/2}.
    """
    if normalization == "randomwalk":
        sym = hermitian_laplacian(graph, theta, "symmetric")
        values, vectors = np.linalg.eigh(sym)
        scale = 1.0 / np.sqrt(np.maximum(graph.degrees(), 1e-12))
        vectors = scale[:, None] * vectors
        vectors /= np.linalg.norm(vectors, axis=0, keepdims=True)
        return values, vectors
    lap = hermitian_laplacian(graph, theta, normalization)
    return np.linalg.eigh(lap)


def spectral_bounds(normalization: str = "symmetric") -> tuple[float, float]:
    """(min, max) possible Laplacian eigenvalues under a normalization.

    The symmetric normalized Hermitian Laplacian has spectrum inside
    [0, 2]; the unnormalized one inside [0, 2·d_max] (caller must supply
    d_max, so only the normalized bound is returned here).
    """
    if normalization == "symmetric":
        return (0.0, 2.0)
    raise GraphError(
        "spectral_bounds is only defined for the symmetric normalization; "
        "compute bounds from the degree sequence otherwise"
    )
