"""Plain-text edge-list I/O for mixed graphs.

Format (one connection per line, ``#`` comments allowed)::

    n 6                # header: node count
    e 0 1 1.0          # undirected edge u v weight
    a 1 2 2.5          # directed arc source target weight

The format round-trips exactly (property-tested) and is convenient for
shipping experiment inputs between machines.
"""

from __future__ import annotations

import os

from repro.exceptions import ParseError
from repro.graphs.mixed_graph import MixedGraph


def dumps(graph: MixedGraph) -> str:
    """Serialize a mixed graph to edge-list text."""
    lines = [f"n {graph.num_nodes}"]
    for edge in graph.edges():
        tag = "a" if edge.directed else "e"
        lines.append(f"{tag} {edge.u} {edge.v} {edge.weight!r}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> MixedGraph:
    """Parse edge-list text back into a :class:`MixedGraph`."""
    graph: MixedGraph | None = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        tag = fields[0].lower()
        try:
            if tag == "n":
                if graph is not None:
                    raise ParseError(f"line {line_number}: duplicate header")
                graph = MixedGraph(int(fields[1]))
            elif tag in ("e", "a"):
                if graph is None:
                    raise ParseError(
                        f"line {line_number}: connection before 'n' header"
                    )
                u, v = int(fields[1]), int(fields[2])
                weight = float(fields[3]) if len(fields) > 3 else 1.0
                if tag == "e":
                    graph.add_edge(u, v, weight)
                else:
                    graph.add_arc(u, v, weight)
            else:
                raise ParseError(f"line {line_number}: unknown tag {tag!r}")
        except (ValueError, IndexError) as exc:
            raise ParseError(f"line {line_number}: malformed line {raw!r}") from exc
    if graph is None:
        raise ParseError("no 'n <count>' header found")
    return graph


def save(graph: MixedGraph, path: str | os.PathLike) -> None:
    """Write a mixed graph to ``path`` in edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load(path: str | os.PathLike) -> MixedGraph:
    """Read a mixed graph from an edge-list file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
