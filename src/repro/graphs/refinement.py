"""Fiduccia–Mattheyses (FM) partition refinement for mixed graphs.

The classic EDA move-based local refinement: repeatedly move the
highest-gain node across the cut (each node at most once per pass, balance
permitting), then roll back to the best prefix of moves.  Spectral methods
give a good global bipartition; an FM pass polishes the boundary — the
standard two-stage recipe of netlist partitioning since the 1980s.

Works on the symmetrized connection weights (cut size is
direction-agnostic) but reports directional metrics via
``repro.metrics.graph_metrics`` so the pipeline's flow structure stays
visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ClusteringError
from repro.graphs.mixed_graph import MixedGraph


@dataclass(frozen=True)
class FMResult:
    """Outcome of FM refinement.

    Attributes
    ----------
    labels:
        Refined 0/1 partition labels.
    cut_before / cut_after:
        Cut weight before and after refinement.
    passes:
        Full FM passes executed.
    moves_applied:
        Total accepted (post-rollback) moves.
    """

    labels: np.ndarray
    cut_before: float
    cut_after: float
    passes: int
    moves_applied: int


def cut_size(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """Weight of edges crossing a 0/1 partition."""
    crossing = labels[:, None] != labels[None, :]
    return float((adjacency * crossing).sum() / 2.0)


def _gains(adjacency: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """FM gain of moving each node: external − internal incident weight."""
    same = labels[:, None] == labels[None, :]
    internal = (adjacency * same).sum(axis=1)
    external = (adjacency * ~same).sum(axis=1)
    return external - internal


def fm_bipartition_refine(
    graph: MixedGraph,
    labels,
    max_passes: int = 10,
    balance_tolerance: float = 0.1,
) -> FMResult:
    """Refine a bipartition with Fiduccia–Mattheyses passes.

    Parameters
    ----------
    graph:
        The mixed graph (symmetrized weights drive the cut objective).
    labels:
        Initial 0/1 labels (anything with exactly two distinct values).
    max_passes:
        Pass budget; refinement stops early once a pass yields no gain.
    balance_tolerance:
        Each side must keep at least ``(0.5 − tolerance)·n`` nodes.

    Returns
    -------
    :class:`FMResult`
    """
    labels = np.asarray(labels, dtype=int).ravel().copy()
    if labels.size != graph.num_nodes:
        raise ClusteringError(
            f"{labels.size} labels for a {graph.num_nodes}-node graph"
        )
    distinct = np.unique(labels)
    if distinct.size != 2:
        raise ClusteringError(
            f"FM refinement needs a bipartition, got {distinct.size} parts"
        )
    if not 0.0 <= balance_tolerance < 0.5:
        raise ClusteringError("balance_tolerance must be in [0, 0.5)")
    if max_passes < 1:
        raise ClusteringError("max_passes must be >= 1")
    # normalize to 0/1
    labels = (labels == distinct[1]).astype(int)
    adjacency = graph.symmetrized_adjacency()
    n = graph.num_nodes
    min_side = int(np.floor((0.5 - balance_tolerance) * n))
    initial_cut = cut_size(adjacency, labels)
    best_cut = initial_cut
    total_moves = 0
    passes_done = 0
    for _ in range(max_passes):
        passes_done += 1
        working = labels.copy()
        gains = _gains(adjacency, working)
        locked = np.zeros(n, dtype=bool)
        move_sequence: list[int] = []
        cut_trajectory: list[float] = []
        current_cut = cut_size(adjacency, working)
        side_counts = np.bincount(working, minlength=2)
        for _ in range(n):
            candidates = np.flatnonzero(~locked)
            if candidates.size == 0:
                break
            # balance filter: moving a node must keep both sides legal
            legal = [
                node
                for node in candidates
                if side_counts[working[node]] - 1 >= min_side
            ]
            if not legal:
                break
            legal = np.asarray(legal)
            node = int(legal[np.argmax(gains[legal])])
            current_cut -= gains[node]
            side_counts[working[node]] -= 1
            working[node] ^= 1
            side_counts[working[node]] += 1
            locked[node] = True
            move_sequence.append(node)
            cut_trajectory.append(current_cut)
            # incremental gain update for neighbours
            neighbors = np.flatnonzero(adjacency[node])
            for neighbor in neighbors:
                if locked[neighbor]:
                    continue
                weight = adjacency[node, neighbor]
                if working[neighbor] == working[node]:
                    gains[neighbor] -= 2.0 * weight
                else:
                    gains[neighbor] += 2.0 * weight
            gains[node] = -gains[node]
        if not cut_trajectory:
            break
        best_prefix = int(np.argmin(cut_trajectory))
        prefix_cut = cut_trajectory[best_prefix]
        if prefix_cut >= best_cut - 1e-12:
            break  # no improving prefix — converged
        # apply the best prefix of moves
        for node in move_sequence[: best_prefix + 1]:
            labels[node] ^= 1
        total_moves += best_prefix + 1
        best_cut = prefix_cut
    return FMResult(
        labels=labels,
        cut_before=initial_cut,
        cut_after=float(best_cut),
        passes=passes_done,
        moves_applied=total_moves,
    )
