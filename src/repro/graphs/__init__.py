"""Mixed-graph substrate: containers, Hermitian matrices, generators, netlists."""

from repro.graphs.mixed_graph import Edge, MixedGraph
from repro.graphs.hermitian import (
    DEFAULT_THETA,
    NORMALIZATIONS,
    degree_matrix,
    hermitian_adjacency,
    hermitian_laplacian,
    laplacian_spectrum,
    spectral_bounds,
)
from repro.graphs.generators import (
    cyclic_flow_sbm,
    ensure_connected,
    mixed_sbm,
    random_mixed_graph,
    sparse_mixed_sbm,
)
from repro.graphs.netlist import GATE_TYPES, Gate, Netlist, synthetic_netlist
from repro.graphs.hypergraph import EXPANSIONS, Hypergraph, Net
from repro.graphs.bench_parser import (
    C17_BENCH,
    S27_BENCH,
    load_c17,
    load_s27,
    parse_bench,
    write_bench,
)
from repro.graphs.refinement import FMResult, cut_size, fm_bipartition_refine
from repro.graphs import io

__all__ = [
    "Edge",
    "MixedGraph",
    "DEFAULT_THETA",
    "NORMALIZATIONS",
    "degree_matrix",
    "hermitian_adjacency",
    "hermitian_laplacian",
    "laplacian_spectrum",
    "spectral_bounds",
    "cyclic_flow_sbm",
    "ensure_connected",
    "mixed_sbm",
    "random_mixed_graph",
    "sparse_mixed_sbm",
    "GATE_TYPES",
    "Gate",
    "Netlist",
    "synthetic_netlist",
    "EXPANSIONS",
    "Hypergraph",
    "Net",
    "C17_BENCH",
    "S27_BENCH",
    "load_c17",
    "load_s27",
    "parse_bench",
    "write_bench",
    "FMResult",
    "cut_size",
    "fm_bipartition_refine",
    "io",
]
