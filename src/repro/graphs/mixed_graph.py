"""The :class:`MixedGraph` container.

A mixed graph has a set of nodes, *undirected* weighted edges, and
*directed* weighted arcs.  It is the single input type of every clustering
algorithm in this library.  Nodes are integers 0..n−1; labels can be
attached for netlist provenance.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.exceptions import GraphError
from repro.linalg import resolve_backend


@dataclass(frozen=True)
class Edge:
    """One weighted connection; ``directed`` distinguishes arcs from edges."""

    u: int
    v: int
    weight: float = 1.0
    directed: bool = False

    def __post_init__(self):
        if self.u == self.v:
            raise GraphError(f"self-loop on node {self.u} is not allowed")
        if self.weight <= 0:
            raise GraphError(f"edge weight must be positive, got {self.weight}")


class MixedGraph:
    """A graph with both undirected edges and directed arcs.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are the integers ``0..num_nodes-1``.
    node_labels:
        Optional human-readable labels (e.g. gate names from a netlist).

    Examples
    --------
    >>> g = MixedGraph(3)
    >>> g.add_edge(0, 1)            # undirected
    >>> g.add_arc(1, 2, weight=2.0) # directed 1 -> 2
    >>> g.num_edges, g.num_arcs
    (1, 1)
    """

    def __init__(self, num_nodes: int, node_labels=None):
        if num_nodes < 1:
            raise GraphError(f"graph needs at least one node, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._undirected: dict[tuple[int, int], float] = {}
        self._directed: dict[tuple[int, int], float] = {}
        if node_labels is not None:
            node_labels = list(node_labels)
            if len(node_labels) != num_nodes:
                raise GraphError(
                    f"{len(node_labels)} labels supplied for {num_nodes} nodes"
                )
        self._node_labels = node_labels

    # -- construction --------------------------------------------------------

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise GraphError(
                f"node {node} out of range for graph with {self._num_nodes} nodes"
            )
        return node

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or overwrite) an undirected edge {u, v}."""
        u, v = self._check_node(u), self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        key = (min(u, v), max(u, v))
        if (u, v) in self._directed or (v, u) in self._directed:
            raise GraphError(f"nodes {u},{v} already share an arc; remove it first")
        self._undirected[key] = float(weight)

    def add_arc(self, source: int, target: int, weight: float = 1.0) -> None:
        """Add (or overwrite) a directed arc source → target."""
        source, target = self._check_node(source), self._check_node(target)
        if source == target:
            raise GraphError(f"self-loop on node {source} is not allowed")
        if weight <= 0:
            raise GraphError(f"arc weight must be positive, got {weight}")
        key = (min(source, target), max(source, target))
        if key in self._undirected:
            raise GraphError(
                f"nodes {source},{target} already share an undirected edge"
            )
        if (target, source) in self._directed:
            # Antiparallel arcs merge into an undirected edge by convention:
            # flow in both directions carries no net orientation signal.
            weight_back = self._directed.pop((target, source))
            self._undirected[key] = float(weight) + weight_back
            return
        self._directed[(source, target)] = float(weight)

    def add_edges(self, edges) -> None:
        """Add undirected edges from ``(u, v)`` or ``(u, v, weight)`` rows.

        The single insertion point generators and netlist conversion feed
        their accumulated edge lists through.  An ndarray of shape
        ``(m, 2)`` or ``(m, 3)`` takes a vectorized bulk path — validation
        and key construction in NumPy, one dict update — with the exact
        semantics of looping :meth:`add_edge` (later duplicates overwrite
        earlier ones, edge/arc conflicts raise); any other iterable falls
        back to that loop.
        """
        if not (
            isinstance(edges, np.ndarray)
            and edges.ndim == 2
            and edges.shape[1] in (2, 3)
        ):
            for row in edges:
                self.add_edge(*row)
            return
        if edges.shape[0] == 0:
            return
        u = edges[:, 0].astype(np.int64)
        v = edges[:, 1].astype(np.int64)
        weights = (
            edges[:, 2].astype(float)
            if edges.shape[1] == 3
            else np.ones(edges.shape[0])
        )
        self._check_bulk(u, v, weights)
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keys = list(zip(lo.tolist(), hi.tolist()))
        directed = self._directed
        if directed:
            # O(1) dict probes per batch row — never a scan of the
            # accumulated table, so repeated block inserts stay O(edges).
            for a, b in keys:
                if (a, b) in directed or (b, a) in directed:
                    raise GraphError(
                        f"nodes {a},{b} already share an arc; remove it first"
                    )
        self._undirected.update(zip(keys, weights.tolist()))

    def add_arcs(self, arcs) -> None:
        """Add arcs from ``(source, target)`` or ``(source, target, weight)``
        rows.

        Same bulk contract as :meth:`add_edges`: ndarray input is validated
        and inserted vectorially, other iterables loop over
        :meth:`add_arc`.  Batches containing antiparallel pairs (within the
        batch or against existing arcs) fall back to the per-row loop so
        the merge-into-undirected convention is preserved.
        """
        if not (
            isinstance(arcs, np.ndarray)
            and arcs.ndim == 2
            and arcs.shape[1] in (2, 3)
        ):
            for row in arcs:
                self.add_arc(*row)
            return
        if arcs.shape[0] == 0:
            return
        source = arcs[:, 0].astype(np.int64)
        target = arcs[:, 1].astype(np.int64)
        weights = (
            arcs[:, 2].astype(float)
            if arcs.shape[1] == 3
            else np.ones(arcs.shape[0])
        )
        self._check_bulk(source, target, weights)
        pairs = list(zip(source.tolist(), target.tolist()))
        undirected = self._undirected
        if undirected:
            for s, t in pairs:
                if ((s, t) if s < t else (t, s)) in undirected:
                    raise GraphError(f"nodes {s},{t} already share an undirected edge")
        directed = self._directed
        # Within-batch antiparallel pairs are detected vectorially on
        # packed codes; cross-checks against the accumulated table are
        # O(1) dict probes per row.
        codes = self._encode(source, target)
        antiparallel = bool(np.isin(self._encode(target, source), codes).any())
        if not antiparallel and directed:
            antiparallel = any((t, s) in directed for s, t in pairs)
        if antiparallel:
            # Antiparallel pairs merge into undirected edges; the per-row
            # path implements that convention.
            for pair, weight in zip(pairs, weights.tolist()):
                self.add_arc(*pair, weight)
            return
        directed.update(zip(pairs, weights.tolist()))

    def _encode(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pack node pairs into single int64 codes for set-style lookups."""
        return a * np.int64(self._num_nodes) + b

    def _check_bulk(self, u: np.ndarray, v: np.ndarray, weights: np.ndarray):
        """Vectorized endpoint/weight validation shared by the bulk paths."""
        endpoints = np.concatenate([u, v])
        if endpoints.min() < 0 or endpoints.max() >= self._num_nodes:
            bad = endpoints[(endpoints < 0) | (endpoints >= self._num_nodes)][0]
            raise GraphError(
                f"node {bad} out of range for graph with "
                f"{self._num_nodes} nodes"
            )
        loops = u == v
        if loops.any():
            raise GraphError(f"self-loop on node {u[loops][0]} is not allowed")
        if weights.min() <= 0:
            raise GraphError(f"edge weight must be positive, got {weights.min()}")

    # -- accessors -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes n."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._undirected)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return len(self._directed)

    @property
    def node_labels(self) -> list[str] | None:
        """Optional node labels (copied)."""
        return None if self._node_labels is None else list(self._node_labels)

    def edges(self) -> list[Edge]:
        """All connections, undirected first, in deterministic order."""
        und = [
            Edge(u, v, w, directed=False)
            for (u, v), w in sorted(self._undirected.items())
        ]
        dirs = [
            Edge(u, v, w, directed=True)
            for (u, v), w in sorted(self._directed.items())
        ]
        return und + dirs

    def edge_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized view of all connections: ``(u, v, weight, directed)``.

        Rows follow the same deterministic order as :meth:`edges`
        (undirected first, each group sorted by endpoint pair) but skip the
        per-connection :class:`Edge` object construction — this is the
        construction path the sparse Hermitian matrices are built from.
        """
        und = sorted(self._undirected.items())
        dirs = sorted(self._directed.items())
        total = len(und) + len(dirs)
        u = np.empty(total, dtype=np.int64)
        v = np.empty(total, dtype=np.int64)
        w = np.empty(total, dtype=float)
        directed = np.zeros(total, dtype=bool)
        for index, ((a, b), weight) in enumerate(und):
            u[index], v[index], w[index] = a, b, weight
        offset = len(und)
        for index, ((a, b), weight) in enumerate(dirs):
            u[offset + index], v[offset + index] = a, b
            w[offset + index] = weight
        directed[offset:] = True
        return u, v, w, directed

    def has_edge(self, u: int, v: int) -> bool:
        """True if an undirected edge joins u and v."""
        u, v = self._check_node(u), self._check_node(v)
        return (min(u, v), max(u, v)) in self._undirected

    def has_arc(self, source: int, target: int) -> bool:
        """True if the arc source → target exists."""
        return (
            self._check_node(source),
            self._check_node(target),
        ) in self._directed

    def degree(self, node: int) -> float:
        """Weighted degree counting both edges and arcs (in + out)."""
        node = self._check_node(node)
        total = 0.0
        for (u, v), w in self._undirected.items():
            if node in (u, v):
                total += w
        for (u, v), w in self._directed.items():
            if node in (u, v):
                total += w
        return total

    def degrees(self) -> np.ndarray:
        """Vector of weighted degrees for all nodes."""
        out = np.zeros(self._num_nodes)
        for (u, v), w in self._undirected.items():
            out[u] += w
            out[v] += w
        for (u, v), w in self._directed.items():
            out[u] += w
            out[v] += w
        return out

    @property
    def directed_fraction(self) -> float:
        """Share of connections that are arcs — 0 for a plain graph."""
        total = self.num_edges + self.num_arcs
        return self.num_arcs / total if total else 0.0

    # -- conversions ---------------------------------------------------------

    def symmetrized_adjacency(self, backend="dense"):
        """Real adjacency matrix ignoring direction (baseline input).

        ``backend`` follows the ``repro.linalg`` contract: ``"dense"``
        (default, plain ndarray), ``"sparse"`` (CSR), or ``"auto"``.
        """
        u, v, w, _ = self.edge_arrays()
        shape = (self._num_nodes, self._num_nodes)
        return resolve_backend(backend, self._num_nodes).from_coo(
            np.concatenate([u, v]),
            np.concatenate([v, u]),
            np.concatenate([w, w]),
            shape,
            dtype=float,
        )

    def directed_adjacency(self, backend="dense"):
        """Non-symmetric adjacency: arcs appear once, edges twice."""
        u, v, w, directed = self.edge_arrays()
        und = ~directed
        shape = (self._num_nodes, self._num_nodes)
        return resolve_backend(backend, self._num_nodes).from_coo(
            np.concatenate([u, v[und]]),
            np.concatenate([v, u[und]]),
            np.concatenate([w, w[und]]),
            shape,
            dtype=float,
        )

    def to_networkx(self) -> nx.DiGraph:
        """Export as a DiGraph; undirected edges become arc pairs tagged
        ``mixed='undirected'``."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._num_nodes))
        for (u, v), w in self._undirected.items():
            graph.add_edge(u, v, weight=w, mixed="undirected")
            graph.add_edge(v, u, weight=w, mixed="undirected")
        for (u, v), w in self._directed.items():
            graph.add_edge(u, v, weight=w, mixed="directed")
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "MixedGraph":
        """Build from a NetworkX (Di)Graph.

        In a DiGraph, antiparallel arc pairs collapse into undirected
        edges; in an undirected Graph every edge is undirected.
        """
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        mixed = cls(len(nodes), node_labels=[str(n) for n in nodes])
        if not graph.is_directed():
            for u, v, data in graph.edges(data=True):
                if u == v:
                    continue
                mixed.add_edge(index[u], index[v], data.get("weight", 1.0))
            return mixed
        seen = set()
        for u, v, data in graph.edges(data=True):
            if u == v or (u, v) in seen:
                continue
            w = data.get("weight", 1.0)
            if graph.has_edge(v, u):
                seen.add((v, u))
                if data.get("mixed") == "undirected":
                    # Tagged by to_networkx: the pair encodes ONE undirected
                    # edge of weight w, not two independent flows.
                    mixed.add_edge(index[u], index[v], w)
                else:
                    w_back = graph[v][u].get("weight", 1.0)
                    mixed.add_edge(index[u], index[v], w + w_back)
            else:
                mixed.add_arc(index[u], index[v], w)
            seen.add((u, v))
        return mixed

    def subgraph(self, nodes) -> "MixedGraph":
        """The induced sub-mixed-graph on ``nodes`` (relabelled 0..len-1)."""
        nodes = [self._check_node(n) for n in nodes]
        if len(set(nodes)) != len(nodes):
            raise GraphError("duplicate nodes in subgraph request")
        index = {node: i for i, node in enumerate(nodes)}
        labels = [self._node_labels[n] for n in nodes] if self._node_labels else None
        sub = MixedGraph(len(nodes), node_labels=labels)
        for (u, v), w in self._undirected.items():
            if u in index and v in index:
                sub.add_edge(index[u], index[v], w)
        for (u, v), w in self._directed.items():
            if u in index and v in index:
                sub.add_arc(index[u], index[v], w)
        return sub

    def is_weakly_connected(self) -> bool:
        """Connectivity of the underlying undirected graph."""
        if self._num_nodes == 1:
            return True
        adj = self.symmetrized_adjacency() > 0
        visited = np.zeros(self._num_nodes, dtype=bool)
        stack = [0]
        visited[0] = True
        while stack:
            node = stack.pop()
            for neighbor in np.flatnonzero(adj[node]):
                if not visited[neighbor]:
                    visited[neighbor] = True
                    stack.append(int(neighbor))
        return bool(visited.all())

    def __repr__(self) -> str:
        return (
            f"MixedGraph(n={self._num_nodes}, edges={self.num_edges}, "
            f"arcs={self.num_arcs})"
        )
