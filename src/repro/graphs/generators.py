"""Random mixed-graph generators used by the experiment suite.

Three families:

* :func:`mixed_sbm` — a stochastic block model where *intra*-cluster
  connections are mostly undirected and *inter*-cluster connections are
  mostly directed arcs with a consistent orientation (the "mixed" signal).
* :func:`cyclic_flow_sbm` — clusters arranged on a directed cycle with
  *identical* edge densities everywhere: only the arc orientation carries
  cluster information, which direction-blind baselines provably cannot see.
  Sweeping ``direction_strength`` from 0.5 to 1.0 interpolates from "no
  signal" to "pure directional signal" (experiment F1).
* :func:`random_mixed_graph` — an Erdős–Rényi-style null model for
  robustness and property tests.

All generators return ``(graph, labels)`` with ``labels`` the ground-truth
cluster assignment, and take explicit seeds.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.mixed_graph import MixedGraph
from repro.utils.rng import ensure_rng


def _cluster_sizes(num_nodes: int, num_clusters: int) -> list[int]:
    if num_clusters < 1:
        raise GraphError(f"need at least one cluster, got {num_clusters}")
    if num_nodes < num_clusters:
        raise GraphError(
            f"cannot split {num_nodes} nodes into {num_clusters} clusters"
        )
    base = num_nodes // num_clusters
    sizes = [base] * num_clusters
    for i in range(num_nodes - base * num_clusters):
        sizes[i] += 1
    return sizes


def _labels_from_sizes(sizes) -> np.ndarray:
    labels = np.concatenate(
        [np.full(size, index, dtype=int) for index, size in enumerate(sizes)]
    )
    return labels


def mixed_sbm(
    num_nodes: int,
    num_clusters: int = 2,
    p_intra: float = 0.3,
    p_inter: float = 0.05,
    intra_directed_fraction: float = 0.1,
    inter_directed_fraction: float = 0.9,
    seed=None,
) -> tuple[MixedGraph, np.ndarray]:
    """Mixed stochastic block model.

    Within a cluster, node pairs connect with probability ``p_intra`` and
    the connection is an arc with probability ``intra_directed_fraction``
    (random orientation).  Across clusters, pairs connect with probability
    ``p_inter`` and become arcs with probability
    ``inter_directed_fraction`` oriented from the lower-index cluster to
    the higher-index one — a producer/consumer pattern.

    Returns
    -------
    (graph, labels):
        The mixed graph and the ground-truth cluster label per node.
    """
    for name, p in (
        ("p_intra", p_intra),
        ("p_inter", p_inter),
        ("intra_directed_fraction", intra_directed_fraction),
        ("inter_directed_fraction", inter_directed_fraction),
    ):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    sizes = _cluster_sizes(num_nodes, num_clusters)
    labels = _labels_from_sizes(sizes)
    graph = MixedGraph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            same = labels[u] == labels[v]
            p_connect = p_intra if same else p_inter
            if rng.random() >= p_connect:
                continue
            directed_fraction = (
                intra_directed_fraction if same else inter_directed_fraction
            )
            if rng.random() < directed_fraction:
                if same:
                    source, target = (u, v) if rng.random() < 0.5 else (v, u)
                elif labels[u] < labels[v]:
                    source, target = u, v
                else:
                    source, target = v, u
                graph.add_arc(source, target)
            else:
                graph.add_edge(u, v)
    return graph, labels


def cyclic_flow_sbm(
    num_nodes: int,
    num_clusters: int = 3,
    density: float = 0.25,
    direction_strength: float = 0.95,
    intra_directed: bool = False,
    seed=None,
) -> tuple[MixedGraph, np.ndarray]:
    """Clusters on a directed cycle with direction as the *only* signal.

    Every node pair (within or across adjacent clusters) connects with the
    same probability ``density``.  A connection between cluster c and
    cluster (c+1) mod k becomes an arc oriented forward along the cycle
    with probability ``direction_strength`` and backward otherwise — at
    0.5 orientation is pure noise and the clusters are
    information-theoretically invisible to any symmetrized method.

    Intra-cluster connections are undirected by default.  Because the
    Hermitian Laplacian can distinguish edge *type* (real vs complex
    entries), that alone is a weak cluster signal even at strength 0.5;
    set ``intra_directed=True`` to make intra-cluster connections randomly
    oriented arcs instead, so that *orientation consistency is the only
    signal in the graph* — the configuration the F1 crossover figure uses.

    Notes
    -----
    Pairs of non-adjacent clusters (cycle distance >= 2) are not connected,
    mirroring the meta-graph structure used in flow-clustering benchmarks.
    """
    if not 0.0 < density <= 1.0:
        raise GraphError(f"density must be in (0, 1], got {density}")
    if not 0.0 <= direction_strength <= 1.0:
        raise GraphError(
            f"direction_strength must be in [0, 1], got {direction_strength}"
        )
    if num_clusters < 2:
        raise GraphError("cyclic_flow_sbm needs at least two clusters")
    rng = ensure_rng(seed)
    sizes = _cluster_sizes(num_nodes, num_clusters)
    labels = _labels_from_sizes(sizes)
    graph = MixedGraph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            cu, cv = int(labels[u]), int(labels[v])
            if cu == cv:
                if rng.random() < density:
                    if intra_directed:
                        if rng.random() < 0.5:
                            graph.add_arc(u, v)
                        else:
                            graph.add_arc(v, u)
                    else:
                        graph.add_edge(u, v)
                continue
            forward = (cu + 1) % num_clusters == cv
            backward = (cv + 1) % num_clusters == cu
            if not (forward or backward):
                continue
            if rng.random() >= density:
                continue
            # orient along the cycle with probability direction_strength
            if forward:
                source, target = (u, v)
            else:
                source, target = (v, u)
            if rng.random() >= direction_strength:
                source, target = target, source
            graph.add_arc(source, target)
    return graph, labels


def _decode_triu_indices(
    indices: np.ndarray, size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Map linear indices over the strict upper triangle to (i, j) pairs.

    Pairs are enumerated row-major: row i owns ``size - 1 - i`` pairs
    ``(i, i+1) .. (i, size-1)``.  Exact integer decode via searchsorted —
    no floating-point quadratic-formula edge cases.
    """
    row_starts = np.concatenate(
        [[0], np.cumsum(size - 1 - np.arange(size - 1))]
    )
    i = np.searchsorted(row_starts, indices, side="right") - 1
    j = indices - row_starts[i] + i + 1
    return i, j


def sparse_mixed_sbm(
    num_nodes: int,
    num_clusters: int = 2,
    avg_intra_degree: float = 12.0,
    avg_inter_degree: float = 2.0,
    intra_directed_fraction: float = 0.1,
    inter_directed_fraction: float = 0.9,
    seed=None,
) -> tuple[MixedGraph, np.ndarray]:
    """Mixed SBM sampled in O(edges) — the large-graph twin of :func:`mixed_sbm`.

    :func:`mixed_sbm` visits all O(n²) node pairs in Python, which caps it
    at a few hundred nodes.  This generator is parameterized by *expected
    degrees* instead of pair probabilities and samples each block's edge
    set directly: draw the edge count from the exact binomial, then draw
    that many pair indices uniformly (duplicates removed — at sparse
    densities the expected shortfall is O(edges²/pairs), i.e. well under
    one edge per million pairs).  A 10k-node graph samples in milliseconds
    and never touches an n × n structure.

    Connection semantics mirror :func:`mixed_sbm`: intra-cluster
    connections become arcs with probability ``intra_directed_fraction``
    (random orientation); inter-cluster connections become arcs with
    probability ``inter_directed_fraction`` oriented from the lower-index
    cluster to the higher one.

    Returns
    -------
    (graph, labels):
        The mixed graph and the ground-truth cluster label per node.
    """
    for name, p in (
        ("intra_directed_fraction", intra_directed_fraction),
        ("inter_directed_fraction", inter_directed_fraction),
    ):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {p}")
    if avg_intra_degree < 0 or avg_inter_degree < 0:
        raise GraphError("expected degrees must be non-negative")
    rng = ensure_rng(seed)
    sizes = _cluster_sizes(num_nodes, num_clusters)
    labels = _labels_from_sizes(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    mean_size = num_nodes / num_clusters
    p_intra = min(1.0, avg_intra_degree / max(mean_size - 1.0, 1.0))
    p_inter = min(1.0, avg_inter_degree / max(num_nodes - mean_size, 1.0))
    edge_rows: list[np.ndarray] = []
    arc_rows: list[np.ndarray] = []
    for a in range(num_clusters):
        for b in range(a, num_clusters):
            if a == b:
                num_pairs = sizes[a] * (sizes[a] - 1) // 2
                p = p_intra
                directed_fraction = intra_directed_fraction
            else:
                num_pairs = sizes[a] * sizes[b]
                p = p_inter
                directed_fraction = inter_directed_fraction
            if num_pairs == 0 or p <= 0.0:
                continue
            count = int(rng.binomial(num_pairs, p))
            if count == 0:
                continue
            picks = np.unique(rng.integers(0, num_pairs, size=count))
            if a == b:
                i, j = _decode_triu_indices(picks, sizes[a])
                u = offsets[a] + i
                v = offsets[a] + j
            else:
                u = offsets[a] + picks // sizes[b]
                v = offsets[b] + picks % sizes[b]
            directed = rng.random(picks.size) < directed_fraction
            if a == b:
                flip = rng.random(picks.size) < 0.5
                source = np.where(flip, v, u)[directed]
                target = np.where(flip, u, v)[directed]
            else:
                # producer/consumer: lower-index cluster drives the higher
                source, target = u[directed], v[directed]
            arc_rows.append(np.column_stack([source, target]))
            undirected = ~directed
            edge_rows.append(np.column_stack([u[undirected], v[undirected]]))
    graph = MixedGraph(num_nodes)
    for block in edge_rows:
        graph.add_edges(block)
    for block in arc_rows:
        graph.add_arcs(block)
    return graph, labels


def random_mixed_graph(
    num_nodes: int,
    edge_probability: float = 0.2,
    directed_fraction: float = 0.5,
    weight_range: tuple[float, float] = (1.0, 1.0),
    seed=None,
) -> MixedGraph:
    """Erdős–Rényi-style null model with a tunable arc share and weights."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    if not 0.0 <= directed_fraction <= 1.0:
        raise GraphError(
            f"directed_fraction must be in [0, 1], got {directed_fraction}"
        )
    low, high = weight_range
    if low <= 0 or high < low:
        raise GraphError(f"invalid weight_range {weight_range}")
    rng = ensure_rng(seed)
    graph = MixedGraph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() >= edge_probability:
                continue
            weight = float(rng.uniform(low, high)) if high > low else low
            if rng.random() < directed_fraction:
                if rng.random() < 0.5:
                    graph.add_arc(u, v, weight)
                else:
                    graph.add_arc(v, u, weight)
            else:
                graph.add_edge(u, v, weight)
    return graph


def ensure_connected(graph: MixedGraph, seed=None) -> MixedGraph:
    """Add minimal undirected edges joining weakly connected components.

    Generators can produce disconnected graphs at low densities, which
    makes the zero Laplacian eigenvalue degenerate; stitching components
    keeps the clustering benchmark well-posed without altering the block
    signal materially.
    """
    rng = ensure_rng(seed)
    adjacency = graph.symmetrized_adjacency() > 0
    n = graph.num_nodes
    component = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if component[start] >= 0:
            continue
        stack = [start]
        component[start] = current
        while stack:
            node = stack.pop()
            for neighbor in np.flatnonzero(adjacency[node]):
                if component[neighbor] < 0:
                    component[neighbor] = current
                    stack.append(int(neighbor))
        current += 1
    if current == 1:
        return graph
    representatives = [int(np.flatnonzero(component == c)[0]) for c in range(current)]
    for first, second in zip(representatives, representatives[1:]):
        anchor = int(rng.choice(np.flatnonzero(component == component[second])))
        graph.add_edge(first, anchor)
    return graph
