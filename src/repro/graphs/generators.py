"""Random mixed-graph generators used by the experiment suite.

Three families:

* :func:`mixed_sbm` — a stochastic block model where *intra*-cluster
  connections are mostly undirected and *inter*-cluster connections are
  mostly directed arcs with a consistent orientation (the "mixed" signal).
* :func:`cyclic_flow_sbm` — clusters arranged on a directed cycle with
  *identical* edge densities everywhere: only the arc orientation carries
  cluster information, which direction-blind baselines provably cannot see.
  Sweeping ``direction_strength`` from 0.5 to 1.0 interpolates from "no
  signal" to "pure directional signal" (experiment F1).
* :func:`random_mixed_graph` — an Erdős–Rényi-style null model for
  robustness and property tests.

All generators return ``(graph, labels)`` with ``labels`` the ground-truth
cluster assignment, and take explicit seeds.

Generator versions
------------------
:func:`mixed_sbm`, :func:`cyclic_flow_sbm` and :func:`sparse_mixed_sbm`
accept a ``generator_version`` knob selecting one of two seed contracts
(for the sparse generator ``"v2"`` means *draw-exact* block edge counts —
see its docstring):

* ``"v1"`` (default) — the historical pure-Python per-pair loop.  At a
  fixed seed its output is byte-identical to every release since the seed
  repo, which is what keeps the paper's recorded sweep artifacts stable.
* ``"v2"`` — vectorized block-wise sampling: each cluster-block's pair set
  draws one Bernoulli array (chunked to bound memory), orientations are
  decided by whole-block draws, and edges land in the graph through the
  bulk insertion path.  The sampled *distribution* is identical to v1 —
  one Bernoulli(p) per node pair, the same orientation law — but the RNG
  stream is consumed in block order instead of pair order, so seeded
  outputs differ (a new, versioned seed contract).  At 1k+ nodes v2 is
  well over an order of magnitude faster; the speedup is gated in
  ``benchmarks/bench_generators.py``.

Experiments record the version they ran under in their sweep artifacts
(``spec.fixed["generator_version"]``), and the CLI exposes the knob as
``--generator-version`` on ``generate`` and ``experiments``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.mixed_graph import MixedGraph
from repro.utils.rng import ensure_rng

#: Supported generator seed contracts, oldest first.
GENERATOR_VERSIONS = ("v1", "v2")

#: Pairs sampled per vectorized Bernoulli draw in the v2 generators —
#: bounds the transient at ~32 MiB of uniforms however large the block is.
PAIR_CHUNK = 1 << 22


def _check_generator_version(version: str) -> str:
    if version not in GENERATOR_VERSIONS:
        raise GraphError(
            f"generator_version must be one of {GENERATOR_VERSIONS}, "
            f"got {version!r}"
        )
    return version


def _bernoulli_pair_indices(rng, num_pairs: int, p: float) -> np.ndarray:
    """Indices of successes among ``num_pairs`` Bernoulli(p) draws.

    One uniform per pair — the same per-pair Bernoulli law the v1 loops
    apply — drawn in :data:`PAIR_CHUNK`-sized slabs so a 10k-node block
    never materialises more than ~32 MiB of uniforms at once.
    """
    if num_pairs == 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    hits = []
    for start in range(0, num_pairs, PAIR_CHUNK):
        block = min(PAIR_CHUNK, num_pairs - start)
        hits.append(np.flatnonzero(rng.random(block) < p) + start)
    return np.concatenate(hits)


def _cluster_sizes(num_nodes: int, num_clusters: int) -> list[int]:
    if num_clusters < 1:
        raise GraphError(f"need at least one cluster, got {num_clusters}")
    if num_nodes < num_clusters:
        raise GraphError(f"cannot split {num_nodes} nodes into {num_clusters} clusters")
    base = num_nodes // num_clusters
    sizes = [base] * num_clusters
    for i in range(num_nodes - base * num_clusters):
        sizes[i] += 1
    return sizes


def _labels_from_sizes(sizes) -> np.ndarray:
    labels = np.concatenate(
        [np.full(size, index, dtype=int) for index, size in enumerate(sizes)]
    )
    return labels


def mixed_sbm(
    num_nodes: int,
    num_clusters: int = 2,
    p_intra: float = 0.3,
    p_inter: float = 0.05,
    intra_directed_fraction: float = 0.1,
    inter_directed_fraction: float = 0.9,
    seed=None,
    generator_version: str = "v1",
) -> tuple[MixedGraph, np.ndarray]:
    """Mixed stochastic block model.

    Within a cluster, node pairs connect with probability ``p_intra`` and
    the connection is an arc with probability ``intra_directed_fraction``
    (random orientation).  Across clusters, pairs connect with probability
    ``p_inter`` and become arcs with probability
    ``inter_directed_fraction`` oriented from the lower-index cluster to
    the higher-index one — a producer/consumer pattern.

    ``generator_version`` selects the seed contract (see the module
    docstring): ``"v1"`` is the byte-stable per-pair loop, ``"v2"`` the
    vectorized block sampler with an identical distribution but a new
    stream layout.

    Returns
    -------
    (graph, labels):
        The mixed graph and the ground-truth cluster label per node.
    """
    for name, p in (
        ("p_intra", p_intra),
        ("p_inter", p_inter),
        ("intra_directed_fraction", intra_directed_fraction),
        ("inter_directed_fraction", inter_directed_fraction),
    ):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {p}")
    _check_generator_version(generator_version)
    rng = ensure_rng(seed)
    sizes = _cluster_sizes(num_nodes, num_clusters)
    labels = _labels_from_sizes(sizes)
    if generator_version == "v2":
        graph = _mixed_sbm_v2(
            rng,
            sizes,
            p_intra,
            p_inter,
            intra_directed_fraction,
            inter_directed_fraction,
            num_nodes,
        )
        return graph, labels
    graph = MixedGraph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            same = labels[u] == labels[v]
            p_connect = p_intra if same else p_inter
            if rng.random() >= p_connect:
                continue
            directed_fraction = (
                intra_directed_fraction if same else inter_directed_fraction
            )
            if rng.random() < directed_fraction:
                if same:
                    source, target = (u, v) if rng.random() < 0.5 else (v, u)
                elif labels[u] < labels[v]:
                    source, target = u, v
                else:
                    source, target = v, u
                graph.add_arc(source, target)
            else:
                graph.add_edge(u, v)
    return graph, labels


def _mixed_sbm_v2(
    rng,
    sizes: list[int],
    p_intra: float,
    p_inter: float,
    intra_directed_fraction: float,
    inter_directed_fraction: float,
    num_nodes: int,
) -> MixedGraph:
    """Vectorized block-wise sampler behind ``mixed_sbm(..., "v2")``.

    Per cluster block: one Bernoulli array over the block's pairs, one
    directed/undirected draw per connection, one orientation draw per
    intra-cluster arc — the same law as the v1 pair loop, consumed in
    block order.
    """
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    num_clusters = len(sizes)
    edge_blocks: list[np.ndarray] = []
    arc_blocks: list[np.ndarray] = []
    for a in range(num_clusters):
        for b in range(a, num_clusters):
            if a == b:
                num_pairs = sizes[a] * (sizes[a] - 1) // 2
                p, directed_fraction = p_intra, intra_directed_fraction
            else:
                num_pairs = sizes[a] * sizes[b]
                p, directed_fraction = p_inter, inter_directed_fraction
            picks = _bernoulli_pair_indices(rng, num_pairs, p)
            if picks.size == 0:
                continue
            if a == b:
                i, j = _decode_triu_indices(picks, sizes[a])
                u = offsets[a] + i
                v = offsets[a] + j
            else:
                u = offsets[a] + picks // sizes[b]
                v = offsets[b] + picks % sizes[b]
            directed = rng.random(picks.size) < directed_fraction
            if a == b:
                # random orientation within a cluster
                du, dv = u[directed], v[directed]
                flip = rng.random(du.size) < 0.5
                source = np.where(flip, du, dv)
                target = np.where(flip, dv, du)
            else:
                # producer/consumer: lower-index cluster drives the higher
                source, target = u[directed], v[directed]
            arc_blocks.append(np.column_stack([source, target]))
            undirected = ~directed
            edge_blocks.append(np.column_stack([u[undirected], v[undirected]]))
    graph = MixedGraph(num_nodes)
    for block in edge_blocks:
        graph.add_edges(block)
    for block in arc_blocks:
        graph.add_arcs(block)
    return graph


def cyclic_flow_sbm(
    num_nodes: int,
    num_clusters: int = 3,
    density: float = 0.25,
    direction_strength: float = 0.95,
    intra_directed: bool = False,
    seed=None,
    generator_version: str = "v1",
) -> tuple[MixedGraph, np.ndarray]:
    """Clusters on a directed cycle with direction as the *only* signal.

    Every node pair (within or across adjacent clusters) connects with the
    same probability ``density``.  A connection between cluster c and
    cluster (c+1) mod k becomes an arc oriented forward along the cycle
    with probability ``direction_strength`` and backward otherwise — at
    0.5 orientation is pure noise and the clusters are
    information-theoretically invisible to any symmetrized method.

    Intra-cluster connections are undirected by default.  Because the
    Hermitian Laplacian can distinguish edge *type* (real vs complex
    entries), that alone is a weak cluster signal even at strength 0.5;
    set ``intra_directed=True`` to make intra-cluster connections randomly
    oriented arcs instead, so that *orientation consistency is the only
    signal in the graph* — the configuration the F1 crossover figure uses.

    Notes
    -----
    Pairs of non-adjacent clusters (cycle distance >= 2) are not connected,
    mirroring the meta-graph structure used in flow-clustering benchmarks.

    ``generator_version`` selects the seed contract exactly as in
    :func:`mixed_sbm`: ``"v1"`` is byte-stable, ``"v2"`` vectorized with
    the same distribution on a new stream layout.
    """
    if not 0.0 < density <= 1.0:
        raise GraphError(f"density must be in (0, 1], got {density}")
    if not 0.0 <= direction_strength <= 1.0:
        raise GraphError(
            f"direction_strength must be in [0, 1], got {direction_strength}"
        )
    if num_clusters < 2:
        raise GraphError("cyclic_flow_sbm needs at least two clusters")
    _check_generator_version(generator_version)
    rng = ensure_rng(seed)
    sizes = _cluster_sizes(num_nodes, num_clusters)
    labels = _labels_from_sizes(sizes)
    if generator_version == "v2":
        graph = _cyclic_flow_sbm_v2(
            rng, sizes, density, direction_strength, intra_directed, num_nodes
        )
        return graph, labels
    graph = MixedGraph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            cu, cv = int(labels[u]), int(labels[v])
            if cu == cv:
                if rng.random() < density:
                    if intra_directed:
                        if rng.random() < 0.5:
                            graph.add_arc(u, v)
                        else:
                            graph.add_arc(v, u)
                    else:
                        graph.add_edge(u, v)
                continue
            forward = (cu + 1) % num_clusters == cv
            backward = (cv + 1) % num_clusters == cu
            if not (forward or backward):
                continue
            if rng.random() >= density:
                continue
            # orient along the cycle with probability direction_strength
            if forward:
                source, target = (u, v)
            else:
                source, target = (v, u)
            if rng.random() >= direction_strength:
                source, target = target, source
            graph.add_arc(source, target)
    return graph, labels


def _cyclic_flow_sbm_v2(
    rng,
    sizes: list[int],
    density: float,
    direction_strength: float,
    intra_directed: bool,
    num_nodes: int,
) -> MixedGraph:
    """Vectorized block-wise sampler behind ``cyclic_flow_sbm(..., "v2")``.

    Intra-cluster blocks first (cluster order), then the adjacent
    cross-cluster blocks in (a, b) order — each block draws one Bernoulli
    array over its pairs and one orientation array over its connections,
    matching the v1 per-pair law with a block-ordered stream.
    """
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    num_clusters = len(sizes)
    edge_blocks: list[np.ndarray] = []
    arc_blocks: list[np.ndarray] = []
    for c in range(num_clusters):
        num_pairs = sizes[c] * (sizes[c] - 1) // 2
        picks = _bernoulli_pair_indices(rng, num_pairs, density)
        if picks.size == 0:
            continue
        i, j = _decode_triu_indices(picks, sizes[c])
        u = offsets[c] + i
        v = offsets[c] + j
        if intra_directed:
            flip = rng.random(picks.size) < 0.5
            arc_blocks.append(
                np.column_stack([np.where(flip, u, v), np.where(flip, v, u)])
            )
        else:
            edge_blocks.append(np.column_stack([u, v]))
    for a in range(num_clusters):
        for b in range(a + 1, num_clusters):
            # v1 resolves pairs in (u, v) node order with u < v, and labels
            # ascend with node index — so cross pairs always present as
            # (cluster a, cluster b) with a < b, forward checked first.
            forward = (a + 1) % num_clusters == b
            backward = (b + 1) % num_clusters == a
            if not (forward or backward):
                continue
            picks = _bernoulli_pair_indices(rng, sizes[a] * sizes[b], density)
            if picks.size == 0:
                continue
            u = offsets[a] + picks // sizes[b]
            v = offsets[b] + picks % sizes[b]
            if forward:
                source, target = u, v
            else:
                source, target = v, u
            # orient along the cycle with probability direction_strength
            swap = rng.random(picks.size) >= direction_strength
            arc_blocks.append(
                np.column_stack(
                    [
                        np.where(swap, target, source),
                        np.where(swap, source, target),
                    ]
                )
            )
    graph = MixedGraph(num_nodes)
    for block in edge_blocks:
        graph.add_edges(block)
    for block in arc_blocks:
        graph.add_arcs(block)
    return graph


def _decode_triu_indices(
    indices: np.ndarray, size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Map linear indices over the strict upper triangle to (i, j) pairs.

    Pairs are enumerated row-major: row i owns ``size - 1 - i`` pairs
    ``(i, i+1) .. (i, size-1)``.  Exact integer decode via searchsorted —
    no floating-point quadratic-formula edge cases.
    """
    row_starts = np.concatenate([[0], np.cumsum(size - 1 - np.arange(size - 1))])
    i = np.searchsorted(row_starts, indices, side="right") - 1
    j = indices - row_starts[i] + i + 1
    return i, j


def _distinct_pair_indices(rng, num_pairs: int, count: int) -> np.ndarray:
    """Exactly ``count`` distinct pair indices in ``[0, num_pairs)``.

    The draw-exact sampler behind ``sparse_mixed_sbm(..., "v2")``: draw
    with replacement, deduplicate, and top up the shortfall until the set
    is full.  At sparse densities the first draw already covers ~all of
    ``count`` (expected shortfall O(count²/num_pairs)), so the loop runs
    once or twice; termination is guaranteed because every round adds at
    least the still-missing indices with positive probability and
    ``count <= num_pairs``.
    """
    if count > num_pairs:
        raise GraphError(
            f"cannot draw {count} distinct pairs from {num_pairs}"
        )
    picks = np.unique(rng.integers(0, num_pairs, size=count))
    while picks.size < count:
        extra = rng.integers(0, num_pairs, size=count - picks.size)
        picks = np.unique(np.concatenate([picks, extra]))
    return picks


def sparse_mixed_sbm(
    num_nodes: int,
    num_clusters: int = 2,
    avg_intra_degree: float = 12.0,
    avg_inter_degree: float = 2.0,
    intra_directed_fraction: float = 0.1,
    inter_directed_fraction: float = 0.9,
    seed=None,
    generator_version: str = "v1",
) -> tuple[MixedGraph, np.ndarray]:
    """Mixed SBM sampled in O(edges) — the large-graph twin of :func:`mixed_sbm`.

    :func:`mixed_sbm` visits all O(n²) node pairs in Python, which caps it
    at a few hundred nodes.  This generator is parameterized by *expected
    degrees* instead of pair probabilities and samples each block's edge
    set directly: draw the edge count from the exact binomial, then draw
    that many pair indices uniformly.  A 10k-node graph samples in
    milliseconds and never touches an n × n structure.

    ``generator_version`` selects the seed contract, mirroring the dense
    generators:

    * ``"v1"`` (default) — the historical sampler: duplicates among the
      uniform pair draws are simply removed, so a block can come up
      slightly short of its binomial edge count (expected shortfall
      O(edges²/pairs) — well under one edge per million pairs at sparse
      densities).  Byte-identical to every release since the generator
      landed (golden-pinned in ``tests/graphs/test_generator_versions.py``).
    * ``"v2"`` — **draw-exact**: shortfalls are topped up until each block
      holds exactly its binomially drawn number of distinct edges, so the
      sampled edge count matches the model exactly at any density.  New
      stream layout (the top-up consumes extra draws), same distribution
      otherwise.

    Connection semantics mirror :func:`mixed_sbm`: intra-cluster
    connections become arcs with probability ``intra_directed_fraction``
    (random orientation); inter-cluster connections become arcs with
    probability ``inter_directed_fraction`` oriented from the lower-index
    cluster to the higher one.

    Returns
    -------
    (graph, labels):
        The mixed graph and the ground-truth cluster label per node.
    """
    for name, p in (
        ("intra_directed_fraction", intra_directed_fraction),
        ("inter_directed_fraction", inter_directed_fraction),
    ):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {p}")
    if avg_intra_degree < 0 or avg_inter_degree < 0:
        raise GraphError("expected degrees must be non-negative")
    _check_generator_version(generator_version)
    rng = ensure_rng(seed)
    sizes = _cluster_sizes(num_nodes, num_clusters)
    labels = _labels_from_sizes(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    mean_size = num_nodes / num_clusters
    p_intra = min(1.0, avg_intra_degree / max(mean_size - 1.0, 1.0))
    p_inter = min(1.0, avg_inter_degree / max(num_nodes - mean_size, 1.0))
    edge_rows: list[np.ndarray] = []
    arc_rows: list[np.ndarray] = []
    for a in range(num_clusters):
        for b in range(a, num_clusters):
            if a == b:
                num_pairs = sizes[a] * (sizes[a] - 1) // 2
                p = p_intra
                directed_fraction = intra_directed_fraction
            else:
                num_pairs = sizes[a] * sizes[b]
                p = p_inter
                directed_fraction = inter_directed_fraction
            if num_pairs == 0 or p <= 0.0:
                continue
            count = int(rng.binomial(num_pairs, p))
            if count == 0:
                continue
            if generator_version == "v2":
                picks = _distinct_pair_indices(rng, num_pairs, count)
            else:
                picks = np.unique(rng.integers(0, num_pairs, size=count))
            if a == b:
                i, j = _decode_triu_indices(picks, sizes[a])
                u = offsets[a] + i
                v = offsets[a] + j
            else:
                u = offsets[a] + picks // sizes[b]
                v = offsets[b] + picks % sizes[b]
            directed = rng.random(picks.size) < directed_fraction
            if a == b:
                flip = rng.random(picks.size) < 0.5
                source = np.where(flip, v, u)[directed]
                target = np.where(flip, u, v)[directed]
            else:
                # producer/consumer: lower-index cluster drives the higher
                source, target = u[directed], v[directed]
            arc_rows.append(np.column_stack([source, target]))
            undirected = ~directed
            edge_rows.append(np.column_stack([u[undirected], v[undirected]]))
    graph = MixedGraph(num_nodes)
    for block in edge_rows:
        graph.add_edges(block)
    for block in arc_rows:
        graph.add_arcs(block)
    return graph, labels


def random_mixed_graph(
    num_nodes: int,
    edge_probability: float = 0.2,
    directed_fraction: float = 0.5,
    weight_range: tuple[float, float] = (1.0, 1.0),
    seed=None,
) -> MixedGraph:
    """Erdős–Rényi-style null model with a tunable arc share and weights."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    if not 0.0 <= directed_fraction <= 1.0:
        raise GraphError(
            f"directed_fraction must be in [0, 1], got {directed_fraction}"
        )
    low, high = weight_range
    if low <= 0 or high < low:
        raise GraphError(f"invalid weight_range {weight_range}")
    rng = ensure_rng(seed)
    graph = MixedGraph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() >= edge_probability:
                continue
            weight = float(rng.uniform(low, high)) if high > low else low
            if rng.random() < directed_fraction:
                if rng.random() < 0.5:
                    graph.add_arc(u, v, weight)
                else:
                    graph.add_arc(v, u, weight)
            else:
                graph.add_edge(u, v, weight)
    return graph


def ensure_connected(graph: MixedGraph, seed=None) -> MixedGraph:
    """Add minimal undirected edges joining weakly connected components.

    Generators can produce disconnected graphs at low densities, which
    makes the zero Laplacian eigenvalue degenerate; stitching components
    keeps the clustering benchmark well-posed without altering the block
    signal materially.
    """
    rng = ensure_rng(seed)
    adjacency = graph.symmetrized_adjacency() > 0
    n = graph.num_nodes
    component = np.full(n, -1, dtype=int)
    current = 0
    for start in range(n):
        if component[start] >= 0:
            continue
        stack = [start]
        component[start] = current
        while stack:
            node = stack.pop()
            for neighbor in np.flatnonzero(adjacency[node]):
                if component[neighbor] < 0:
                    component[neighbor] = current
                    stack.append(int(neighbor))
        current += 1
    if current == 1:
        return graph
    representatives = [int(np.flatnonzero(component == c)[0]) for c in range(current)]
    for first, second in zip(representatives, representatives[1:]):
        anchor = int(rng.choice(np.flatnonzero(component == component[second])))
        graph.add_edge(first, anchor)
    return graph
