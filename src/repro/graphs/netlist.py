"""Gate-level netlist model and conversion to mixed graphs.

A netlist is the DAC-native workload: logic gates connected by nets.  Signal
flow from a driver to a sink is inherently *directed*, while some physical
relations (shared buses, latched feedback pairs, abutted macro pins) are
*undirected*.  Converting a netlist to a mixed graph therefore produces
exactly the structure the Hermitian Laplacian is designed for, and module
boundaries give natural ground-truth clusters.

:func:`synthetic_netlist` generates hierarchical designs: ``num_modules``
blocks of gates with dense internal connectivity and a sparse forward
inter-module signal flow, with ground-truth module labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.mixed_graph import MixedGraph
from repro.utils.rng import ensure_rng

GATE_TYPES = ("INPUT", "OUTPUT", "AND", "NAND", "OR", "NOR", "NOT", "BUF", "XOR", "DFF")


@dataclass
class Gate:
    """One netlist cell: a name, a type, and its input net names."""

    name: str
    gate_type: str
    inputs: tuple[str, ...] = ()

    def __post_init__(self):
        if self.gate_type not in GATE_TYPES:
            raise GraphError(f"unknown gate type {self.gate_type!r}")


@dataclass
class Netlist:
    """A gate-level netlist: gates keyed by output-net name.

    Attributes
    ----------
    name:
        Design name.
    gates:
        All cells, including INPUT pseudo-gates.
    module_of:
        Optional ground-truth module index per gate name (synthetic designs).
    """

    name: str
    gates: list[Gate] = field(default_factory=list)
    module_of: dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        names = [g.name for g in self.gates]
        if len(set(names)) != len(names):
            raise GraphError(f"duplicate gate names in netlist {self.name!r}")

    @property
    def num_gates(self) -> int:
        """Number of cells, inputs included."""
        return len(self.gates)

    def gate_names(self) -> list[str]:
        """All cell names in definition order."""
        return [g.name for g in self.gates]

    def validate(self) -> None:
        """Check every referenced input net has a driver."""
        known = set(self.gate_names())
        for gate in self.gates:
            for net in gate.inputs:
                if net not in known:
                    raise GraphError(f"gate {gate.name!r} reads undriven net {net!r}")

    def to_mixed_graph(
        self,
        include_inputs: bool = True,
        bidirectional_types: tuple[str, ...] = ("DFF",),
        net_cliques: bool = True,
        clique_weight: float = 0.5,
    ) -> MixedGraph:
        """Convert to a mixed graph.

        Each driver→sink connection becomes an arc.  Connections into cells
        whose type is listed in ``bidirectional_types`` become undirected
        edges — sequential elements couple their fan-in cone both ways
        (timing constraints propagate backward through registers during
        retiming, the standard EDA justification for treating them as
        undirected).

        With ``net_cliques`` enabled, the sinks of every multi-fan-out net
        are additionally pairwise coupled with undirected edges of weight
        ``clique_weight`` — the classic clique expansion of hypergraph
        nets used throughout partitioning literature.  Sinks of one net
        belong together physically regardless of signal direction, and the
        extra undirected mass keeps the Hermitian Laplacian's intra-module
        phases coherent.

        Parameters
        ----------
        include_inputs:
            Keep INPUT pseudo-gates as nodes (``False`` drops them).
        bidirectional_types:
            Gate types whose fan-in connections are undirected.
        net_cliques:
            Add clique-expansion edges among sinks of shared nets.
        clique_weight:
            Weight of each clique-expansion edge.
        """
        self.validate()
        if clique_weight <= 0:
            raise GraphError(f"clique_weight must be positive, got {clique_weight}")
        kept = [g for g in self.gates if include_inputs or g.gate_type != "INPUT"]
        index = {g.name: i for i, g in enumerate(kept)}
        # Accumulate connections in plain sets/lists and insert once at the
        # end, preserving the exact conflict semantics of incremental
        # add_edge/add_arc calls (set membership replaces the per-call
        # has_edge/has_arc probes).
        undirected: set[tuple[int, int]] = set()
        arcs: set[tuple[int, int]] = set()
        edge_list: list[tuple[int, int, float]] = []
        arc_list: list[tuple[int, int, float]] = []
        sinks_of: dict[str, list[int]] = {}
        for gate in kept:
            for net in gate.inputs:
                if net not in index:
                    continue  # driver was an excluded INPUT
                driver, sink = index[net], index[gate.name]
                if driver == sink:
                    continue
                sinks_of.setdefault(net, []).append(sink)
                key = (min(driver, sink), max(driver, sink))
                if gate.gate_type in bidirectional_types:
                    if key not in undirected:
                        if (driver, sink) in arcs or (sink, driver) in arcs:
                            raise GraphError(
                                f"nodes {driver},{sink} already share an arc; "
                                "remove it first"
                            )
                        undirected.add(key)
                        edge_list.append((driver, sink, 1.0))
                elif (
                    (driver, sink) not in arcs
                    and (sink, driver) not in arcs
                    and key not in undirected
                ):
                    arcs.add((driver, sink))
                    arc_list.append((driver, sink, 1.0))
        if net_cliques:
            for sinks in sinks_of.values():
                for i, a in enumerate(sinks):
                    for b in sinks[i + 1 :]:
                        key = (min(a, b), max(a, b))
                        if (
                            a != b
                            and key not in undirected
                            and (a, b) not in arcs
                            and (b, a) not in arcs
                        ):
                            undirected.add(key)
                            edge_list.append((a, b, clique_weight))
        graph = MixedGraph(len(kept), node_labels=[g.name for g in kept])
        graph.add_edges(edge_list)
        graph.add_arcs(arc_list)
        return graph

    def module_labels(self, include_inputs: bool = True) -> np.ndarray:
        """Ground-truth module index per kept node (synthetic designs only)."""
        if not self.module_of:
            raise GraphError(f"netlist {self.name!r} carries no module labels")
        kept = [g for g in self.gates if include_inputs or g.gate_type != "INPUT"]
        return np.array([self.module_of[g.name] for g in kept], dtype=int)


def synthetic_netlist(
    num_modules: int = 3,
    gates_per_module: int = 12,
    internal_fanin: int = 2,
    cross_module_nets: int = 3,
    feedback_registers: int = 2,
    seed=None,
    name: str = "synthetic",
) -> Netlist:
    """Generate a hierarchical random netlist with known module structure.

    Each module is a DAG of combinational gates fed by a few primary
    inputs; ``cross_module_nets`` arcs connect consecutive modules
    (module i drives module i+1), and ``feedback_registers`` DFF cells per
    module create undirected couplings inside the module.

    Returns
    -------
    :class:`Netlist` with ``module_of`` ground truth filled in.
    """
    if num_modules < 1 or gates_per_module < 3:
        raise GraphError("need >= 1 module and >= 3 gates per module")
    if internal_fanin < 1:
        raise GraphError("internal_fanin must be >= 1")
    rng = ensure_rng(seed)
    netlist = Netlist(name=name)
    combinational = [t for t in GATE_TYPES if t not in ("INPUT", "OUTPUT", "DFF")]
    per_module_names: list[list[str]] = []
    for module in range(num_modules):
        names: list[str] = []
        num_inputs = max(2, gates_per_module // 4)
        for i in range(num_inputs):
            gate_name = f"m{module}_in{i}"
            netlist.gates.append(Gate(gate_name, "INPUT"))
            netlist.module_of[gate_name] = module
            names.append(gate_name)
        num_logic = gates_per_module - num_inputs
        for i in range(num_logic):
            gate_name = f"m{module}_g{i}"
            fanin = min(internal_fanin, len(names))
            sources = rng.choice(len(names), size=fanin, replace=False)
            gate_type = combinational[int(rng.integers(len(combinational)))]
            if gate_type == "NOT" or gate_type == "BUF":
                sources = sources[:1]
            netlist.gates.append(
                Gate(gate_name, gate_type, tuple(names[s] for s in sources))
            )
            netlist.module_of[gate_name] = module
            names.append(gate_name)
        for i in range(feedback_registers):
            gate_name = f"m{module}_ff{i}"
            source = names[int(rng.integers(len(names)))]
            netlist.gates.append(Gate(gate_name, "DFF", (source,)))
            netlist.module_of[gate_name] = module
            names.append(gate_name)
        per_module_names.append(names)
    for module in range(num_modules - 1):
        drivers = per_module_names[module]
        for i in range(cross_module_nets):
            driver = drivers[int(rng.integers(len(drivers)))]
            gate_name = f"x{module}_{i}"
            netlist.gates.append(Gate(gate_name, "BUF", (driver,)))
            netlist.module_of[gate_name] = module + 1
            per_module_names[module + 1].append(gate_name)
    return netlist
