"""Tests for RNG and linear-algebra utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    ensure_rng,
    frobenius_distance,
    is_hermitian,
    is_psd,
    is_unitary,
    next_power_of_two,
    num_qubits_for,
    spawn_rngs,
)


class TestRng:
    def test_ensure_rng_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_from_int_reproducible(self):
        assert ensure_rng(5).integers(1000) == ensure_rng(5).integers(1000)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [r.integers(10**9) for r in spawn_rngs(3, 4)]
        second = [r.integers(10**9) for r in spawn_rngs(3, 4)]
        assert first == second
        assert len(set(first)) == 4  # streams differ from one another

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestLinalgPredicates:
    def test_is_hermitian(self):
        assert is_hermitian(np.array([[1, 1j], [-1j, 2]]))
        assert not is_hermitian(np.array([[1, 1], [0, 1]]))
        assert not is_hermitian(np.ones((2, 3)))

    def test_is_unitary(self):
        assert is_unitary(np.eye(3))
        theta = 0.3
        rotation = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert is_unitary(rotation)
        assert not is_unitary(2 * np.eye(2))

    def test_is_psd(self):
        assert is_psd(np.eye(2))
        assert not is_psd(np.diag([1.0, -1.0]))
        assert not is_psd(np.array([[0, 1], [0, 0]]))

    @given(st.integers(1, 10**6))
    def test_next_power_of_two(self, value):
        power = next_power_of_two(value)
        assert power >= value
        assert power & (power - 1) == 0
        assert power < 2 * value

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_num_qubits_for(self):
        assert num_qubits_for(2) == 1
        assert num_qubits_for(5) == 3
        assert num_qubits_for(8) == 3

    def test_frobenius_distance(self):
        assert frobenius_distance(np.eye(2), np.eye(2)) == 0.0
        assert np.isclose(frobenius_distance(np.zeros((2, 2)), np.eye(2)), np.sqrt(2))
