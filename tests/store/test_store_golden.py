"""Golden bit-identity of store-backed runs — cold and warm.

Re-pins all six ``tests/pipeline/test_golden.py`` digests through runs
that attach the shared content-addressed store: the cold pass (filling
the store) and the warm pass (memory tier dropped, so every spectral
reuse is a cross-process disk hit) must both land on the exact digests
recorded before the store existed.  A store that changed a single bit of
any stage fails here.
"""

import pytest
from test_golden import GOLDEN, build_case, result_digest

from repro import QSCPipeline
from repro.core.qpe_engine import clear_spectral_cache
from repro.store import get_store


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_store_backed_run_is_bit_transparent(name, tmp_path):
    graph, k, config = build_case(name)
    config = config.with_updates(store_dir=str(tmp_path))

    clear_spectral_cache()
    cold = QSCPipeline(k, config).run(graph)
    assert result_digest(cold) == GOLDEN[name]
    cold_counters = get_store().counters()
    assert cold_counters["misses"] > 0  # the cold pass filled the store

    # Drop the memory tier: the warm pass simulates a brand-new worker
    # process that can only be served by the shared on-disk tier.
    clear_spectral_cache()
    warm = QSCPipeline(k, config).run(graph)
    assert result_digest(warm) == GOLDEN[name]
    warm_counters = get_store().counters()
    assert warm_counters["disk_hits"] > 0, warm_counters
    assert warm_counters["misses"] == 0, warm_counters
    assert warm_counters["corrupt_evictions"] == 0
