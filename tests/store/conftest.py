"""Shared fixtures of the content-store test harness.

Every test in this directory starts and ends with the process-wide store
in its pristine state — memory-only, enabled, zeroed counters — so
store-attaching tests (golden store-backed runs, corruption injection)
cannot leak a disk root or counter residue into each other or into the
rest of the suite.
"""

import pathlib
import sys

import pytest

# The golden store-backed tests reuse the pinned digests and case
# builders of ``tests/pipeline/test_golden.py`` (same cross-directory
# import ``tests/pipeline/test_sharding.py`` already relies on).
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "pipeline"))

from repro.store import configure_store, get_store  # noqa: E402


@pytest.fixture(autouse=True)
def pristine_global_store():
    """Detach + wipe the process-wide store around every test."""
    configure_store(root=None, enabled=True)
    get_store().clear_memory()
    yield
    configure_store(root=None, enabled=True)
    get_store().clear_memory()
