"""Store-directory test hygiene.

Every test in this directory runs between the shared ``pristine_store``
brackets (see ``tests/conftest.py``, which also puts ``tests/pipeline``
on ``sys.path`` for the golden-digest imports) — store-attaching tests
cannot leak a disk root or counter residue into each other or into the
rest of the suite.
"""

import pytest


@pytest.fixture(autouse=True)
def _pristine_global_store(pristine_store):
    yield
