"""Property and contract tests of :mod:`repro.store.content_store`.

The round-trip law under test: for any payload of numpy arrays,
``decode_payload(encode_payload(ns, key, payload))`` hands back
bit-identical arrays, and a :class:`ContentStore` serves the same bits
from either tier, hit or miss.
"""

import numpy as np
import pytest

from repro.exceptions import ClusteringError, StoreError
from repro.store import (
    COUNTER_KEYS,
    ContentStore,
    content_key,
    decode_payload,
    encode_payload,
)
from repro.store.content_store import MAGIC, _HEADER_BYTES

PAYLOADS = {
    "float64": {"a": np.linspace(0.0, 1.0, 64).reshape(8, 8)},
    "complex128": {"z": np.exp(1j * np.linspace(0.0, 6.0, 33))},
    "int64": {"n": np.arange(-5, 100, dtype=np.int64)},
    "bool": {"mask": np.array([True, False, True])},
    "scalar": {"x": np.float64(2.5), "k": np.int64(7)},
    "empty": {"none": np.zeros((0, 4))},
    "mixed": {
        "rows": np.full((3, 3), 1 / 3, dtype=np.complex128),
        "norms": np.array([1.0, 0.5, 0.25]),
        "labels": np.array([0, 1, 0], dtype=np.int64),
    },
}


def assert_payloads_identical(actual, expected):
    assert sorted(actual) == sorted(expected)
    for name in expected:
        left = np.asarray(actual[name])
        right = np.asarray(expected[name])
        assert left.dtype == right.dtype, name
        assert left.shape == right.shape, name
        assert left.tobytes() == right.tobytes(), name


class TestContentKey:
    def test_stable_hex_and_path_safe(self):
        key = content_key("spectral", "decomposition@abc123")
        assert key == content_key("spectral", "decomposition@abc123")
        assert len(key) == 32
        assert set(key) <= set("0123456789abcdef")

    def test_arbitrary_key_strings_are_admissible(self):
        # Keys may embed separators, newlines, unicode — the address is a
        # fixed-width digest, so none of it reaches the filesystem.
        weird = ["a/b/../c", "nul\x00byte", "unié", " " * 40, ""]
        addresses = {content_key("ns", key) for key in weird}
        assert len(addresses) == len(weird)

    def test_namespace_and_key_do_not_collide(self):
        assert content_key("ab", "c") != content_key("a", "bc")
        assert content_key("spectral", "x") != content_key("stage", "x")


class TestCodecRoundTrip:
    @pytest.mark.parametrize("case", sorted(PAYLOADS))
    def test_bit_identical_round_trip(self, case):
        payload = PAYLOADS[case]
        blob = encode_payload("ns", f"key-{case}", payload)
        assert blob.startswith(MAGIC)
        assert_payloads_identical(
            decode_payload(blob, "ns", f"key-{case}"), payload
        )

    def test_encoding_is_deterministic(self):
        payload = PAYLOADS["mixed"]
        assert encode_payload("ns", "k", payload) == encode_payload(
            "ns", "k", payload
        )

    def test_rejects_bad_magic(self):
        blob = encode_payload("ns", "k", PAYLOADS["float64"])
        with pytest.raises(StoreError, match="header"):
            decode_payload(b"XXXX" + blob[4:])

    def test_rejects_truncation(self):
        blob = encode_payload("ns", "k", PAYLOADS["float64"])
        for cut in (0, len(MAGIC), _HEADER_BYTES, len(blob) - 1):
            with pytest.raises(StoreError):
                decode_payload(blob[:cut])

    @pytest.mark.parametrize("offset", [0, 10, _HEADER_BYTES + 5, -1])
    def test_rejects_any_flipped_byte(self, offset):
        blob = bytearray(encode_payload("ns", "k", PAYLOADS["mixed"]))
        blob[offset] ^= 0xFF
        with pytest.raises(StoreError):
            decode_payload(bytes(blob))

    def test_rejects_entry_served_at_the_wrong_address(self):
        # A renamed/cross-linked entry file passes its checksum but not
        # its identity check.
        blob = encode_payload("ns", "original", PAYLOADS["float64"])
        with pytest.raises(StoreError, match="different namespace/key"):
            decode_payload(blob, "ns", "other")
        with pytest.raises(StoreError, match="different namespace/key"):
            decode_payload(blob, "other-ns", "original")


class TestStoreTiers:
    def test_get_or_create_serves_identical_bits_hit_or_miss(self, tmp_path):
        store = ContentStore(root=tmp_path)
        built = []

        def build():
            built.append(True)
            return {name: np.copy(v) for name, v in PAYLOADS["mixed"].items()}

        first = store.get_or_create("spectral", "k", build)
        second = store.get_or_create("spectral", "k", build)  # memory hit
        store.clear_memory()  # a fresh process: only the disk tier left
        third = store.get_or_create("spectral", "k", build)  # disk hit
        assert built == [True]
        for payload in (first, second, third):
            assert_payloads_identical(payload, PAYLOADS["mixed"])
            assert all(not arr.flags.writeable for arr in payload.values())

    def test_counters_track_each_tier(self, tmp_path):
        store = ContentStore(root=tmp_path)
        build = lambda: dict(PAYLOADS["float64"])  # noqa: E731
        store.get_or_create("spectral", "k", build)
        store.get_or_create("spectral", "k", build)
        store.clear_memory(reset_stats=False)
        store.get_or_create("spectral", "k", build)
        counters = store.counters()
        assert counters["misses"] == 1
        assert counters["memory_hits"] == 1
        assert counters["disk_hits"] == 1
        assert set(counters) == set(COUNTER_KEYS)

    def test_memory_only_store_misses_after_clear(self):
        store = ContentStore()
        store.put("spectral", "k", PAYLOADS["float64"], memory=True)
        assert store.get("spectral", "k", memory=True) is not None
        store.clear_memory()
        assert store.get("spectral", "k", memory=True) is None

    def test_disk_only_namespaces_skip_the_memory_tier(self, tmp_path):
        store = ContentStore(root=tmp_path)
        store.put("stage", "k", PAYLOADS["float64"])
        assert store.stats()["memory"]["entries"] == 0
        assert_payloads_identical(
            store.get("stage", "k"), PAYLOADS["float64"]
        )
        assert store.counters()["disk_hits"] == 1

    def test_memory_lru_evicts_oldest_first(self):
        one_kib = {"a": np.zeros(128)}  # 1024 bytes
        store = ContentStore(max_memory_bytes=3 * 1024)
        for name in ("k1", "k2", "k3"):
            store.put("spectral", name, one_kib, memory=True)
        store.get("spectral", "k1", memory=True)  # bump k1: k2 now oldest
        store.put("spectral", "k4", one_kib, memory=True)
        stats = store.namespace_stats("spectral")
        assert stats["memory_evictions"] == 1
        assert store.get("spectral", "k2", memory=True) is None  # evicted
        assert store.get("spectral", "k1", memory=True) is not None

    def test_oversize_payload_is_not_kept_resident(self):
        store = ContentStore(max_memory_bytes=64)
        store.put("spectral", "big", {"a": np.zeros(1024)}, memory=True)
        assert store.stats()["memory"]["entries"] == 0

    def test_disk_budget_evicts_oldest_mtime(self, tmp_path):
        import os

        store = ContentStore(root=tmp_path)
        payload = {"a": np.zeros(128)}
        for index, name in enumerate(("old", "mid", "new")):
            store.put("stage", name, payload)
            path = store._entry_path("stage", name)
            os.utime(path, (1000.0 + index, 1000.0 + index))
        entry_bytes = store._entry_path("stage", "old").stat().st_size
        store.configure(max_disk_bytes=2 * entry_bytes)
        assert store._enforce_disk_budget() == 1
        assert store.get("stage", "old") is None  # the oldest went first
        assert store.get("stage", "new") is not None
        assert store.counters()["disk_evictions"] == 1

    def test_blob_larger_than_disk_budget_is_skipped(self, tmp_path):
        store = ContentStore(root=tmp_path, max_disk_bytes=64)
        store.put("stage", "big", {"a": np.zeros(1024)})
        assert store.disk_report()["entries"] == 0

    def test_disabled_store_calls_builder_and_counts_nothing(self, tmp_path):
        store = ContentStore(root=tmp_path)
        store.configure(enabled=False)
        calls = []

        def build():
            calls.append(True)
            return dict(PAYLOADS["float64"])

        store.get_or_create("spectral", "k", build)
        store.get_or_create("spectral", "k", build)
        assert len(calls) == 2
        assert store.counters() == {key: 0 for key in COUNTER_KEYS}
        assert store.disk_report()["entries"] == 0

    def test_negative_budget_raises_the_clustering_domain_error(self):
        store = ContentStore()
        with pytest.raises(ClusteringError, match="max_bytes must be >= 0"):
            store.configure(max_memory_bytes=-1)
        with pytest.raises(StoreError):
            store.configure(max_disk_bytes=-1)

    def test_invalid_namespace_is_rejected(self, tmp_path):
        store = ContentStore(root=tmp_path)
        for namespace in ("", "UPPER", "dots.bad", "sep/bad"):
            with pytest.raises(StoreError, match="namespace"):
                store.put(namespace, "k", PAYLOADS["float64"])

    def test_detach_keeps_files_for_later_reattach(self, tmp_path):
        store = ContentStore(root=tmp_path)
        store.put("stage", "k", PAYLOADS["float64"])
        store.detach()
        assert store.get("stage", "k") is None  # memory-only now
        store.attach(tmp_path)
        assert_payloads_identical(
            store.get("stage", "k"), PAYLOADS["float64"]
        )

    def test_two_stores_share_one_root(self, tmp_path):
        writer = ContentStore(root=tmp_path)
        reader = ContentStore(root=tmp_path)
        writer.put("stage", "k", PAYLOADS["mixed"])
        assert_payloads_identical(
            reader.get("stage", "k"), PAYLOADS["mixed"]
        )
        assert reader.counters()["disk_hits"] == 1


class TestOperations:
    def test_verify_and_gc_on_a_clean_store(self, tmp_path):
        store = ContentStore(root=tmp_path)
        for name in ("a", "b"):
            store.put("stage", name, PAYLOADS["float64"])
        report = store.verify()
        assert report == {"checked": 2, "ok": 2, "corrupt": []}
        gc = store.gc()
        assert gc["corrupt_removed"] == 0
        assert gc["temp_removed"] == 0
        assert gc["entries"] == 2

    def test_gc_respects_max_bytes_override(self, tmp_path):
        import os

        store = ContentStore(root=tmp_path)
        for index, name in enumerate(("a", "b", "c")):
            store.put("stage", name, {"a": np.zeros(64)})
            os.utime(
                store._entry_path("stage", name),
                (2000.0 + index, 2000.0 + index),
            )
        report = store.gc(max_bytes=0)
        assert report["evicted"] == 3
        assert store.disk_report()["entries"] == 0
