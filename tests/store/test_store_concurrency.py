"""Concurrency and crash-injection harness of the content store.

The claims under stress:

* N writer processes and M reader processes hammering one store root
  never produce a torn read — a reader sees either a miss or the exact
  expected bits (atomic ``os.replace`` publication);
* a writer killed with ``os._exit`` mid-put leaves at most a stale temp
  file, never a half-written entry, and the store self-heals on the next
  open (``gc`` reaps the temp file; the entry recomputes cleanly).

Workers run under the ``fork`` start method (this suite is POSIX-only,
like the ``flock`` layer it exercises) and report failure through their
exit codes, so one assertion in the parent covers every observation a
child made.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.store import ContentStore
from repro.store.content_store import _TMP_PREFIX

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based stress harness is POSIX-only"
)

NUM_KEYS = 12
NUM_WRITERS = 4
NUM_READERS = 4
READER_PASSES = 40


def expected_payload(key: str) -> dict:
    """The deterministic content of one stress key — derived from the key
    alone, so every process can independently check bit-identity."""
    seed = sum(key.encode())
    rng = np.random.default_rng(seed)
    return {
        "rows": rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6)),
        "norms": rng.random(6),
        "tag": np.int64(seed),
    }


def payload_matches(actual, key) -> bool:
    expected = expected_payload(key)
    if sorted(actual) != sorted(expected):
        return False
    return all(
        np.asarray(actual[name]).tobytes() == np.asarray(value).tobytes()
        for name, value in expected.items()
    )


def stress_writer(root, writer_index):
    """Repeatedly (re-)publish every key, interleaving with other writers."""
    store = ContentStore(root=root)
    for round_index in range(3):
        for key_index in range(NUM_KEYS):
            if (key_index + round_index) % NUM_WRITERS != writer_index:
                continue
            key = f"stress-{key_index}"
            store.put("stress", key, expected_payload(key))
    os._exit(0)


def stress_reader(root):
    """Spin over every key; exit non-zero on any wrong or torn read."""
    store = ContentStore(root=root)
    hits = 0
    for _ in range(READER_PASSES):
        for key_index in range(NUM_KEYS):
            key = f"stress-{key_index}"
            payload = store.get("stress", key)
            if payload is None:
                continue  # a miss is legal (writer not there yet)
            if not payload_matches(payload, key):
                os._exit(2)  # wrong bits — the one forbidden outcome
            hits += 1
    if store.counters()["corrupt_evictions"]:
        os._exit(3)  # a torn read would show up as a corrupt eviction
    os._exit(0 if hits else 4)  # readers must eventually see real data


def crashing_writer(root, key):
    """Start a put but die mid-publication, leaving the temp file behind."""
    store = ContentStore(root=root)
    original_replace = os.replace

    def die_before_publish(src, dst):
        os._exit(9)

    os.replace = die_before_publish
    try:
        store.put("stress", key, expected_payload(key))
    finally:
        os.replace = original_replace
    os._exit(1)  # unreachable: the put must have hit the crash point


def run_children(targets):
    context = multiprocessing.get_context("fork")
    children = [
        context.Process(target=target, args=args) for target, args in targets
    ]
    for child in children:
        child.start()
    for child in children:
        child.join(timeout=120)
    codes = [child.exitcode for child in children]
    for child in children:
        if child.is_alive():  # pragma: no cover - hang diagnostics
            child.kill()
    return codes


class TestWriterReaderStress:
    def test_no_torn_reads_under_concurrent_writers(self, tmp_path):
        targets = [
            (stress_writer, (str(tmp_path), index))
            for index in range(NUM_WRITERS)
        ] + [(stress_reader, (str(tmp_path),)) for _ in range(NUM_READERS)]
        codes = run_children(targets)
        assert codes == [0] * (NUM_WRITERS + NUM_READERS)

        # The surviving tier is complete, uncorrupted, and bit-exact.
        store = ContentStore(root=tmp_path)
        report = store.verify()
        assert report["corrupt"] == []
        assert report["checked"] == NUM_KEYS
        for key_index in range(NUM_KEYS):
            key = f"stress-{key_index}"
            assert payload_matches(store.get("stress", key), key)

    def test_concurrent_writers_of_one_key_stay_atomic(self, tmp_path):
        # Every writer publishes the same key; last-write-wins is fine,
        # a torn or mixed entry is not.
        def same_key_writer(root, _index):
            store = ContentStore(root=root)
            for _ in range(25):
                store.put("stress", "contended", expected_payload("contended"))
            os._exit(0)

        codes = run_children(
            [(same_key_writer, (str(tmp_path), i)) for i in range(NUM_WRITERS)]
        )
        assert codes == [0] * NUM_WRITERS
        store = ContentStore(root=tmp_path)
        assert payload_matches(store.get("stress", "contended"), "contended")
        assert store.verify()["corrupt"] == []


class TestCrashInjection:
    def test_writer_killed_mid_put_leaves_no_entry(self, tmp_path):
        codes = run_children([(crashing_writer, (str(tmp_path), "victim"))])
        assert codes == [9]  # died exactly at the injected crash point

        store = ContentStore(root=tmp_path)
        # The entry was never published ...
        assert store.get("stress", "victim") is None
        assert store.verify()["corrupt"] == []
        # ... but the in-flight temp file survived the crash.
        temps = [
            path
            for path in tmp_path.rglob(f"{_TMP_PREFIX}*")
            if path.is_file()
        ]
        assert len(temps) == 1

    def test_store_self_heals_after_a_crashed_writer(self, tmp_path):
        run_children([(crashing_writer, (str(tmp_path), "victim"))])
        store = ContentStore(root=tmp_path)

        # gc with the grace period active keeps the (possibly live) temp;
        # with the grace period zeroed it reaps the orphan.
        assert store.gc(tmp_grace_seconds=3600)["temp_removed"] == 0
        assert store.gc(tmp_grace_seconds=0)["temp_removed"] == 1
        assert not list(tmp_path.rglob(f"{_TMP_PREFIX}*"))

        # The store works normally afterwards: the interrupted entry
        # recomputes and round-trips bit-exactly.
        built = []

        def build():
            built.append(True)
            return expected_payload("victim")

        payload = store.get_or_create("stress", "victim", build)
        assert built == [True]
        assert payload_matches(payload, "victim")
        store.clear_memory()
        assert payload_matches(store.get("stress", "victim"), "victim")
