"""`repro store` operational edges: gc grace windows and verify exit codes.

These drive the CLI entry point (``repro.cli.main``) rather than the
store API, pinning the exit codes and the reaping rules an operator's
cron jobs and CI checks rely on.
"""

import numpy as np
import os
import time

from repro.cli import main
from repro.store import ContentStore

from test_store_corruption import flip_byte


def _seeded_store(tmp_path, entries=2):
    """A disk store with a few entries; returns (store, root)."""
    root = tmp_path / "cas"
    store = ContentStore(root=root)
    for index in range(entries):
        store.put("stage", f"k{index}", {"x": np.arange(8.0) + index})
    return store, root


class TestGcGraceWindow:
    def test_default_grace_spares_inflight_temp_files(
        self, tmp_path, capsys
    ):
        """A writer's fresh ``.tmp-*`` file survives a default gc; only
        files older than the 60 s grace window are treated as the debris
        of a crashed writer."""
        store, root = _seeded_store(tmp_path)
        bucket = store._entry_path("stage", "k0").parent
        fresh = bucket / ".tmp-inflight"
        fresh.write_bytes(b"partial write")
        stale = bucket / ".tmp-crashed"
        stale.write_bytes(b"older partial write")
        past = time.time() - 120.0
        os.utime(stale, (past, past))

        assert main(["store", "gc", "--dir", str(root)]) == 0
        assert "temp files removed: 1" in capsys.readouterr().out
        assert fresh.exists()
        assert not stale.exists()

    def test_zero_grace_reaps_everything_in_flight(self, tmp_path, capsys):
        store, root = _seeded_store(tmp_path)
        bucket = store._entry_path("stage", "k0").parent
        fresh = bucket / ".tmp-inflight"
        fresh.write_bytes(b"partial write")

        code = main(
            ["store", "gc", "--dir", str(root), "--grace-seconds", "0"]
        )
        assert code == 0
        assert "temp files removed: 1" in capsys.readouterr().out
        assert not fresh.exists()

    def test_gc_enforces_an_explicit_byte_budget(self, tmp_path, capsys):
        _, root = _seeded_store(tmp_path, entries=3)
        assert main(["store", "gc", "--dir", str(root), "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted: 3" in out
        assert "entries: 0" in out


class TestVerifyExitCodes:
    def test_clean_store_verifies_with_exit_zero(self, tmp_path, capsys):
        _, root = _seeded_store(tmp_path)
        assert main(["store", "verify", "--dir", str(root)]) == 0
        assert "checked: 2  ok: 2" in capsys.readouterr().out

    def test_corruption_flips_the_exit_code_but_not_the_files(
        self, tmp_path, capsys
    ):
        """verify is a read-only detector: exit 1 names the corrupt
        entry and leaves it in place for inspection."""
        store, root = _seeded_store(tmp_path)
        bad = store._entry_path("stage", "k1")
        flip_byte(bad, 20)

        assert main(["store", "verify", "--dir", str(root)]) == 1
        out = capsys.readouterr().out
        assert f"corrupt: {bad}" in out
        assert bad.exists()

    def test_gc_heals_what_verify_flagged(self, tmp_path, capsys):
        store, root = _seeded_store(tmp_path)
        bad = store._entry_path("stage", "k1")
        flip_byte(bad, 20)
        assert main(["store", "verify", "--dir", str(root)]) == 1

        assert main(["store", "gc", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "corrupt removed: 1" in out
        assert not bad.exists()

        assert main(["store", "verify", "--dir", str(root)]) == 0
        assert "checked: 1  ok: 1" in capsys.readouterr().out
