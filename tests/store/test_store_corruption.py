"""Corruption injection: damaged entries are detected, evicted, recomputed.

Covers the store layer (bit flips, truncation, cross-linked files) and
the pipeline integration (a corrupted stage checkpoint in a resume
directory heals instead of poisoning the run).  The invariant throughout:
**wrong bits are never served** — every read either returns the exact
original payload or recomputes it.
"""

import numpy as np
import pytest
from test_golden import GOLDEN, build_case, result_digest

from repro import QSCPipeline
from repro.exceptions import ClusteringError
from repro.pipeline import checkpoint
from repro.store import ContentStore, configure_store, get_store


def payload():
    rng = np.random.default_rng(42)
    return {"rows": rng.standard_normal((8, 8)), "norms": rng.random(8)}


def flip_byte(path, offset):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestStoreCorruption:
    @pytest.mark.parametrize("offset", [0, 12, 60, -3])
    def test_flipped_byte_is_evicted_and_recomputed(self, tmp_path, offset):
        store = ContentStore(root=tmp_path)
        store.put("stress", "k", payload())
        path = store._entry_path("stress", "k")
        flip_byte(path, offset)

        assert store.get("stress", "k") is None  # detected, never served
        assert not path.exists()  # evicted on the spot
        assert store.counters()["corrupt_evictions"] == 1

        rebuilt = store.get_or_create(
            "stress", "k", payload, memory=False
        )
        assert np.array_equal(rebuilt["rows"], payload()["rows"])
        store.clear_memory(reset_stats=False)
        assert store.get("stress", "k") is not None  # re-published

    @pytest.mark.parametrize("keep", [0, 7, 41, 200])
    def test_truncated_entry_is_evicted(self, tmp_path, keep):
        store = ContentStore(root=tmp_path)
        store.put("stress", "k", payload())
        path = store._entry_path("stress", "k")
        path.write_bytes(path.read_bytes()[:keep])
        assert store.get("stress", "k") is None
        assert store.counters()["corrupt_evictions"] == 1
        assert not path.exists()

    def test_cross_linked_entry_is_rejected(self, tmp_path):
        # A checksum-valid file copied to another key's address must not
        # be served there: the embedded identity catches it.
        store = ContentStore(root=tmp_path)
        store.put("stress", "original", payload())
        source = store._entry_path("stress", "original")
        target = store._entry_path("stress", "impostor")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())

        assert store.get("stress", "impostor") is None
        assert store.counters()["corrupt_evictions"] == 1
        assert store.get("stress", "original") is not None  # untouched

    def test_verify_flags_and_gc_heals_without_serving(self, tmp_path):
        store = ContentStore(root=tmp_path)
        for name in ("good", "bad"):
            store.put("stress", name, payload())
        flip_byte(store._entry_path("stress", "bad"), 20)

        report = store.verify()
        assert report["checked"] == 2 and report["ok"] == 1
        assert report["corrupt"] == [str(store._entry_path("stress", "bad"))]
        assert store._entry_path("stress", "bad").exists()  # verify is read-only

        gc = store.gc()
        assert gc["corrupt_removed"] == 1
        assert store.verify() == {"checked": 1, "ok": 1, "corrupt": []}


class TestPipelineCheckpointCorruption:
    def test_corrupt_stage_checkpoint_recomputes_to_golden(self, tmp_path):
        """A resume over a damaged run-dir checkpoint heals that stage."""
        graph, k, config = build_case("analytic_shots")
        QSCPipeline(k, config).run(graph, save_stages=tmp_path)
        path = checkpoint.stage_path(tmp_path, "laplacian")
        flip_byte(path, path.stat().st_size // 2)

        resumed = QSCPipeline(k, config).run(
            graph, resume_from="readout", stages_dir=tmp_path
        )
        assert result_digest(resumed) == GOLDEN["analytic_shots"]
        profile = {row["stage"]: row["source"] for row in resumed.profile}
        assert profile["laplacian"] == "computed"  # healed, not served
        assert profile["threshold"] == "checkpoint"
        assert not path.exists() or checkpoint.has_stage_checkpoint(
            tmp_path, "laplacian"
        )

    def test_corrupt_store_stage_entry_recomputes_to_golden(self, tmp_path):
        """Same healing when the damaged entry lives in the shared store."""
        graph, k, config = build_case("analytic_shots")
        config = config.with_updates(store_dir=str(tmp_path / "store"))
        QSCPipeline(k, config).run(graph)

        store = get_store()
        fingerprint = _stage_fingerprint(graph, config, k, "laplacian")
        path = store._entry_path(
            checkpoint.STAGE_NAMESPACE,
            checkpoint.store_key("laplacian", fingerprint),
        )
        flip_byte(path, path.stat().st_size // 2)

        from repro.core.qpe_engine import clear_spectral_cache

        clear_spectral_cache()
        resumed = QSCPipeline(k, config).run(graph, resume_from="readout")
        assert result_digest(resumed) == GOLDEN["analytic_shots"]
        profile = {row["stage"]: row["source"] for row in resumed.profile}
        assert profile["laplacian"] == "computed"
        assert profile["threshold"] == "checkpoint"  # siblings still served
        assert store.counters()["corrupt_evictions"] >= 1
        configure_store(root=None)

    def test_missing_checkpoint_without_store_stays_a_hard_error(
        self, tmp_path
    ):
        """Plain absence (no corruption, no store) is still the classic
        configuration error, not a silent recompute."""
        graph, k, config = build_case("analytic_shots")
        QSCPipeline(k, config).run(graph, save_stages=tmp_path)
        checkpoint.stage_path(tmp_path, "laplacian").unlink()
        with pytest.raises(ClusteringError, match="no checkpoint"):
            QSCPipeline(k, config).run(
                graph, resume_from="readout", stages_dir=tmp_path
            )


def _stage_fingerprint(graph, config, num_clusters, stage_name):
    """The context fingerprint the pipeline keys ``stage_name`` under —
    computed with the pipeline's own stage declarations, so the test
    addresses the exact entry a run just published."""
    from repro.pipeline import build_stages

    stage = next(s for s in build_stages() if s.name == stage_name)
    return checkpoint.context_fingerprint(
        graph,
        config,
        num_clusters if stage.fingerprint_clusters else None,
        stage.fingerprint_fields,
    )
