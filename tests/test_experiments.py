"""Tests for the experiment harness (reduced-scale runs of every module)."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    ablations,
    aggregate,
    fig1_direction_sweep,
    fig2_precision_sweep,
    fig3_runtime_scaling,
    fig4_shots_sweep,
    render_markdown_table,
    standard_methods,
    table1_msbm,
    table2_netlist,
)
from repro.experiments.common import TrialRecord


def make_record(method="m", ari=1.0, **params):
    return TrialRecord(
        experiment="X",
        method=method,
        parameters=params,
        seed=0,
        ari=ari,
        accuracy=ari,
    )


class TestCommon:
    def test_standard_methods_panel(self):
        methods = standard_methods(2, seed=0)
        assert set(methods) == {
            "quantum",
            "classical",
            "symmetrized",
            "random-walk",
            "disim",
            "adjacency",
        }

    def test_aggregate_groups_and_averages(self):
        records = [
            make_record(ari=1.0, n=8),
            make_record(ari=0.0, n=8),
            make_record(ari=0.5, n=16),
        ]
        rows = aggregate(records, ("n",))
        by_n = {row["n"]: row for row in rows}
        assert by_n[8]["ari_mean"] == 0.5
        assert by_n[8]["trials"] == 2
        assert by_n[16]["ari_mean"] == 0.5

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ExperimentError):
            aggregate([], ())

    def test_render_markdown(self):
        rows = aggregate([make_record(n=8)], ("n",))
        text = render_markdown_table(rows)
        assert text.startswith("| method |")
        assert "| 8 |" in text or "| m |" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_markdown_table([])


class TestQuickRuns:
    """Tiny-parameter executions of each experiment module."""

    def test_t1(self):
        records = table1_msbm.run(sizes=(24,), cluster_counts=(2,), trials=1)
        assert len(records) == 6  # one instance x 6 methods
        assert "quantum" in table1_msbm.table(records)

    def test_t2(self):
        records = table2_netlist.run(module_counts=(2,), gates_per_module=10, trials=1)
        assert any(r.method == "quantum" for r in records)
        assert "modules" in table2_netlist.table(records)

    def test_f1(self):
        records = fig1_direction_sweep.run(strengths=(1.0,), num_nodes=30, trials=1)
        quantum = [r for r in records if r.method == "quantum"]
        assert len(quantum) == 1
        assert "strength" in fig1_direction_sweep.series(records)

    def test_f2(self):
        records = fig2_precision_sweep.run(precisions=(3, 7), num_nodes=24, trials=1)
        assert all("bulk_leakage" in r.extra for r in records)
        leak = {r.parameters["p"]: r.extra["bulk_leakage"] for r in records}
        assert leak[7] <= leak[3]
        assert "eig_rmse" in fig2_precision_sweep.series(records)

    def test_f3(self):
        samples = fig3_runtime_scaling.run(sizes=(32, 64))
        assert len(samples) == 2
        fits = fig3_runtime_scaling.exponents(samples)
        assert fits["classical_steps"] > 2.5
        assert "fitted exponents" in fig3_runtime_scaling.series(samples)

    def test_f4(self):
        records = fig4_shots_sweep.run(shot_budgets=(64, 1024), num_nodes=24, trials=1)
        errors = {r.parameters["shots"]: r.extra["embedding_error"] for r in records}
        assert errors[1024] < errors[64]
        assert "embed_err" in fig4_shots_sweep.series(records)

    def test_a1(self):
        rows = ablations.trotter_ablation(steps_list=(1, 8), orders=(2,))
        by_steps = {r["steps"]: r for r in rows}
        assert by_steps[8]["unitary_error"] < by_steps[1]["unitary_error"]

    def test_a2(self):
        rows = ablations.theta_ablation(
            thetas=(np.pi / 16, np.pi / 2), num_nodes=36, trials=2
        )
        assert rows[-1]["ari_mean"] > rows[0]["ari_mean"]

    def test_a3(self):
        rows = ablations.noise_ablation(depolarizing_rates=(0.0, 0.05), shots=300)
        assert rows[1]["qpe_tv_distance"] > rows[0]["qpe_tv_distance"]

    def test_a4(self):
        rows = ablations.autok_ablation(cluster_counts=(2,), trials=2, shots=8192)
        assert rows[0]["quantum_hit_rate"] >= 0.5

    def test_a5(self):
        rows = ablations.vqe_ablation(trials=1, layers=2, num_nodes=6)
        assert rows[0]["subspace_fidelity"] > 0.9

    def test_a6(self):
        rows = ablations.expansion_ablation(trials=2)
        by_style = {r["expansion"]: r["ari_mean"] for r in rows}
        # both expansions recover module structure well above chance
        assert by_style["clique"] > 0.4
        assert by_style["star"] > 0.3
