"""Cross-module integration tests: invariants that span subsystems.

These tests pin the relationships the architecture relies on — e.g. that
the quantum projector rows really are the isometric image of the classical
spectral embedding, that the QRAM rotation cascade agrees with the circuit
state-prep, and that every front end (dense, Lanczos, power, VQE, QPE)
lands in the same low subspace.
"""

import numpy as np
import pytest

from repro import (
    ClassicalSpectralClustering,
    QSCConfig,
    QuantumSpectralClustering,
    adjusted_rand_index,
    mixed_sbm,
)
from repro.core.qpe_engine import AnalyticQPEBackend, pad_laplacian
from repro.graphs import (
    Hypergraph,
    ensure_connected,
    hermitian_laplacian,
    load_c17,
    load_s27,
    synthetic_netlist,
)
from repro.metrics import partition_summary
from repro.quantum import (
    KPTree,
    QuantumCircuit,
    VQESolver,
    state_preparation_circuit,
    transpile_counts,
)
from repro.quantum.phase_estimation import qpe_circuit
from repro.quantum.hamiltonian import exact_evolution
from repro.spectral import (
    dense_lowest_eigenpairs,
    lanczos_lowest_eigenpairs,
    lowest_eigenpairs_by_power,
)


def subspace_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Smallest principal-angle cosine between two column subspaces."""
    qa, _ = np.linalg.qr(a)
    qb, _ = np.linalg.qr(b)
    return float(np.linalg.svd(qa.conj().T @ qb, compute_uv=False).min())


@pytest.fixture(scope="module")
def strong_graph():
    graph, truth = mixed_sbm(16, 2, p_intra=0.8, p_inter=0.05, seed=0)
    ensure_connected(graph, seed=0)
    return graph, truth


class TestFrontEndAgreement:
    def test_all_eigensolvers_find_the_same_subspace(self, strong_graph):
        graph, _ = strong_graph
        laplacian = hermitian_laplacian(graph)
        _, dense = dense_lowest_eigenpairs(laplacian, 2)
        _, lanczos = lanczos_lowest_eigenpairs(laplacian, 2, seed=0)
        _, power, _ = lowest_eigenpairs_by_power(laplacian, 2, seed=0)
        assert subspace_fidelity(dense, lanczos) > 0.999
        assert subspace_fidelity(dense, power) > 0.999

    def test_vqe_reaches_the_exact_subspace(self, strong_graph):
        graph, _ = strong_graph
        # shrink to 8 nodes so the ansatz stays tiny
        sub = graph.subgraph(range(8))
        laplacian = hermitian_laplacian(sub)
        _, dense = dense_lowest_eigenpairs(laplacian, 2)
        result = VQESolver(layers=3, max_iterations=250, seed=2).solve(laplacian, k=2)
        assert subspace_fidelity(dense, result.eigenvectors) > 0.98

    def test_qpe_filter_matches_exact_projector(self, strong_graph):
        graph, _ = strong_graph
        laplacian = hermitian_laplacian(graph)
        values, vectors = dense_lowest_eigenpairs(laplacian, 2)
        projector = vectors @ vectors.conj().T
        backend = AnalyticQPEBackend(laplacian, 8)
        threshold = (values[1] + np.linalg.eigvalsh(laplacian)[2]) / 2
        accepted = np.flatnonzero(
            np.arange(2**8) / 2**8 * backend.lambda_scale <= threshold
        )
        for node in range(0, 16, 4):
            row, probability = backend.project_row(node, accepted)
            exact_row = projector[:, node]
            exact_norm = np.linalg.norm(exact_row)
            if exact_norm < 1e-9:
                continue
            overlap = abs(np.vdot(row[:16], exact_row / exact_norm))
            assert overlap > 0.95
            assert abs(probability - exact_norm**2) < 0.05


class TestQuantumClassicalEquivalence:
    def test_noiseless_quantum_equals_classical(self, strong_graph):
        graph, truth = strong_graph
        config = QSCConfig(precision_bits=8, shots=0, qmeans_delta=0.0, seed=3)
        quantum = QuantumSpectralClustering(2, config).fit(graph)
        classical = ClassicalSpectralClustering(2, seed=3).fit(graph)
        assert adjusted_rand_index(quantum.labels, classical.labels) == 1.0
        assert adjusted_rand_index(truth, quantum.labels) == 1.0


class TestDataLoadingChain:
    def test_kptree_angles_match_circuit_state_prep(self):
        rng = np.random.default_rng(0)
        vector = rng.normal(size=8)
        tree = KPTree(vector)
        circuit_state = state_preparation_circuit(vector).statevector()
        assert np.allclose(
            circuit_state.amplitudes, tree.amplitude_encoding(), atol=1e-9
        )

    def test_kptree_first_angle_matches_circuit_rotation(self):
        vector = np.array([3.0, 0.0, 0.0, 4.0])
        tree = KPTree(vector)
        theta = tree.rotation_angle(0, 0)
        qc = QuantumCircuit(2)
        qc.ry(theta, 0)
        probs = qc.statevector().marginal_probabilities([0])
        # qubit-0 marginal must equal the top-level mass split (9/25, 16/25)
        assert np.isclose(probs[0], 9 / 25)
        assert np.isclose(probs[1], 16 / 25)


class TestNetlistChain:
    def test_netlist_to_hypergraph_to_partition(self):
        netlist = synthetic_netlist(2, 12, internal_fanin=3, seed=0)
        hypergraph = Hypergraph.from_netlist(netlist)
        graph = hypergraph.to_mixed_graph("clique")
        ensure_connected(graph, seed=0)
        config = QSCConfig(precision_bits=7, shots=1024, theta=float(np.pi / 4), seed=1)
        result = QuantumSpectralClustering(2, config).fit(graph)
        truth = netlist.module_labels()
        # hypergraph-native and graph metrics must both see the partition
        assert hypergraph.connectivity_cut(result.labels) >= 0
        summary = partition_summary(graph, result.labels)
        assert summary["cut_weight"] >= 0
        assert adjusted_rand_index(truth, result.labels) > 0.3

    def test_both_embedded_benchmarks_cluster(self):
        for loader in (load_c17, load_s27):
            graph = loader().to_mixed_graph(net_cliques=True)
            ensure_connected(graph, seed=0)
            config = QSCConfig(precision_bits=6, shots=2048, seed=0)
            result = QuantumSpectralClustering(2, config).fit(graph)
            assert set(result.labels) == {0, 1}


class TestResourceChain:
    def test_qpe_circuit_transpiles_to_nontrivial_counts(self, strong_graph):
        graph, _ = strong_graph
        laplacian = pad_laplacian(hermitian_laplacian(graph))
        unitary = exact_evolution(laplacian, 1.0)
        circuit = qpe_circuit(unitary, 4)
        counts = transpile_counts(circuit)
        assert counts.cnot > 100  # controlled 4-qubit unitaries dominate
        assert counts.total > counts.cnot
