"""Golden bit-identity pins of the staged pipeline.

The digests below were recorded from the repository state *before* the
staged-pipeline refactor (PR 4 HEAD), hashing every numeric field of the
``QSCResult`` the monolithic ``QuantumSpectralClustering.fit`` produced at
fixed seeds.  ``QSCPipeline.run`` (and the ``fit`` wrapper over it) must
reproduce them bit for bit: any change to stage order, RNG stream
spawning, or per-stage numerics fails here.
"""

import hashlib

import numpy as np
import pytest

from repro import QSCConfig, QSCPipeline, QuantumSpectralClustering
from repro.graphs import cyclic_flow_sbm, ensure_connected, mixed_sbm

#: case name -> digest recorded from the pre-refactor monolithic fit.
GOLDEN = {
    "analytic_shots": "3fcc7af5fa0ddcaa9225ea1a94282fef",
    "analytic_noiseless": "5275c063539b27bede93e30b50ac11de",
    "explicit_threshold": "929467a9f68b1d7e1f6ec66d17146b24",
    "flow_chunked": "855837f0e2371fa67f43fd3a1f0d1d20",
    "auto_k": "91919ff5fa8d406486ffa12e7db32759",
    "circuit": "25b724ec53256090a37a64d2ee5518e1",
}


def result_digest(result) -> str:
    """Checksum of every numeric output field of a ``QSCResult``."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(result.labels, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(result.embedding, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(result.row_norms, dtype=np.float64).tobytes())
    h.update(
        np.ascontiguousarray(result.eigenvalue_histogram, dtype=np.float64).tobytes()
    )
    h.update(np.float64(result.threshold).tobytes())
    h.update(np.ascontiguousarray(result.accepted_bins, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(result.qmeans.centroids, dtype=np.float64).tobytes())
    h.update(np.float64(result.qmeans.inertia).tobytes())
    return h.hexdigest()


def build_case(name):
    """(graph, num_clusters, config) of one golden case."""
    if name in ("analytic_shots", "analytic_noiseless", "explicit_threshold"):
        graph, _ = mixed_sbm(40, 2, p_intra=0.5, p_inter=0.05, seed=11)
        ensure_connected(graph, seed=11)
        config = {
            "analytic_shots": QSCConfig(precision_bits=6, shots=512, seed=5),
            "analytic_noiseless": QSCConfig(precision_bits=7, shots=0, seed=6),
            "explicit_threshold": QSCConfig(
                eigenvalue_threshold=0.4, shots=128, seed=7
            ),
        }[name]
        return graph, 2, config
    if name == "flow_chunked":
        graph, _ = cyclic_flow_sbm(36, 3, density=0.3, direction_strength=0.95, seed=2)
        ensure_connected(graph, seed=2)
        return graph, 3, QSCConfig(
            precision_bits=7, shots=256, readout_chunk_size=7, seed=8
        )
    if name == "auto_k":
        graph, _ = mixed_sbm(36, 3, p_intra=0.7, p_inter=0.02, seed=3)
        ensure_connected(graph, seed=3)
        return graph, "auto", QSCConfig(
            precision_bits=7, shots=256, histogram_shots=16384, seed=3
        )
    if name == "circuit":
        graph, _ = mixed_sbm(10, 2, p_intra=0.8, p_inter=0.05, seed=4)
        ensure_connected(graph, seed=4)
        return graph, 2, QSCConfig(
            backend="circuit", precision_bits=5, shots=256, seed=9
        )
    raise AssertionError(name)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_pipeline_matches_pre_refactor_fit(name):
    graph, k, config = build_case(name)
    result = QSCPipeline(k, config).run(graph)
    assert result_digest(result) == GOLDEN[name]


@pytest.mark.parametrize("name", ["analytic_shots", "auto_k"])
def test_fit_wrapper_matches_pipeline(name):
    graph, k, config = build_case(name)
    assert result_digest(
        QuantumSpectralClustering(k, config).fit(graph)
    ) == GOLDEN[name]


def test_resumed_run_matches_golden(tmp_path):
    """A ``resume_from="readout"`` run still lands on the golden digest."""
    graph, k, config = build_case("analytic_shots")
    QSCPipeline(k, config).run(graph, save_stages=tmp_path)
    resumed = QSCPipeline(k, config).run(
        graph, resume_from="readout", stages_dir=tmp_path
    )
    assert result_digest(resumed) == GOLDEN["analytic_shots"]
